// Multi-tenant heap service probes (DESIGN.md §16), three experiments in
// one binary:
//
// 1. Fleet scaling: fleets of 4/8/16 tenants (policies cycled across the
//    registry, one seed per tenant) hosted unpressured at 1, 2 and 4
//    service threads. Tenants are the determinism units, so every row of
//    a fleet must produce the identical aggregate regardless of thread
//    count (checked here — a scaling probe that changed the answer would
//    be worthless); events/sec measures scheduling overhead plus
//    parallel speedup across tenants.
//
// 2. Pressure saturation: a fixed 8-tenant fleet with the admission
//    watermark armed at 0.5, swept across shared budgets from the full
//    sum of tenant caps (no overcommit) down to half. Reported per row:
//    admission stalls, collections forced by the cross-tenant scheduler,
//    and peak post-round occupancy. The probe checks the admission bound
//    — peak <= watermark + the largest single-tenant allowance — on every
//    row where no forced admission fired, and aborts on a violation.
//
// 3. GlobalView neutrality: the same overcommitted fleet run once with
//    every tenant on the pressure-blind UpdatedPointer and once on
//    PoolPressure (the GlobalView exemplar policy). The pressure boost is
//    a common factor within each heap and the cross-tenant ranker
//    normalizes by the per-heap best score, so both runs must produce the
//    identical trajectory — checked here: a divergence would mean the
//    GlobalView plumbing leaked nondeterminism into victim selection.
//
// ODBGC_FAST=1 shrinks the fleets (2/4 tenants, skips the 16-tenant row)
// for smoke runs.
//
// Usage: mt_tenants [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/heap_service.h"
#include "sim/config.h"
#include "sim/spec.h"

namespace odbgc {
namespace {

using Clock = std::chrono::steady_clock;

// Small per-tenant workloads: the probe measures the service's
// scheduling, admission and forced-collection machinery, not per-tenant
// collector throughput (the paper tables cover that).
SimulationConfig TenantConfig(uint64_t seed, const std::string& policy) {
  SimulationConfig c;
  c.heap.store.page_size = 1024;
  c.heap.store.pages_per_partition = 16;
  c.heap.buffer_pages = 16;
  c.heap.overwrite_trigger = 25;
  c.heap.policy_name = policy;
  c.workload.target_live_bytes = 96ull << 10;
  c.workload.total_alloc_bytes = bench::FastMode() ? 240ull << 10
                                                   : 960ull << 10;
  c.workload.tree_nodes_min = 50;
  c.workload.tree_nodes_max = 150;
  c.workload.large_object_size = 4096;
  c.seed = seed;
  return c;
}

const std::vector<std::string>& PolicyCycle() {
  static const std::vector<std::string> kCycle = {
      "UpdatedPointer", "MostGarbage", "WeightedPointer", "MutatedPartition",
      "PoolPressure"};
  return kCycle;
}

ServiceSpec FleetSpec(uint32_t tenants, uint32_t threads,
                      double budget_fraction, double watermark,
                      const std::string& pinned_policy = "") {
  ServiceSpec spec = ServiceSpec::Hosting({}).WithThreads(threads);
  uint64_t cap_sum = 0;
  for (uint32_t i = 0; i < tenants; ++i) {
    const std::string& policy =
        pinned_policy.empty() ? PolicyCycle()[i % PolicyCycle().size()]
                              : pinned_policy;
    TenantSpec tenant =
        TenantSpec::Base(TenantConfig(100 + i, policy))
            .Named("t" + std::to_string(i));
    cap_sum += tenant.config.heap.buffer_pages;
    spec.tenants.push_back(std::move(tenant));
  }
  if (budget_fraction > 0 && budget_fraction < 1.0) {
    spec.shared_frame_budget = static_cast<uint64_t>(
        static_cast<double>(cap_sum) * budget_fraction);
  }
  spec.admission_watermark = watermark;
  return spec;
}

bool SameAggregate(const SimulationResult& a, const SimulationResult& b) {
  return a.app_events == b.app_events && a.app_io == b.app_io &&
         a.gc_io == b.gc_io && a.collections == b.collections &&
         a.garbage_reclaimed_bytes == b.garbage_reclaimed_bytes &&
         a.bytes_allocated == b.bytes_allocated &&
         a.max_storage_bytes == b.max_storage_bytes;
}

struct Row {
  uint32_t tenants = 0;
  uint32_t threads = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  ServiceResult result;
};

Row RunOnce(ServiceSpec spec) {
  Row row;
  row.tenants = static_cast<uint32_t>(spec.tenants.size());
  row.threads = spec.threads;
  const auto start = Clock::now();
  auto service = RunService(std::move(spec));
  row.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!service.ok()) bench::Fail(service.status(), "mt_tenants");
  row.result = std::move(*service);
  row.events_per_sec =
      row.wall_seconds > 0
          ? static_cast<double>(row.result.aggregate.app_events) /
                row.wall_seconds
          : 0;
  return row;
}

// Every tenant cap is 16 frames here, so the admission bound's slack term
// (the largest single-tenant allowance) is at most one tenant cap.
constexpr uint64_t kTenantCap = 16;

bool BoundHolds(const ServiceResult& r) {
  if (r.watermark_frames == 0) return true;  // Admission off: no bound.
  if (r.forced_admissions > 0) return true;  // Bound is conditional.
  return r.peak_occupancy_frames <= r.watermark_frames + kTenantCap;
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;

  const char* json_path = "BENCH_service.json";
  if (argc > 1) json_path = argv[1];

  bench::PrintHeader("Multi-tenant heap service (shared pool, admission, "
                     "cross-tenant GC)",
                     "service engineering (no paper table)");

  // -- 1. Fleet scaling (unpressured, invariance-checked) -------------------
  std::vector<uint32_t> fleets = bench::FastMode()
                                     ? std::vector<uint32_t>{2, 4}
                                     : std::vector<uint32_t>{4, 8, 16};
  const std::vector<uint32_t> thread_counts = {1, 2, 4};

  std::printf("fleet scaling (watermark off; aggregate must be "
              "thread-count invariant):\n");
  std::vector<Row> scaling;
  for (uint32_t tenants : fleets) {
    const Row* baseline = nullptr;
    for (uint32_t threads : thread_counts) {
      Row row = RunOnce(FleetSpec(tenants, threads, 0.0, 0.0));
      std::printf("  tenants=%-3u threads=%u  events=%-9llu wall=%7.3fs"
                  "  events/sec=%11.0f  speedup=%.2fx\n",
                  tenants, threads,
                  static_cast<unsigned long long>(
                      row.result.aggregate.app_events),
                  row.wall_seconds, row.events_per_sec,
                  baseline != nullptr && baseline->events_per_sec > 0
                      ? row.events_per_sec / baseline->events_per_sec
                      : 1.0);
      if (baseline != nullptr &&
          !SameAggregate(baseline->result.aggregate, row.result.aggregate)) {
        std::fprintf(stderr,
                     "aggregate diverged between 1 and %u threads at "
                     "%u tenants — the service scheduler is broken\n",
                     threads, tenants);
        return 1;
      }
      scaling.push_back(std::move(row));
      if (threads == 1) baseline = &scaling.back();
    }
  }

  // -- 2. Pressure saturation (admission-bound probe) -----------------------
  const uint32_t pressure_fleet = bench::FastMode() ? 4 : 8;
  const double kWatermark = 0.5;
  const std::vector<double> budget_fractions = {1.0, 0.75, 0.5};

  std::printf("\npressure saturation (%u tenants, 2 threads, watermark "
              "%.2f):\n", pressure_fleet, kWatermark);
  std::vector<Row> pressure;
  for (double fraction : budget_fractions) {
    Row row = RunOnce(FleetSpec(pressure_fleet, 2, fraction, kWatermark));
    const ServiceResult& r = row.result;
    std::printf("  budget=%.0f%%  frames=%-4llu peak=%-4llu stalls=%-6llu"
                " forced_gc=%-5llu forced_admit=%llu  bound=%s\n",
                fraction * 100,
                static_cast<unsigned long long>(r.shared_frame_budget),
                static_cast<unsigned long long>(r.peak_occupancy_frames),
                static_cast<unsigned long long>(r.admission_stalls),
                static_cast<unsigned long long>(r.forced_collections),
                static_cast<unsigned long long>(r.forced_admissions),
                BoundHolds(r) ? "ok" : "VIOLATED");
    if (!BoundHolds(r)) {
      std::fprintf(stderr,
                   "admission bound violated: peak %llu > watermark %llu + "
                   "cap %llu with no forced admission\n",
                   static_cast<unsigned long long>(r.peak_occupancy_frames),
                   static_cast<unsigned long long>(r.watermark_frames),
                   static_cast<unsigned long long>(kTenantCap));
      return 1;
    }
    pressure.push_back(std::move(row));
  }

  // -- 3. GlobalView neutrality (see file comment) --------------------------
  std::printf("\nGlobalView neutrality (%u tenants, budget 50%%, watermark "
              "%.2f):\n", pressure_fleet, kWatermark);
  const Row blind =
      RunOnce(FleetSpec(pressure_fleet, 2, 0.5, kWatermark, "UpdatedPointer"));
  const Row aware =
      RunOnce(FleetSpec(pressure_fleet, 2, 0.5, kWatermark, "PoolPressure"));
  std::printf("  %-16s total_io=%-8llu forced_gc=%-5llu stalls=%llu\n",
              "UpdatedPointer",
              static_cast<unsigned long long>(
                  blind.result.aggregate.total_io()),
              static_cast<unsigned long long>(blind.result.forced_collections),
              static_cast<unsigned long long>(blind.result.admission_stalls));
  std::printf("  %-16s total_io=%-8llu forced_gc=%-5llu stalls=%llu\n",
              "PoolPressure",
              static_cast<unsigned long long>(
                  aware.result.aggregate.total_io()),
              static_cast<unsigned long long>(aware.result.forced_collections),
              static_cast<unsigned long long>(aware.result.admission_stalls));
  const bool neutral =
      SameAggregate(blind.result.aggregate, aware.result.aggregate) &&
      blind.result.forced_collections == aware.result.forced_collections;
  std::printf("  trajectories %s\n",
              neutral ? "identical (boost is a common factor — ok)"
                      : "DIVERGED");
  if (!neutral) {
    std::fprintf(stderr,
                 "PoolPressure diverged from UpdatedPointer under a uniform "
                 "boost — GlobalView plumbing leaked into victim choice\n");
    return 1;
  }

  // -- JSON -----------------------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"mt_tenants\",\n";
  json << "  \"fast_mode\": " << (bench::FastMode() ? "true" : "false")
       << ",\n  \"scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const Row& r = scaling[i];
    json << "    {\"tenants\": " << r.tenants
         << ", \"threads\": " << r.threads
         << ", \"events\": " << r.result.aggregate.app_events
         << ", \"wall_seconds\": " << r.wall_seconds
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"rounds\": " << r.result.rounds << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"aggregate_invariant\": true,\n";
  json << "  \"pressure\": {\n    \"tenants\": " << pressure_fleet
       << ",\n    \"watermark\": " << kWatermark << ",\n    \"rows\": [\n";
  for (size_t i = 0; i < pressure.size(); ++i) {
    const ServiceResult& r = pressure[i].result;
    json << "      {\"budget_fraction\": " << budget_fractions[i]
         << ", \"budget_frames\": " << r.shared_frame_budget
         << ", \"watermark_frames\": " << r.watermark_frames
         << ", \"peak_occupancy_frames\": " << r.peak_occupancy_frames
         << ", \"admission_stalls\": " << r.admission_stalls
         << ", \"forced_collections\": " << r.forced_collections
         << ", \"forced_admissions\": " << r.forced_admissions
         << ", \"bound_held\": " << (BoundHolds(r) ? "true" : "false") << "}"
         << (i + 1 < pressure.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n  \"global_view_neutrality\": {\n";
  json << "    \"UpdatedPointer\": {\"total_io\": "
       << blind.result.aggregate.total_io()
       << ", \"forced_collections\": " << blind.result.forced_collections
       << ", \"admission_stalls\": " << blind.result.admission_stalls
       << "},\n";
  json << "    \"PoolPressure\": {\"total_io\": "
       << aware.result.aggregate.total_io()
       << ", \"forced_collections\": " << aware.result.forced_collections
       << ", \"admission_stalls\": " << aware.result.admission_stalls
       << "},\n    \"identical\": " << (neutral ? "true" : "false")
       << "\n  }\n}\n";
  json.close();
  std::printf("\nWrote %s\n", json_path);
  return json.good() ? 0 : 1;
}
