// Ablation: object placement policy (the partitioning criterion is "a
// given" the paper inherits from the database — Section 1.1; this bench
// shows how much the near-parent clustering it assumed actually matters).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: object placement policy",
                     "Section 1.1 (partitioning criteria are 'a given')");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Placement", "Policy", "Total I/Os", "% of garbage",
                      "Efficiency (KB/IO)", "Max storage (KB)"});

  const struct {
    PlacementPolicy placement;
    const char* name;
  } kPlacements[] = {
      {PlacementPolicy::kNearParent, "near-parent"},
      {PlacementPolicy::kSequential, "sequential"},
      {PlacementPolicy::kRoundRobin, "round-robin"},
  };

  for (const auto& placement : kPlacements) {
    for (const char* policy : {"UpdatedPointer", "MostGarbage"}) {
      ExperimentSpec spec;
      spec.base = bench::BaseConfig();
      spec.base.heap.store.placement = placement.placement;
      spec.policies = {policy};
      spec.num_seeds = seeds;
      auto experiment = RunExperiment(spec);
      if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

      RunningStat total_io, fraction, efficiency, storage;
      for (const auto& run : experiment->sets[0].runs) {
        total_io.Add(static_cast<double>(run.total_io()));
        fraction.Add(run.FractionReclaimedPct());
        efficiency.Add(run.EfficiencyKbPerIo());
        storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
      }
      table.AddRow({placement.name, policy,
                    FormatCount(total_io.mean()),
                    FormatDouble(fraction.mean(), 1),
                    FormatDouble(efficiency.mean(), 2),
                    FormatCount(storage.mean())});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: round-robin placement scatters each subtree across\n"
      "partitions, so deletions dust garbage everywhere — no partition is\n"
      "a good victim for *any* policy, and application locality suffers\n"
      "too. Clustered placement is what gives partition selection its\n"
      "leverage.\n");
  return 0;
}
