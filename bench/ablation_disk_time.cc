// Ablation: the refined device-time cost model the paper's Section 4.2
// suggests ("actual disk costs in terms of head seek, rotational delay,
// and transfer times"). Page-count I/O treats all transfers equally; this
// model distinguishes sequential from random transfers on an early-90s
// disk and reports estimated device seconds per policy.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: device-time cost model",
                     "Section 4.2 ('more detailed cost models can be built')");

  ExperimentSpec spec;
  spec.base = bench::BaseConfig();
  spec.num_seeds = bench::SeedsOrDefault(5);
  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

  TablePrinter table({"Selection Policy", "Page I/Os", "Sequential %",
                      "Est. disk time (s)", "Relative"});
  double baseline_s = 0.0;
  // Compute MostGarbage first for the relative column.
  std::vector<std::pair<PolicyKind, std::pair<double, double>>> rows;
  for (const PolicyRuns& set : experiment->sets) {
    RunningStat io, seq_pct, time_s;
    for (const auto& run : set.runs) {
      io.Add(static_cast<double>(run.disk_stats.total()));
      const double transfers =
          static_cast<double>(run.disk_stats.sequential_transfers +
                              run.disk_stats.random_transfers);
      seq_pct.Add(transfers == 0
                      ? 0.0
                      : 100.0 * run.disk_stats.sequential_transfers /
                            transfers);
      time_s.Add(EstimateDiskTimeMs(run.disk_stats) / 1000.0);
    }
    if (set.policy == PolicyKind::kMostGarbage) baseline_s = time_s.mean();
    table.AddRow({PolicyName(set.policy), FormatCount(io.mean()),
                  FormatDouble(seq_pct.mean(), 1),
                  FormatDouble(time_s.mean(), 1), ""});
    rows.push_back({set.policy, {time_s.mean(), 0.0}});
  }

  // Rebuild the table with relative values now that the baseline is known.
  TablePrinter final_table({"Selection Policy", "Est. disk time (s)",
                            "Relative (MostGarbage = 1)"});
  for (const auto& [policy, values] : rows) {
    final_table.AddRow({PolicyName(policy), FormatDouble(values.first, 1),
                        baseline_s > 0
                            ? FormatDouble(values.first / baseline_s, 3)
                            : "n/a"});
  }

  table.Print(std::cout);
  std::printf("\n");
  final_table.Print(std::cout);
  std::printf(
      "\nReading: random transfers dominate device time (a ~26 ms penalty\n"
      "vs ~2 ms sequential), so the policy ranking by estimated seconds\n"
      "tracks — and slightly amplifies — the page-count ranking the paper\n"
      "reports.\n");
  return 0;
}
