// Microbenchmarks (google-benchmark) for the simulated I/O substrate:
// buffer pool hit, miss and dirty-eviction paths, and the object store's
// slot-write path (the hottest operation in a trace replay).

#include <benchmark/benchmark.h>

#include "buffer/buffer_pool.h"
#include "odb/object_store.h"
#include "util/random.h"

namespace odbgc {
namespace {

void BM_BufferPoolHit(benchmark::State& state) {
  SimulatedDisk disk(8192);
  disk.AllocatePages(8);
  BufferPool pool(&disk, 16);
  (void)pool.GetPage(0, AccessMode::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.GetPage(0, AccessMode::kRead));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissCleanEvict(benchmark::State& state) {
  SimulatedDisk disk(8192);
  disk.AllocatePages(1024);
  BufferPool pool(&disk, 64);
  PageId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.GetPage(next, AccessMode::kRead));
    next = (next + 1) % 1024;  // Always past the 64-frame pool: all misses.
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BufferPoolMissCleanEvict);

void BM_BufferPoolMissDirtyEvict(benchmark::State& state) {
  SimulatedDisk disk(8192);
  disk.AllocatePages(1024);
  BufferPool pool(&disk, 64);
  PageId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.GetPage(next, AccessMode::kWrite));
    next = (next + 1) % 1024;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 2 * 8192);  // Read + write.
}
BENCHMARK(BM_BufferPoolMissDirtyEvict);

void BM_StoreSlotWrite(benchmark::State& state) {
  SimulatedDisk disk(8192);
  BufferPool buffer(&disk, 256);
  StoreOptions options;
  options.pages_per_partition = 48;
  ObjectStore store(options, &disk, &buffer);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(*store.Allocate(100, 3));
  Rng rng(7);
  for (auto _ : state) {
    const ObjectId source = ids[rng.UniformInt(ids.size())];
    const ObjectId target = ids[rng.UniformInt(ids.size())];
    benchmark::DoNotOptimize(
        store.WriteSlot(source, rng.UniformInt(3), target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreSlotWrite);

void BM_StoreVisitObject(benchmark::State& state) {
  SimulatedDisk disk(8192);
  BufferPool buffer(&disk, 48);
  StoreOptions options;
  options.pages_per_partition = 48;
  ObjectStore store(options, &disk, &buffer);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 5000; ++i) ids.push_back(*store.Allocate(100, 3));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.VisitObject(ids[rng.UniformInt(ids.size())]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreVisitObject);

}  // namespace
}  // namespace odbgc

BENCHMARK_MAIN();
