// Microbenchmarks (google-benchmark) for the simulated I/O substrate:
// buffer pool hit, miss and dirty-eviction paths, and the object store's
// slot-write path (the hottest operation in a trace replay).
//
// Passing a *.json argument additionally runs the I/O-subsystem sweep —
// every replacement policy crossed with every device backend over one
// fixed access trace — and writes the hit rates, evictions and estimated
// device times to that file (CI uploads it as BENCH_io.json):
//
//   ./build/bench/micro_buffer_pool BENCH_io.json [benchmark flags...]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "buffer/buffer_pool.h"
#include "buffer/replacement_policy.h"
#include "storage/disk.h"
#include "storage/page_device.h"
#include "storage/ssd_device.h"
#include "odb/object_store.h"
#include "util/random.h"

namespace odbgc {
namespace {

void BM_BufferPoolHit(benchmark::State& state) {
  SimulatedDisk disk(8192);
  disk.AllocatePages(8);
  BufferPool pool(&disk, 16);
  (void)pool.GetPage(0, AccessMode::kRead);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.GetPage(0, AccessMode::kRead));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissCleanEvict(benchmark::State& state) {
  SimulatedDisk disk(8192);
  disk.AllocatePages(1024);
  BufferPool pool(&disk, 64);
  PageId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.GetPage(next, AccessMode::kRead));
    next = (next + 1) % 1024;  // Always past the 64-frame pool: all misses.
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BufferPoolMissCleanEvict);

void BM_BufferPoolMissDirtyEvict(benchmark::State& state) {
  SimulatedDisk disk(8192);
  disk.AllocatePages(1024);
  BufferPool pool(&disk, 64);
  PageId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.GetPage(next, AccessMode::kWrite));
    next = (next + 1) % 1024;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 2 * 8192);  // Read + write.
}
BENCHMARK(BM_BufferPoolMissDirtyEvict);

void BM_StoreSlotWrite(benchmark::State& state) {
  SimulatedDisk disk(8192);
  BufferPool buffer(&disk, 256);
  StoreOptions options;
  options.pages_per_partition = 48;
  ObjectStore store(options, &disk, &buffer);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(*store.Allocate(100, 3));
  Rng rng(7);
  for (auto _ : state) {
    const ObjectId source = ids[rng.UniformInt(ids.size())];
    const ObjectId target = ids[rng.UniformInt(ids.size())];
    benchmark::DoNotOptimize(
        store.WriteSlot(source, rng.UniformInt(3), target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreSlotWrite);

void BM_StoreVisitObject(benchmark::State& state) {
  SimulatedDisk disk(8192);
  BufferPool buffer(&disk, 48);
  StoreOptions options;
  options.pages_per_partition = 48;
  ObjectStore store(options, &disk, &buffer);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 5000; ++i) ids.push_back(*store.Allocate(100, 3));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.VisitObject(ids[rng.UniformInt(ids.size())]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreVisitObject);

// ---------------------------------------------------------------------------
// I/O-subsystem sweep: replacement policies x device backends over one
// fixed trace, reported as BENCH_io.json.

struct SweepRow {
  const char* policy;
  const char* device;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t device_writes = 0;
  double device_time_ms = 0.0;
  // SSD only (0 on the disk backend).
  uint64_t erases = 0;
  double write_amplification = 0.0;
};

SweepRow RunSweepConfig(ReplacementPolicyKind policy, DeviceKind device) {
  constexpr size_t kPageSize = 4096;
  constexpr size_t kPages = 512;
  constexpr size_t kFrames = 64;
  constexpr int kSteps = 200000;
  constexpr size_t kHotSet = 48;  // Fits the pool; scans evict it under LRU.

  std::unique_ptr<PageDevice> dev = MakePageDevice(
      device, kPageSize, nullptr, DiskCostParams{}, SsdCostParams{});
  dev->AllocatePages(kPages);
  BufferPool pool(dev.get(), kFrames, policy);

  // The trace mixes a hot working set, uniform cold traffic and periodic
  // sequential sweeps (a collector scanning partitions) — the pattern that
  // separates scan-resistant policies from strict LRU.
  Rng rng(42);
  PageId scan_cursor = 0;
  for (int step = 0; step < kSteps; ++step) {
    PageId page;
    const uint64_t draw = rng.UniformInt(100);
    if (draw < 70) {
      page = rng.UniformInt(kHotSet);
    } else if (draw < 90) {
      page = rng.UniformInt(kPages);
    } else {
      page = scan_cursor;
      scan_cursor = (scan_cursor + 1) % kPages;
    }
    const AccessMode mode =
        rng.Bernoulli(0.3) ? AccessMode::kWrite : AccessMode::kRead;
    auto frame = pool.GetPage(page, mode);
    if (!frame.ok()) {
      std::fprintf(stderr, "sweep GetPage failed: %s\n",
                   frame.status().ToString().c_str());
      std::exit(1);
    }
    if (mode == AccessMode::kWrite) {
      (*frame)[0] = static_cast<std::byte>(step);
    }
  }

  SweepRow row;
  row.policy = ReplacementPolicyName(policy);
  row.device = DeviceKindName(device);
  const BufferStats stats = pool.stats();
  row.hits = stats.hits;
  row.misses = stats.misses;
  row.evictions = stats.misses - pool.resident_pages();
  row.device_writes = dev->stats().page_writes;
  row.device_time_ms = dev->EstimateTimeMs();
  if (auto* ssd = dynamic_cast<SsdDevice*>(dev.get())) {
    row.erases = ssd->erases();
    row.write_amplification = ssd->WriteAmplification();
  }
  return row;
}

int RunIoSweep(const char* json_path) {
  const ReplacementPolicyKind policies[] = {ReplacementPolicyKind::kLru,
                                            ReplacementPolicyKind::kClock,
                                            ReplacementPolicyKind::kTwoQ};
  const DeviceKind devices[] = {DeviceKind::kSimulatedDisk, DeviceKind::kSsd};

  std::vector<SweepRow> rows;
  std::printf("I/O sweep: %zu policies x %zu devices, fixed trace\n\n",
              std::size(policies), std::size(devices));
  std::printf("%-6s %-15s %10s %9s %10s %14s %7s %6s\n", "policy", "device",
              "hit_rate", "misses", "evictions", "device_ms", "erases", "WA");
  for (ReplacementPolicyKind policy : policies) {
    for (DeviceKind device : devices) {
      const SweepRow row = RunSweepConfig(policy, device);
      const double hit_rate =
          static_cast<double>(row.hits) /
          static_cast<double>(row.hits + row.misses);
      std::printf("%-6s %-15s %9.4f%% %9llu %10llu %14.1f %7llu %6.2f\n",
                  row.policy, row.device, 100.0 * hit_rate,
                  static_cast<unsigned long long>(row.misses),
                  static_cast<unsigned long long>(row.evictions),
                  row.device_time_ms,
                  static_cast<unsigned long long>(row.erases),
                  row.write_amplification);
      rows.push_back(row);
    }
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"io\",\n  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const double hit_rate = static_cast<double>(row.hits) /
                            static_cast<double>(row.hits + row.misses);
    json << "    {\"policy\": \"" << row.policy << "\", \"device\": \""
         << row.device << "\", \"hit_rate\": " << hit_rate
         << ", \"hits\": " << row.hits << ", \"misses\": " << row.misses
         << ", \"evictions\": " << row.evictions
         << ", \"device_writes\": " << row.device_writes
         << ", \"estimated_device_time_ms\": " << row.device_time_ms
         << ", \"erases\": " << row.erases
         << ", \"write_amplification\": " << row.write_amplification << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nwrote %s\n", json_path);
  return json.good() ? 0 : 1;
}

}  // namespace
}  // namespace odbgc

// BENCHMARK_MAIN, plus the JSON sweep when a *.json argument is present
// (stripped before google-benchmark sees the command line).
int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    const size_t len = std::strlen(argv[i]);
    if (i > 0 && len > 5 && std::strcmp(argv[i] + len - 5, ".json") == 0) {
      json_path = argv[i];
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  if (json_path != nullptr) {
    if (int rc = odbgc::RunIoSweep(json_path); rc != 0) return rc;
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
