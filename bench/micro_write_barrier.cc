// Microbenchmarks (google-benchmark) for the write-barrier machinery the
// paper argues is cheap: remembered-set maintenance, policy counter
// updates, and (for WeightedPointer) weight relaxation. These are the
// per-pointer-store CPU costs that Section 3.1's cost discussion compares.

#include <benchmark/benchmark.h>

#include "core/policies.h"
#include "storage/disk.h"
#include "core/remembered_set.h"
#include "core/weights.h"
#include "util/random.h"

namespace odbgc {
namespace {

void BM_RememberedSetAddRemove(benchmark::State& state) {
  InterPartitionIndex index;
  Rng rng(1);
  uint64_t next = 1;
  for (auto _ : state) {
    const ObjectId source{next++};
    const ObjectId target{next++};
    const PartitionId sp = static_cast<PartitionId>(rng.UniformInt(16));
    PartitionId tp = static_cast<PartitionId>(rng.UniformInt(16));
    if (tp == sp) tp = (tp + 1) % 16;
    index.AddReference(source, sp, 0, target, tp);
    index.RemoveReference(source, 0, target);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RememberedSetAddRemove);

void BM_RememberedSetLookupTargets(benchmark::State& state) {
  InterPartitionIndex index;
  Rng rng(2);
  for (uint64_t i = 0; i < 10000; ++i) {
    const PartitionId sp = static_cast<PartitionId>(rng.UniformInt(16));
    PartitionId tp = static_cast<PartitionId>(rng.UniformInt(16));
    if (tp == sp) tp = (tp + 1) % 16;
    index.AddReference(ObjectId{2 * i + 1}, sp, 0, ObjectId{2 * i + 2}, tp);
  }
  for (auto _ : state) {
    const PartitionId p = static_cast<PartitionId>(rng.UniformInt(16));
    benchmark::DoNotOptimize(index.ExternalTargetsInPartition(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RememberedSetLookupTargets);

void BM_UpdatedPointerBarrier(benchmark::State& state) {
  UpdatedPointerPolicy policy;
  Rng rng(3);
  SlotWriteEvent event;
  event.source = ObjectId{1};
  event.old_target = ObjectId{2};
  for (auto _ : state) {
    event.source_partition = static_cast<PartitionId>(rng.UniformInt(16));
    event.old_target_partition =
        static_cast<PartitionId>(rng.UniformInt(16));
    policy.OnPointerStore(event, 16);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdatedPointerBarrier);

void BM_WeightedPointerBarrier(benchmark::State& state) {
  WeightedPointerPolicy policy;
  Rng rng(4);
  SlotWriteEvent event;
  event.source = ObjectId{1};
  event.old_target = ObjectId{2};
  for (auto _ : state) {
    event.old_target_partition =
        static_cast<PartitionId>(rng.UniformInt(16));
    policy.OnPointerStore(
        event, static_cast<uint8_t>(1 + rng.UniformInt(16)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeightedPointerBarrier);

// Weight relaxation over a chain of the given depth: the transitive
// propagation cost the paper charges WeightedPointer for.
void BM_WeightRelaxationChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  SimulatedDisk disk(8192);
  BufferPool buffer(&disk, 256);
  StoreOptions options;
  options.pages_per_partition = 64;
  ObjectStore store(options, &disk, &buffer);
  WeightTracker weights(&store, /*charge_io=*/false);

  std::vector<ObjectId> chain;
  for (int i = 0; i < depth; ++i) {
    auto id = store.Allocate(100, 2);
    chain.push_back(*id);
    if (i > 0) (void)store.WriteSlot(chain[i - 1], 0, chain[i]);
  }
  for (auto _ : state) {
    state.PauseTiming();
    WeightTracker fresh(&store, false);
    for (int i = 0; i + 1 < depth; ++i) {
      (void)fresh.OnPointerStored(chain[i], chain[i + 1]);
    }
    state.ResumeTiming();
    // Rooting the head relaxes the whole chain transitively.
    benchmark::DoNotOptimize(fresh.OnRootAdded(chain[0]));
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_WeightRelaxationChain)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace odbgc

BENCHMARK_MAIN();
