// Self-profiling harness for the simulator's hot paths. Runs three probe
// configurations that stress different subsystems:
//
//   census_heavy   kMostGarbage + census at every 1000-event snapshot —
//                  dominated by whole-database reachability marking
//   index_heavy    kUpdatedPointer + round-robin placement — maximizes
//                  inter-partition pointers, stressing the remembered-set
//                  index and the write barrier
//   no_collection  kNoCollection — pure trace-apply throughput; the
//                  instrumentation itself must not slow this down
//   barrier_heavy  kMutatedPartition + card-marking barrier + round-robin
//                  placement + a mutation-heavy workload — dominated by
//                  per-store barrier work, per-partition policy counters,
//                  and card scans over the partition rosters
//   buffer_churn   kUpdatedPointer with a buffer pool far smaller than
//                  the live set — nearly every page touch misses, so the
//                  frame table and eviction bookkeeping dominate
//
// Each probe reports events/sec, the process heap high-water mark after
// the probe (ru_maxrss — monotonic across the run, so the last probe's
// figure is the whole run's peak), plus the per-phase wall-clock breakdown
// from the heap's wall-timer registry. The coarse phases (census,
// collection) are always timed; --profile additionally enables the
// per-event timers (index maintenance, trace apply), which cost a few
// clock reads per event and therefore distort the headline events/sec —
// leave it off when comparing throughput numbers. Everything is written
// to a JSON file for the CI artifact.
//
// Usage: hotpath [output.json] [--check baseline.json] [--profile]
//
// With --check, exits 1 if any probe's events/sec falls below 80% of the
// baseline's value for that probe (a >20% regression). The checked-in
// baseline holds deliberately conservative floors so routine CI-hardware
// variance does not trip it; a trip means a real hot-path regression.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/simulator.h"
#include "util/metrics_registry.h"

namespace odbgc {
namespace {

using Clock = std::chrono::steady_clock;

struct ProbeResult {
  std::string name;
  uint64_t events = 0;
  double wall_seconds = 0;
  double events_per_sec = 0;
  /// Process peak RSS (KiB) sampled right after the probe. ru_maxrss is a
  /// process-wide high-water mark, so this only ever grows across probes.
  long max_rss_kb = 0;
  std::vector<MetricSample> wall_phases;
};

long MaxRssKb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;
}

bool g_profile = false;

ProbeResult RunProbe(const char* name, SimulationConfig config) {
  config.heap.profile_hot_paths = g_profile;
  Simulator sim(config);
  const auto start = Clock::now();
  if (Status status = sim.Run(); !status.ok()) bench::Fail(status, name);
  SimulationResult result = sim.Finish();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  ProbeResult probe;
  probe.name = name;
  probe.events = result.app_events;
  probe.wall_seconds = seconds;
  probe.events_per_sec =
      seconds > 0 ? static_cast<double>(result.app_events) / seconds : 0;
  probe.max_rss_kb = MaxRssKb();
  probe.wall_phases = sim.heap().wall_metrics()->Snapshot();

  std::printf(
      "%-14s events=%-10llu wall=%8.3fs  events/sec=%12.0f  rss=%ld KiB\n",
      name, static_cast<unsigned long long>(probe.events), seconds,
      probe.events_per_sec, probe.max_rss_kb);
  for (const MetricSample& sample : probe.wall_phases) {
    if (sample.total() == 0) continue;
    std::printf("    %-24s %10.1f ms\n", sample.name.c_str(),
                static_cast<double>(sample.total()) / 1e6);
  }
  return probe;
}

/// Pulls `"<probe>_events_per_sec": <number>` out of a baseline JSON file
/// by plain string scanning (no JSON library in the repo; the file is
/// machine-written with known key names).
double BaselineEventsPerSec(const std::string& text, const std::string& probe) {
  const std::string key = "\"" + probe + "_events_per_sec\":";
  const size_t at = text.find(key);
  if (at == std::string::npos) return -1;
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;

  const char* json_path = "BENCH_hotpath.json";
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      g_profile = true;
    } else {
      json_path = argv[i];
    }
  }

  bench::PrintHeader("Hot-path throughput probes",
                     "simulator engineering (no paper table)");

  std::vector<ProbeResult> probes;
  {
    SimulationConfig c = bench::BaseConfig();
    c.heap.policy = PolicyKind::kMostGarbage;
    c.snapshot_interval = 1000;
    c.census_at_snapshots = true;
    probes.push_back(RunProbe("census_heavy", c));
  }
  {
    SimulationConfig c = bench::BaseConfig();
    c.heap.policy = PolicyKind::kUpdatedPointer;
    c.heap.store.placement = PlacementPolicy::kRoundRobin;
    probes.push_back(RunProbe("index_heavy", c));
  }
  {
    SimulationConfig c = bench::BaseConfig();
    c.heap.policy = PolicyKind::kNoCollection;
    probes.push_back(RunProbe("no_collection", c));
  }
  {
    SimulationConfig c = bench::BaseConfig();
    c.heap.policy = PolicyKind::kMutatedPartition;
    c.heap.barrier = BarrierMode::kCardMarking;
    c.heap.store.placement = PlacementPolicy::kRoundRobin;
    c.workload.visit_modify_prob = 0.20;
    c.workload.dense_edge_prob = 0.167;
    probes.push_back(RunProbe("barrier_heavy", c));
  }
  {
    SimulationConfig c = bench::BaseConfig();
    c.heap.policy = PolicyKind::kUpdatedPointer;
    c.heap.buffer_pages = 8;
    probes.push_back(RunProbe("buffer_churn", c));
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"hotpath\",\n";
  json << "  \"fast_mode\": " << (bench::FastMode() ? "true" : "false")
       << ",\n  \"probes\": [\n";
  for (size_t i = 0; i < probes.size(); ++i) {
    const ProbeResult& p = probes[i];
    json << "    {\n      \"name\": \"" << p.name << "\",\n";
    json << "      \"events\": " << p.events << ",\n";
    json << "      \"wall_seconds\": " << p.wall_seconds << ",\n";
    json << "      \"events_per_sec\": " << p.events_per_sec << ",\n";
    json << "      \"max_rss_kb\": " << p.max_rss_kb << ",\n";
    json << "      \"wall_phases_ns\": {";
    bool first = true;
    for (const MetricSample& sample : p.wall_phases) {
      if (sample.total() == 0) continue;
      if (!first) json << ", ";
      first = false;
      json << "\"" << sample.name << "\": " << sample.total();
    }
    json << "}\n    }" << (i + 1 < probes.size() ? "," : "") << "\n";
  }
  // The whole run's heap high-water mark (KiB): memory wins and
  // regressions show up here alongside the throughput numbers.
  json << "  ],\n  \"max_rss_kb\": " << MaxRssKb() << "\n}\n";
  json.close();
  std::printf("\nWrote %s\n", json_path);

  if (baseline_path != nullptr) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot open baseline %s\n", baseline_path);
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    bool ok = true;
    for (const ProbeResult& probe : probes) {
      const double baseline = BaselineEventsPerSec(text, probe.name);
      if (baseline <= 0) continue;  // Probe not covered by the baseline.
      const double floor = baseline * 0.8;  // >20% regression fails.
      const bool pass = probe.events_per_sec >= floor;
      std::printf("check %-14s %12.0f ev/s vs floor %12.0f (baseline %.0f) %s\n",
                  probe.name.c_str(), probe.events_per_sec, floor, baseline,
                  pass ? "OK" : "REGRESSION");
      ok = ok && pass;
    }
    if (!ok) return 1;
  }
  return json.good() ? 0 : 1;
}
