// Extension bench (beyond the paper): two later-literature baselines —
// least-recently-collected rotation (fairness, no hints) and an LFS-style
// cost-benefit victim selector (hints normalized by copying cost) —
// against the paper's Random, UpdatedPointer and MostGarbage on the base
// workload. Where does the paper's winner sit in the wider design space?

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "core/extension_policies.h"
#include "sim/simulator.h"
#include "util/statistics.h"
#include "util/table_printer.h"

namespace {

using namespace odbgc;

// Runs `seeds` simulations of the base config with the given factory (or
// built-in kind when factory is null) and accumulates the key metrics.
struct Row {
  RunningStat total_io, fraction, efficiency, storage;
};

// The CostBenefit policy needs the heap's store; rebind per run.
const ObjectStore* g_bound_store = nullptr;

Row RunPolicy(const SimulationConfig& base, int seeds, PolicyKind kind,
              int factory /* 0 none, 1 LRC, 2 cost-benefit */) {
  Row row;
  for (int s = 0; s < seeds; ++s) {
    SimulationConfig config = base;
    config.seed = 1 + s;
    config.heap.policy = kind;
    if (factory == 1) {
      config.heap.policy_factory = [] {
        return std::make_unique<LeastRecentlyCollectedPolicy>();
      };
    } else if (factory == 2) {
      config.heap.policy_factory = [] {
        return std::make_unique<CostBenefitPolicy>(&g_bound_store);
      };
    }
    Simulator simulator(config);
    if (factory == 2) g_bound_store = &simulator.heap().store();
    if (Status status = simulator.Run(); !status.ok()) {
      bench::Fail(status, "run");
    }
    const SimulationResult run = simulator.Finish();
    row.total_io.Add(static_cast<double>(run.total_io()));
    row.fraction.Add(run.FractionReclaimedPct());
    row.efficiency.Add(run.EfficiencyKbPerIo());
    row.storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
  }
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader("Extension: wider policy design space",
                     "beyond the paper (later-literature baselines)");

  const int seeds = bench::SeedsOrDefault(3);
  const SimulationConfig base = bench::BaseConfig();

  TablePrinter table({"Policy", "Total I/Os", "% of garbage",
                      "Efficiency (KB/IO)", "Max storage (KB)"});
  struct Entry {
    const char* name;
    PolicyKind kind;
    int factory;
  };
  const Entry kEntries[] = {
      {"Random", PolicyKind::kRandom, 0},
      {"LeastRecentlyCollected", PolicyKind::kUpdatedPointer, 1},
      {"UpdatedPointer", PolicyKind::kUpdatedPointer, 0},
      {"CostBenefit (LFS-style)", PolicyKind::kUpdatedPointer, 2},
      {"MostGarbage (oracle)", PolicyKind::kMostGarbage, 0},
  };
  for (const Entry& entry : kEntries) {
    const Row row = RunPolicy(base, seeds, entry.kind, entry.factory);
    table.AddRow({entry.name, FormatCount(row.total_io.mean()),
                  FormatDouble(row.fraction.mean(), 1),
                  FormatDouble(row.efficiency.mean(), 2),
                  FormatCount(row.storage.mean())});
    std::printf("  %-24s done\n", entry.name);
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "\nReading: least-recently-collected rotation is a surprisingly\n"
      "strong hint-free baseline when garbage forms everywhere at a\n"
      "steady rate (it never starves a partition, so every partition is\n"
      "collected at its accumulated-garbage peak), while Random revisits\n"
      "some partitions early and others never. The hint-driven policies\n"
      "still win, and cost-benefit's copying-cost refinement sits within\n"
      "noise of plain UpdatedPointer here — the overwritten-pointer hint\n"
      "is the load-bearing ingredient.\n");
  return 0;
}
