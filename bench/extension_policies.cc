// Extension bench (beyond the paper): two later-literature baselines —
// least-recently-collected rotation (fairness, no hints) and an LFS-style
// cost-benefit victim selector (hints normalized by copying cost) —
// against the paper's Random, UpdatedPointer and MostGarbage on the base
// workload. Where does the paper's winner sit in the wider design space?
//
// All five policies come from the string-named registry, so this bench is
// a plain ExperimentSpec run; the extension policies need no special
// wiring (the registry hands them the heap's store).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Extension: wider policy design space",
                     "beyond the paper (later-literature baselines)");

  const ExperimentSpec spec =
      bench::BaseSpec(3)
          .WithPolicies({"Random", "LeastRecentlyCollected", "UpdatedPointer",
                         "CostBenefit", "MostGarbage"})
          .WithManifestDir(bench::ManifestDirOrEmpty());
  std::printf("running %zu policies x %d seeds...\n\n", spec.policies.size(),
              spec.num_seeds);
  auto experiment = RunExperiment(spec);
  if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

  TablePrinter table({"Policy", "Total I/Os", "% of garbage",
                      "Efficiency (KB/IO)", "Max storage (KB)"});
  for (const PolicyRuns& set : experiment->sets) {
    RunningStat total_io, fraction, efficiency, storage;
    for (const auto& run : set.runs) {
      total_io.Add(static_cast<double>(run.total_io()));
      fraction.Add(run.FractionReclaimedPct());
      efficiency.Add(run.EfficiencyKbPerIo());
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
    }
    table.AddRow({set.name, FormatCount(total_io.mean()),
                  FormatDouble(fraction.mean(), 1),
                  FormatDouble(efficiency.mean(), 2),
                  FormatCount(storage.mean())});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: least-recently-collected rotation is a surprisingly\n"
      "strong hint-free baseline when garbage forms everywhere at a\n"
      "steady rate (it never starves a partition, so every partition is\n"
      "collected at its accumulated-garbage peak), while Random revisits\n"
      "some partitions early and others never. The hint-driven policies\n"
      "still win, and cost-benefit's copying-cost refinement sits within\n"
      "noise of plain UpdatedPointer here — the overwritten-pointer hint\n"
      "is the load-bearing ingredient.\n");
  return 0;
}
