// Ablation (Table 1: "When to perform collection"): the overwrite-count
// trigger threshold. The paper holds it fixed (150-300 overwrites,
// yielding 20-30 collections) and explicitly leaves when-to-collect to
// future work; this sweep shows the trade it fixes.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Ablation: collection trigger threshold",
                     "Table 1 policy alternative ('when to collect')");

  const int seeds = bench::SeedsOrDefault(5);
  TablePrinter table({"Trigger (overwrites)", "Collections", "Total I/Os",
                      "GC I/Os", "Reclaimed (KB)", "% of garbage",
                      "Max storage (KB)"});

  for (uint32_t trigger : {50u, 100u, 150u, 300u, 600u}) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.heap.overwrite_trigger = trigger;
    spec.policies = {"UpdatedPointer"};
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    RunningStat collections, total_io, gc_io, reclaimed, fraction, storage;
    for (const auto& run : experiment->sets[0].runs) {
      collections.Add(static_cast<double>(run.collections));
      total_io.Add(static_cast<double>(run.total_io()));
      gc_io.Add(static_cast<double>(run.gc_io));
      reclaimed.Add(static_cast<double>(run.garbage_reclaimed_bytes) /
                    1024.0);
      fraction.Add(run.FractionReclaimedPct());
      storage.Add(static_cast<double>(run.max_storage_bytes) / 1024.0);
    }
    table.AddRow({std::to_string(trigger), FormatDouble(collections.mean(), 1),
                  FormatCount(total_io.mean()), FormatCount(gc_io.mean()),
                  FormatCount(reclaimed.mean()),
                  FormatDouble(fraction.mean(), 1),
                  FormatCount(storage.mean())});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading (UpdatedPointer): collecting more often reclaims a larger\n"
      "fraction and caps storage lower, at the cost of more collector I/O;\n"
      "the paper's 150-300 band balances the two.\n");
  return 0;
}
