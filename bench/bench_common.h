#ifndef ODBGC_BENCH_BENCH_COMMON_H_
#define ODBGC_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure bench binaries. Each binary
// regenerates one table or figure from the paper; this header provides the
// environment knobs so the whole suite can be scaled down for smoke runs:
//
//   ODBGC_SEEDS=<n>   runs per configuration (default: per-bench, usually
//                     the paper's 10 for tables)
//   ODBGC_FAST=1      quarter-size workloads, 2 seeds — finishes in
//                     seconds, shapes only roughly preserved

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "sim/config.h"
#include "sim/runner.h"

namespace odbgc::bench {

inline int SeedsOrDefault(int fallback) {
  if (const char* env = std::getenv("ODBGC_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  if (std::getenv("ODBGC_FAST") != nullptr) return 2;
  return fallback;
}

inline bool FastMode() { return std::getenv("ODBGC_FAST") != nullptr; }

/// The base configuration for this bench run: the paper's (Tables 2-4)
/// unless ODBGC_FAST scales it down 4x.
inline SimulationConfig BaseConfig() {
  SimulationConfig config = PaperBaseConfig();
  if (FastMode()) {
    config.workload = config.workload.WithTotalAllocation(
        config.workload.total_alloc_bytes / 4);
    config.heap.store.pages_per_partition = 24;
    config.heap.buffer_pages = 24;
  }
  return config;
}

/// The spec every bench starts from: BaseConfig() under ODBGC_SEEDS (or
/// `fallback_seeds`) seeds. Benches chain the ExperimentSpec builder for
/// their own axis:
///
///   auto spec = bench::BaseSpec(10).WithPolicies({"UpdatedPointer"});
inline ExperimentSpec BaseSpec(int fallback_seeds) {
  return ExperimentSpec::Base(BaseConfig())
      .WithSeeds(SeedsOrDefault(fallback_seeds));
}

/// Manifest directory for this bench, from ODBGC_MANIFEST_DIR; empty (no
/// manifests) when unset. Benches pass it through WithManifestDir so any
/// table run can feed odbgc-report.
inline std::string ManifestDirOrEmpty() {
  const char* env = std::getenv("ODBGC_MANIFEST_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("  (Cook, Wolf & Zorn, \"Partition Selection Policies in Object\n");
  std::printf("   Database Garbage Collection\", CU-CS-653-93 / SIGMOD 1994)\n");
  std::printf("================================================================\n\n");
}

inline void Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

}  // namespace odbgc::bench

#endif  // ODBGC_BENCH_BENCH_COMMON_H_
