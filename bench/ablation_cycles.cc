// Ablation (Section 6.5 / future work): distributed cyclic garbage and
// nepotism as connectivity rises. The paper observes that "even small
// increases in the connectivity of the database can produce significant
// amounts of distributed garbage due to nepotism" — this bench quantifies
// the end-of-run garbage anatomy: locally collectable vs nepotism-
// protected vs stuck on cross-partition dead cycles (which no ordering of
// single-partition collections can ever reclaim).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "core/reachability.h"
#include "sim/simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader(
      "Ablation: nepotism and distributed cyclic garbage vs connectivity",
      "Section 6.5 (future work)");

  TablePrinter table({"Connectivity", "Unreclaimed (KB)",
                      "Locally collectable (KB)", "Nepotism (KB)",
                      "Cross-partition cycles (KB)", "% reclaimed"});

  for (double connectivity : {1.005, 1.040, 1.083, 1.167, 1.30}) {
    SimulationConfig config = bench::BaseConfig();
    config.workload = config.workload.WithConnectivity(connectivity);
    config.heap.policy = PolicyKind::kUpdatedPointer;
    Simulator simulator(config);
    const Status status = simulator.Run();
    if (!status.ok()) bench::Fail(status, "run");
    SimulationResult result = simulator.Finish();
    const GarbageAnatomy anatomy =
        ComputeGarbageAnatomy(simulator.heap().store());

    table.AddRow(
        {FormatDouble(connectivity, 3),
         FormatCount(static_cast<double>(result.unreclaimed_garbage_bytes) /
                     1024.0),
         FormatCount(static_cast<double>(anatomy.locally_collectable_bytes) /
                     1024.0),
         FormatCount(static_cast<double>(anatomy.nepotism_bytes) / 1024.0),
         FormatCount(
             static_cast<double>(anatomy.cross_partition_cycle_bytes) /
             1024.0),
         FormatDouble(result.FractionReclaimedPct(), 1)});
    std::printf("  C=%.3f done\n", connectivity);
  }
  std::printf("\nEnd-of-run garbage anatomy (UpdatedPointer, single seed):\n");
  table.Print(std::cout);
  std::printf(
      "\nReading: at every connectivity, roughly half of the unreclaimed\n"
      "garbage is nepotism-protected — reclaimable only after the\n"
      "referencing partitions get collected first — while true cross-\n"
      "partition cyclic garbage is tiny but *permanent*: no ordering of\n"
      "single-partition collections ever reclaims it (see the\n"
      "full_collection_interval option / CollectFullDatabase for the\n"
      "global pass the paper's Section 6.5 calls for). Rising connectivity\n"
      "also keeps more detached data transitively reachable, shrinking\n"
      "total garbage while degrading what the collector can find.\n");
  return 0;
}
