// Storage-engine I/O probe: measures the file-backed PageDevice the same
// way hotpath.cc measures the simulator — a fixed set of named probes and
// a JSON artifact for CI. No paper table; this grounds the cost model the
// paper only estimates ("number of page I/O operations") in wall-clock
// numbers from a real file.
//
// Probes:
//   write_bXXX[_direct]   write every page in batches of XXX pages through
//                         the I/O scheduler (fsync per barrier), buffered
//                         and O_DIRECT (the latter silently measures the
//                         buffered fallback on filesystems that refuse
//                         O_DIRECT — `direct_effective` records which)
//   read_seq              sequential ReadPage sweep, read-ahead disabled
//   read_readahead        the same sweep with Prefetch announcing each
//                         64-page window ahead of the reads
//
// Usage: io_file [output.json]
//
// The working file lives under $TMPDIR (default /tmp); CI points TMPDIR at
// a tmpfs so the numbers measure the engine, not a CI disk's mood.
// ODBGC_FAST=1 quarters the page count.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "storage/file_device.h"

namespace odbgc {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kPageSize = 8192;

size_t NumPages() {
  return bench::FastMode() ? 512 : 2048;  // 4 MB / 16 MB of payload.
}

std::string WorkPath(const std::string& name) {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base = tmpdir != nullptr ? tmpdir : "/tmp";
  return base + "/odbgc_io_file_" + name + ".odb";
}

struct ProbeResult {
  std::string name;
  bool direct_requested = false;
  bool direct_effective = false;
  size_t batch_pages = 0;
  size_t pages = 0;
  double wall_seconds = 0;
  double pages_per_sec = 0;
  double mb_per_sec = 0;
  uint64_t fsyncs = 0;
  uint64_t readahead_hits = 0;
  uint64_t readahead_misses = 0;
};

void Report(const ProbeResult& p) {
  std::printf("%-18s pages=%-6zu batch=%-4zu wall=%8.4fs  %10.0f pages/s"
              "  %8.1f MB/s%s\n",
              p.name.c_str(), p.pages, p.batch_pages, p.wall_seconds,
              p.pages_per_sec, p.mb_per_sec,
              p.direct_requested
                  ? (p.direct_effective ? "  [O_DIRECT]" : "  [buffered fallback]")
                  : "");
}

ProbeResult WriteProbe(size_t batch_pages, bool direct) {
  const size_t pages = NumPages();
  FileDeviceOptions options;
  options.path = WorkPath("write");
  options.direct_io = direct;
  options.readahead_pages = 0;
  FileDevice device(kPageSize, nullptr, options);
  if (!device.status().ok()) bench::Fail(device.status(), "io_file open");
  device.AllocatePages(pages);

  std::vector<std::byte> payload(kPageSize);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 131 + 7);
  }

  const auto start = Clock::now();
  std::vector<PageWriteRequest> batch;
  batch.reserve(batch_pages);
  for (size_t first = 0; first < pages; first += batch_pages) {
    batch.clear();
    const size_t count = std::min(batch_pages, pages - first);
    for (size_t i = 0; i < count; ++i) {
      batch.push_back({static_cast<PageId>(first + i),
                       {payload.data(), payload.size()}});
    }
    size_t written = 0;
    if (Status status = device.WritePages(batch.data(), batch.size(),
                                          &written);
        !status.ok()) {
      bench::Fail(status, "io_file write");
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  ProbeResult probe;
  probe.name = "write_b" + std::to_string(batch_pages) +
               (direct ? "_direct" : "");
  probe.direct_requested = direct;
  probe.direct_effective = device.direct_io_effective();
  probe.batch_pages = batch_pages;
  probe.pages = pages;
  probe.wall_seconds = seconds;
  probe.pages_per_sec = seconds > 0 ? pages / seconds : 0;
  probe.mb_per_sec =
      seconds > 0 ? pages * kPageSize / seconds / (1024.0 * 1024.0) : 0;
  probe.fsyncs = device.MeasuredStats().fsyncs;
  ::unlink(options.path.c_str());
  Report(probe);
  return probe;
}

ProbeResult ReadProbe(bool readahead) {
  const size_t pages = NumPages();
  constexpr size_t kWindow = 64;
  FileDeviceOptions options;
  options.path = WorkPath("read");
  options.readahead_pages = readahead ? kWindow : 0;
  FileDevice device(kPageSize, nullptr, options);
  if (!device.status().ok()) bench::Fail(device.status(), "io_file open");
  device.AllocatePages(pages);

  std::vector<std::byte> payload(kPageSize, std::byte{0x42});
  for (size_t p = 0; p < pages; ++p) {
    if (Status status = device.WritePage(p, payload); !status.ok()) {
      bench::Fail(status, "io_file prepare");
    }
  }

  std::vector<std::byte> out(kPageSize);
  std::vector<PageId> window;
  const auto start = Clock::now();
  for (size_t p = 0; p < pages; ++p) {
    if (readahead && p % kWindow == 0) {
      window.clear();
      for (size_t i = p; i < std::min(p + kWindow, pages); ++i) {
        window.push_back(static_cast<PageId>(i));
      }
      device.Prefetch(window);
    }
    if (Status status = device.ReadPage(p, out); !status.ok()) {
      bench::Fail(status, "io_file read");
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  const MeasuredIoStats measured = device.MeasuredStats();
  ProbeResult probe;
  probe.name = readahead ? "read_readahead" : "read_seq";
  probe.batch_pages = readahead ? kWindow : 1;
  probe.pages = pages;
  probe.wall_seconds = seconds;
  probe.pages_per_sec = seconds > 0 ? pages / seconds : 0;
  probe.mb_per_sec =
      seconds > 0 ? pages * kPageSize / seconds / (1024.0 * 1024.0) : 0;
  probe.readahead_hits = measured.readahead_hits;
  probe.readahead_misses = measured.readahead_misses;
  ::unlink(options.path.c_str());
  Report(probe);
  return probe;
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;

  const char* json_path = "BENCH_storage.json";
  if (argc > 1) json_path = argv[1];

  bench::PrintHeader("File-backend I/O probes",
                     "storage engineering (no paper table)");

  std::vector<ProbeResult> probes;
  for (const size_t batch : {size_t{1}, size_t{8}, size_t{32}, size_t{128}}) {
    probes.push_back(WriteProbe(batch, /*direct=*/false));
  }
  for (const size_t batch : {size_t{32}, size_t{128}}) {
    probes.push_back(WriteProbe(batch, /*direct=*/true));
  }
  probes.push_back(ReadProbe(/*readahead=*/false));
  probes.push_back(ReadProbe(/*readahead=*/true));

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"storage\",\n";
  json << "  \"fast_mode\": " << (bench::FastMode() ? "true" : "false")
       << ",\n  \"page_size\": " << kPageSize << ",\n  \"probes\": [\n";
  for (size_t i = 0; i < probes.size(); ++i) {
    const ProbeResult& p = probes[i];
    json << "    {\n      \"name\": \"" << p.name << "\",\n";
    json << "      \"direct_requested\": "
         << (p.direct_requested ? "true" : "false") << ",\n";
    json << "      \"direct_effective\": "
         << (p.direct_effective ? "true" : "false") << ",\n";
    json << "      \"batch_pages\": " << p.batch_pages << ",\n";
    json << "      \"pages\": " << p.pages << ",\n";
    json << "      \"wall_seconds\": " << p.wall_seconds << ",\n";
    json << "      \"pages_per_sec\": " << p.pages_per_sec << ",\n";
    json << "      \"mb_per_sec\": " << p.mb_per_sec << ",\n";
    json << "      \"fsyncs\": " << p.fsyncs << ",\n";
    json << "      \"readahead_hits\": " << p.readahead_hits << ",\n";
    json << "      \"readahead_misses\": " << p.readahead_misses << "\n";
    json << "    }" << (i + 1 < probes.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("\nWrote %s\n", json_path);
  return 0;
}
