// Regenerates Table 5: effect of database connectivity on the percentage
// of garbage reclaimed, for C in {1.005, 1.040, 1.083, 1.167} pointers per
// object (the paper's column set).
//
// Expected shape: every policy's reclamation degrades as connectivity
// rises (more inter-partition pointers -> more nepotism); WeightedPointer,
// whose heuristic assumes a tree-like database, degrades the fastest.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader("Table 5: Database connectivity effects", "Table 5");

  const double kConnectivities[] = {1.167, 1.083, 1.040, 1.005};
  const int seeds = bench::SeedsOrDefault(3);
  std::printf("running 4 connectivities x 6 policies x %d seeds...\n\n",
              seeds);

  TablePrinter table({"Selection Policy", "C = 1.167", "C = 1.083",
                      "C = 1.040", "C = 1.005"});
  std::vector<std::vector<std::string>> cells(AllPolicyKinds().size());
  for (size_t p = 0; p < AllPolicyKinds().size(); ++p) {
    cells[p].push_back(PolicyName(AllPolicyKinds()[p]));
  }
  // Remembered-set size is the space cost the paper charges partitioned
  // collection; it grows directly with connectivity (Section 6.5).
  std::vector<std::string> remset_row{"(remset entries, UpdatedPointer)"};

  for (double connectivity : kConnectivities) {
    ExperimentSpec spec;
    spec.base = bench::BaseConfig();
    spec.base.workload = spec.base.workload.WithConnectivity(connectivity);
    spec.num_seeds = seeds;
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");
    for (size_t p = 0; p < experiment->sets.size(); ++p) {
      RunningStat fraction;
      for (const auto& run : experiment->sets[p].runs) {
        fraction.Add(run.FractionReclaimedPct());
      }
      cells[p].push_back(FormatDouble(fraction.mean(), 1));
    }
    RunningStat remset;
    for (const auto& run :
         experiment->Find(PolicyKind::kUpdatedPointer)->runs) {
      remset.Add(static_cast<double>(run.remset_entries));
    }
    remset_row.push_back(FormatCount(remset.mean()));
  }
  for (auto& row : cells) table.AddRow(std::move(row));
  table.AddSeparator();
  table.AddRow(std::move(remset_row));

  std::printf("%% of garbage reclaimed for given database connectivity C:\n");
  table.Print(std::cout);
  std::printf(
      "\nPaper's Table 5 (%% reclaimed, C = 1.167 / 1.083 / 1.040 / 1.005):\n"
      "  MutatedPartition 28.8 / 35.9 / 38.6 / 39.3\n"
      "  Random           41.6 / 40.9 / 41.2 / 62.7\n"
      "  WeightedPointer  41.4 / 50.1 / 53.1 / 57.8\n"
      "  UpdatedPointer   57.6 / 61.1 / 62.5 / 74.7\n"
      "  MostGarbage      66.5 / 66.3 / 61.6 / 79.0\n");
  return 0;
}
