// Regenerates Figure 6: storage required as a function of selection
// policy and maximum allocated storage, for databases allocating about
// 4 to 40 MB, with partition (and buffer) size scaled 24..100 pages along
// with the database as in the paper.
//
// Expected shape: as the database grows, the relative order of the
// policies is preserved — UpdatedPointer stays close to MostGarbage at
// every size, MutatedPartition measurably worse, NoCollection worst.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "sim/runner.h"
#include "util/statistics.h"
#include "util/table_printer.h"
#include "util/time_series.h"

int main() {
  using namespace odbgc;
  bench::PrintHeader(
      "Figure 6: Storage required vs maximum allocated storage", "Figure 6");

  std::vector<uint64_t> sizes_mb = {4, 10, 20, 40};
  if (bench::FastMode()) sizes_mb = {2, 4, 8};
  const int seeds = bench::SeedsOrDefault(2);

  TablePrinter table({"Max Allocated (MB)", "NoCollection",
                      "MutatedPartition", "Random", "WeightedPointer",
                      "UpdatedPointer", "MostGarbage"});
  const std::vector<PolicyKind> column_order = {
      PolicyKind::kNoCollection,    PolicyKind::kMutatedPartition,
      PolicyKind::kRandom,          PolicyKind::kWeightedPointer,
      PolicyKind::kUpdatedPointer,  PolicyKind::kMostGarbage};

  std::vector<TimeSeries> series;
  for (PolicyKind policy : column_order) {
    series.emplace_back(PolicyName(policy));
  }

  for (uint64_t mb : sizes_mb) {
    ExperimentSpec spec;
    spec.base = ScaledConfig(mb << 20);
    spec.num_seeds = seeds;
    std::printf("  %2llu MB (partition %zu pages) x %d seeds...\n",
                static_cast<unsigned long long>(mb),
                spec.base.heap.store.pages_per_partition, seeds);
    auto experiment = RunExperiment(spec);
    if (!experiment.ok()) bench::Fail(experiment.status(), "experiment");

    std::vector<std::string> row = {std::to_string(mb)};
    for (size_t c = 0; c < column_order.size(); ++c) {
      const PolicyRuns* runs = experiment->Find(column_order[c]);
      RunningStat storage_mb;
      for (const auto& run : runs->runs) {
        storage_mb.Add(static_cast<double>(run.max_storage_bytes) /
                       (1 << 20));
      }
      row.push_back(FormatDouble(storage_mb.mean(), 1));
      series[c].Add(static_cast<double>(mb), storage_mb.mean());
    }
    table.AddRow(std::move(row));
  }

  std::printf("\nStorage required (MB):\n");
  table.Print(std::cout);
  std::printf("\nStorage required (MB) vs maximum allocated (MB):\n");
  RenderAscii(series, std::cout, 60, 16);

  std::ofstream csv("fig6_scalability.csv");
  WriteCsv(series, csv);
  std::printf("\nwrote fig6_scalability.csv\n");
  return 0;
}
