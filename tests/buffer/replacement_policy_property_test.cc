// Policy-agnostic property tests: whatever the replacement policy, the
// buffer pool must stay a correct write-back cache (content, residency,
// capacity, I/O accounting), its replacement order must describe exactly
// the resident set, and its state must survive DiscardExtent plus a
// SaveState/LoadState round-trip bit-for-bit.

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "buffer/replacement_policy.h"
#include "storage/disk.h"
#include "storage/ssd_device.h"
#include "util/random.h"

namespace odbgc {
namespace {

constexpr size_t kPageSize = 32;
constexpr size_t kPages = 24;

struct Params {
  ReplacementPolicyKind kind;
  size_t frames;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<Params>& info) {
  return std::string(ReplacementPolicyName(info.param.kind)) + "_frames" +
         std::to_string(info.param.frames) + "_seed" +
         std::to_string(info.param.seed);
}

std::set<PageId> ResidentSet(const BufferPool& pool) {
  std::set<PageId> resident;
  for (PageId p = 0; p < kPages; ++p) {
    if (pool.IsResident(p)) resident.insert(p);
  }
  return resident;
}

class ReplacementPolicyPropertyTest : public ::testing::TestWithParam<Params> {
};

// Single-step invariants, observed before/after every access:
//  - a hit changes neither residency nor device traffic;
//  - a miss reads exactly one page, admits the requested page, and evicts
//    at most one page — paying a device write iff the evictee was dirty;
//  - Order() is always a permutation of the resident set;
//  - capacity is never exceeded, and the pool always presents the logical
//    content regardless of eviction decisions.
TEST_P(ReplacementPolicyPropertyTest, PoolInvariantsUnderRandomAccess) {
  const Params params = GetParam();
  constexpr int kSteps = 3000;

  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(kPages);
  BufferPool pool(&disk, params.frames, params.kind);

  std::vector<uint8_t> content(kPages, 0);  // Logical first byte per page.
  uint64_t expected_misses = 0;

  Rng rng(params.seed);
  for (int step = 0; step < kSteps; ++step) {
    const PageId page = rng.UniformInt(kPages);
    const bool write = rng.Bernoulli(0.4);

    const std::set<PageId> resident0 = ResidentSet(pool);
    std::vector<bool> dirty0(kPages);
    for (PageId p : resident0) dirty0[p] = pool.IsDirty(p);
    const uint64_t reads0 = disk.stats().page_reads;
    const uint64_t writes0 = disk.stats().page_writes;
    const bool hit = resident0.count(page) > 0;

    auto frame =
        pool.GetPage(page, write ? AccessMode::kWrite : AccessMode::kRead);
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(std::to_integer<uint8_t>((*frame)[0]), content[page])
        << "page " << page << " at step " << step;
    if (write) {
      const uint8_t value = static_cast<uint8_t>(step & 0xff);
      (*frame)[0] = static_cast<std::byte>(value);
      content[page] = value;
    }

    const std::set<PageId> resident1 = ResidentSet(pool);
    if (hit) {
      ASSERT_EQ(resident1, resident0) << "hit must not change residency";
      ASSERT_EQ(disk.stats().page_reads, reads0) << "hit must not read";
      ASSERT_EQ(disk.stats().page_writes, writes0) << "hit must not write";
    } else {
      ++expected_misses;
      ASSERT_TRUE(resident1.count(page) > 0);
      ASSERT_EQ(disk.stats().page_reads, reads0 + 1)
          << "each miss is exactly one device read";
      // Evicted = resident0 \ resident1; only a full pool evicts, and
      // only one page at a time.
      std::vector<PageId> evicted;
      for (PageId p : resident0) {
        if (resident1.count(p) == 0) evicted.push_back(p);
      }
      if (resident0.size() == params.frames) {
        ASSERT_EQ(evicted.size(), 1u) << "full pool must evict exactly one";
        const uint64_t expected_writes =
            writes0 + (dirty0[evicted[0]] ? 1 : 0);
        ASSERT_EQ(disk.stats().page_writes, expected_writes)
            << "write-back iff the evictee was dirty (step " << step << ")";
      } else {
        ASSERT_TRUE(evicted.empty()) << "no eviction below capacity";
        ASSERT_EQ(disk.stats().page_writes, writes0);
      }
    }

    ASSERT_LE(pool.resident_pages(), params.frames);
    if (write) {
      ASSERT_TRUE(pool.IsDirty(page));
    }

    // Order() is a permutation of the resident set.
    std::vector<PageId> order = pool.LruOrder();
    ASSERT_EQ(order.size(), resident1.size());
    std::sort(order.begin(), order.end());
    ASSERT_TRUE(std::equal(order.begin(), order.end(), resident1.begin()))
        << "replacement order out of sync with residency at step " << step;
  }

  EXPECT_EQ(pool.stats().misses, expected_misses);
  EXPECT_EQ(pool.stats().hits,
            static_cast<uint64_t>(kSteps) - expected_misses);
  EXPECT_EQ(disk.stats().page_reads, expected_misses);

  // After a flush, the device holds the logical content of every page.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (PageId p = 0; p < kPages; ++p) {
    std::vector<std::byte> buf(kPageSize);
    ASSERT_TRUE(disk.ReadPage(p, buf).ok());
    EXPECT_EQ(std::to_integer<uint8_t>(buf[0]), content[p]) << "page " << p;
  }
}

// The same access sequence against a fresh pool must reproduce the same
// replacement order and the same counters (policies are deterministic —
// recovery replays depend on it).
TEST_P(ReplacementPolicyPropertyTest, ReplayIsDeterministic) {
  const Params params = GetParam();
  auto run = [&](BufferPool& pool) {
    Rng rng(params.seed + 17);
    for (int step = 0; step < 1500; ++step) {
      const PageId page = rng.UniformInt(kPages);
      const AccessMode mode =
          rng.Bernoulli(0.3) ? AccessMode::kWrite : AccessMode::kRead;
      ASSERT_TRUE(pool.GetPage(page, mode).ok());
    }
  };

  SimulatedDisk disk_a(kPageSize);
  disk_a.AllocatePages(kPages);
  BufferPool a(&disk_a, params.frames, params.kind);
  run(a);

  SimulatedDisk disk_b(kPageSize);
  disk_b.AllocatePages(kPages);
  BufferPool b(&disk_b, params.frames, params.kind);
  run(b);

  EXPECT_EQ(a.LruOrder(), b.LruOrder());
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(disk_a.stats().page_writes, disk_b.stats().page_writes);
}

// DiscardExtent followed by SaveState/LoadState: the restored pool must
// agree on residency, dirty bits and replacement order, and must then make
// identical decisions under a further identical access sequence.
TEST_P(ReplacementPolicyPropertyTest, DiscardThenSaveLoadRoundTrip) {
  const Params params = GetParam();

  SimulatedDisk disk_a(kPageSize);
  disk_a.AllocatePages(kPages);
  BufferPool a(&disk_a, params.frames, params.kind);

  Rng rng(params.seed + 99);
  for (int step = 0; step < 600; ++step) {
    const PageId page = rng.UniformInt(kPages);
    const AccessMode mode =
        rng.Bernoulli(0.4) ? AccessMode::kWrite : AccessMode::kRead;
    ASSERT_TRUE(a.GetPage(page, mode).ok());
  }

  // Discard a partition's worth of pages mid-stream, like the collector
  // does after evacuating one.
  const PageExtent discarded{4, 6};
  a.DiscardExtent(discarded);
  for (PageId p = discarded.first_page; p < discarded.first_page + 6; ++p) {
    ASSERT_FALSE(a.IsResident(p));
  }

  std::stringstream state;
  a.SaveState(state);

  SimulatedDisk disk_b(kPageSize);
  disk_b.AllocatePages(kPages);
  BufferPool b(&disk_b, params.frames, params.kind);
  ASSERT_TRUE(b.LoadState(state).ok());

  EXPECT_EQ(b.LruOrder(), a.LruOrder());
  EXPECT_EQ(b.resident_pages(), a.resident_pages());
  for (PageId p = 0; p < kPages; ++p) {
    ASSERT_EQ(b.IsResident(p), a.IsResident(p)) << "page " << p;
    if (a.IsResident(p)) {
      ASSERT_EQ(b.IsDirty(p), a.IsDirty(p)) << "page " << p;
    }
  }

  // Lockstep: identical further accesses must keep the pools identical.
  for (int step = 0; step < 400; ++step) {
    const PageId page = rng.UniformInt(kPages);
    const AccessMode mode =
        rng.Bernoulli(0.4) ? AccessMode::kWrite : AccessMode::kRead;
    ASSERT_TRUE(a.GetPage(page, mode).ok());
    ASSERT_TRUE(b.GetPage(page, mode).ok());
    ASSERT_EQ(a.LruOrder(), b.LruOrder()) << "diverged at step " << step;
  }
  for (PageId p = 0; p < kPages; ++p) {
    ASSERT_EQ(b.IsResident(p), a.IsResident(p)) << "page " << p;
  }
}

// Every policy must run over the SSD backend too (the pool does not care
// which device is underneath).
TEST_P(ReplacementPolicyPropertyTest, WorksOverSsdBackend) {
  const Params params = GetParam();
  SsdCostParams flash;
  flash.pages_per_block = 4;
  SsdDevice ssd(kPageSize, nullptr, flash);
  ssd.AllocatePages(kPages);
  BufferPool pool(&ssd, params.frames, params.kind);

  std::vector<uint8_t> content(kPages, 0);
  Rng rng(params.seed + 7);
  for (int step = 0; step < 1200; ++step) {
    const PageId page = rng.UniformInt(kPages);
    const bool write = rng.Bernoulli(0.5);
    auto frame =
        pool.GetPage(page, write ? AccessMode::kWrite : AccessMode::kRead);
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(std::to_integer<uint8_t>((*frame)[0]), content[page])
        << "page " << page << " at step " << step;
    if (write) {
      const uint8_t value = static_cast<uint8_t>((step + 1) & 0xff);
      (*frame)[0] = static_cast<std::byte>(value);
      content[page] = value;
    }
  }
  EXPECT_EQ(pool.stats().misses, ssd.stats().page_reads);
  ASSERT_TRUE(pool.FlushAll().ok());
  for (PageId p = 0; p < kPages; ++p) {
    std::vector<std::byte> buf(kPageSize);
    ASSERT_TRUE(ssd.ReadPage(p, buf).ok());
    EXPECT_EQ(std::to_integer<uint8_t>(buf[0]), content[p]) << "page " << p;
  }
}

TEST(ReplacementPolicyLoadTest, RejectsPolicyKindMismatch) {
  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(kPages);
  BufferPool lru(&disk, 4, ReplacementPolicyKind::kLru);
  ASSERT_TRUE(lru.GetPage(0, AccessMode::kRead).ok());
  std::stringstream state;
  lru.SaveState(state);

  SimulatedDisk other(kPageSize);
  other.AllocatePages(kPages);
  BufferPool clock(&other, 4, ReplacementPolicyKind::kClock);
  EXPECT_EQ(clock.LoadState(state).code(), StatusCode::kCorruption);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesFramesSeeds, ReplacementPolicyPropertyTest,
    ::testing::Values(
        Params{ReplacementPolicyKind::kLru, 1, 1},
        Params{ReplacementPolicyKind::kLru, 8, 2},
        Params{ReplacementPolicyKind::kLru, 16, 3},
        Params{ReplacementPolicyKind::kClock, 1, 1},
        Params{ReplacementPolicyKind::kClock, 3, 2},
        Params{ReplacementPolicyKind::kClock, 8, 3},
        Params{ReplacementPolicyKind::kClock, 16, 4},
        Params{ReplacementPolicyKind::kTwoQ, 1, 1},
        Params{ReplacementPolicyKind::kTwoQ, 3, 2},
        Params{ReplacementPolicyKind::kTwoQ, 8, 3},
        Params{ReplacementPolicyKind::kTwoQ, 16, 4}),
    ParamName);

}  // namespace
}  // namespace odbgc
