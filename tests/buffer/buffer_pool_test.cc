#include "buffer/buffer_pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace odbgc {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(64), pool_(&disk_, 3) { disk_.AllocatePages(10); }

  // Writes `value` into the first byte of `page` through the pool.
  void Poke(PageId page, uint8_t value) {
    auto frame = pool_.GetPage(page, AccessMode::kWrite);
    ASSERT_TRUE(frame.ok());
    (*frame)[0] = static_cast<std::byte>(value);
  }

  uint8_t PeekDisk(PageId page) {
    std::vector<std::byte> buf(64);
    EXPECT_TRUE(disk_.ReadPage(page, buf).ok());
    return std::to_integer<uint8_t>(buf[0]);
  }

  SimulatedDisk disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kRead).ok());
  EXPECT_EQ(pool_.stats().misses, 1u);
  EXPECT_EQ(pool_.stats().hits, 0u);
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kRead).ok());
  EXPECT_EQ(pool_.stats().hits, 1u);
  EXPECT_EQ(pool_.stats().reads_app, 1u);
}

TEST_F(BufferPoolTest, LruOrderTracksRecency) {
  for (PageId p : {0, 1, 2}) {
    ASSERT_TRUE(pool_.GetPage(p, AccessMode::kRead).ok());
  }
  EXPECT_EQ(pool_.LruOrder(), (std::vector<PageId>{2, 1, 0}));
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kRead).ok());
  EXPECT_EQ(pool_.LruOrder(), (std::vector<PageId>{0, 2, 1}));
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  for (PageId p : {0, 1, 2}) {
    ASSERT_TRUE(pool_.GetPage(p, AccessMode::kRead).ok());
  }
  ASSERT_TRUE(pool_.GetPage(3, AccessMode::kRead).ok());  // Evicts 0.
  EXPECT_FALSE(pool_.IsResident(0));
  EXPECT_TRUE(pool_.IsResident(1));
  EXPECT_TRUE(pool_.IsResident(3));
  EXPECT_EQ(pool_.resident_pages(), 3u);
}

TEST_F(BufferPoolTest, CleanEvictionCostsNoWrite) {
  for (PageId p : {0, 1, 2, 3}) {
    ASSERT_TRUE(pool_.GetPage(p, AccessMode::kRead).ok());
  }
  EXPECT_EQ(pool_.stats().writes_app, 0u);
  EXPECT_EQ(disk_.stats().page_writes, 0u);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  Poke(0, 0xaa);
  EXPECT_EQ(PeekDisk(0), 0u) << "write-back must be deferred";
  ASSERT_TRUE(pool_.GetPage(1, AccessMode::kRead).ok());
  ASSERT_TRUE(pool_.GetPage(2, AccessMode::kRead).ok());
  ASSERT_TRUE(pool_.GetPage(3, AccessMode::kRead).ok());  // Evicts dirty 0.
  EXPECT_EQ(PeekDisk(0), 0xaa);
  EXPECT_EQ(pool_.stats().writes_app, 1u);
}

TEST_F(BufferPoolTest, WriteIntentMarksDirty) {
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kRead).ok());
  EXPECT_FALSE(pool_.IsDirty(0));
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kWrite).ok());
  EXPECT_TRUE(pool_.IsDirty(0));
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyAndKeepsResident) {
  Poke(0, 1);
  Poke(1, 2);
  ASSERT_TRUE(pool_.GetPage(2, AccessMode::kRead).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());
  EXPECT_EQ(PeekDisk(0), 1u);
  EXPECT_EQ(PeekDisk(1), 2u);
  EXPECT_EQ(pool_.stats().writes_app, 2u);
  EXPECT_TRUE(pool_.IsResident(0));
  EXPECT_FALSE(pool_.IsDirty(0));
  // A second flush writes nothing.
  ASSERT_TRUE(pool_.FlushAll().ok());
  EXPECT_EQ(pool_.stats().writes_app, 2u);
}

TEST_F(BufferPoolTest, DiscardExtentDropsWithoutWriteback) {
  Poke(0, 9);
  Poke(1, 9);
  pool_.DiscardExtent(PageExtent{0, 2});
  EXPECT_FALSE(pool_.IsResident(0));
  EXPECT_FALSE(pool_.IsResident(1));
  EXPECT_EQ(PeekDisk(0), 0u) << "discard must not write back";
  EXPECT_EQ(pool_.stats().writes_app, 0u);
  // LRU list stays consistent afterwards.
  ASSERT_TRUE(pool_.GetPage(5, AccessMode::kRead).ok());
  EXPECT_EQ(pool_.resident_pages(), 1u);
}

TEST_F(BufferPoolTest, PhaseAccountingSplitsIo) {
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kWrite).ok());
  {
    PhaseScope scope(&pool_, IoPhase::kCollector);
    ASSERT_TRUE(pool_.GetPage(1, AccessMode::kRead).ok());
    ASSERT_TRUE(pool_.GetPage(2, AccessMode::kRead).ok());
    // Evicting dirty page 0 during the collector phase charges the
    // collector (it caused the eviction).
    ASSERT_TRUE(pool_.GetPage(3, AccessMode::kRead).ok());
  }
  EXPECT_EQ(pool_.phase(), IoPhase::kApplication);
  EXPECT_EQ(pool_.stats().reads_app, 1u);
  EXPECT_EQ(pool_.stats().reads_gc, 3u);
  EXPECT_EQ(pool_.stats().writes_gc, 1u);
  EXPECT_EQ(pool_.stats().writes_app, 0u);
  EXPECT_EQ(pool_.stats().app_io(), 1u);
  EXPECT_EQ(pool_.stats().gc_io(), 4u);
  EXPECT_EQ(pool_.stats().total_io(), 5u);
}

TEST_F(BufferPoolTest, DataSurvivesEvictionRoundtrip) {
  Poke(0, 0x5c);
  // Push page 0 out and bring it back.
  for (PageId p : {1, 2, 3}) {
    ASSERT_TRUE(pool_.GetPage(p, AccessMode::kRead).ok());
  }
  auto frame = pool_.GetPage(0, AccessMode::kRead);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(std::to_integer<uint8_t>((*frame)[0]), 0x5c);
}

TEST_F(BufferPoolTest, UnknownPageFails) {
  auto frame = pool_.GetPage(99, AccessMode::kRead);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);
}

TEST_F(BufferPoolTest, ResetStats) {
  ASSERT_TRUE(pool_.GetPage(0, AccessMode::kRead).ok());
  pool_.ResetStats();
  EXPECT_EQ(pool_.stats().total_io(), 0u);
  EXPECT_EQ(pool_.stats().hits + pool_.stats().misses, 0u);
}

}  // namespace
}  // namespace odbgc
