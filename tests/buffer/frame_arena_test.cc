// SharedFrameArena contract (buffer/frame_arena.h, DESIGN.md §17):
//
//  1. Behavioural identity — a BufferPool borrowing frames from an arena
//     produces the same hits/misses/order/write-back as a private pool of
//     the same quota, as long as the arena never runs dry.
//  2. Squeeze — when the arena IS dry, a pool under quota evicts its own
//     victim (never another tenant's) and counts the squeeze; a pool with
//     nothing resident gets ResourceExhausted rather than deadlock.
//  3. Frame hygiene — discard, release and eviction return/retain frames
//     such that FramesInUse always equals the fleet's resident total.
//  4. Thread safety — pools on different threads sharing one arena (the
//     service's actual topology) race only on the striped table and the
//     allocator; run under TSan this is the lock-striping proof.
#include "buffer/frame_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "storage/disk.h"
#include "storage/extent.h"

namespace odbgc {
namespace {

TEST(FrameArenaTest, AllocatorHandsOutAndRecyclesFrames) {
  SharedFrameArena arena(3, /*stripe_count=*/4);
  EXPECT_EQ(arena.frame_count(), 3u);
  EXPECT_EQ(arena.stripe_count(), 4u);
  EXPECT_EQ(arena.FramesInUse(), 0u);

  const uint32_t a = arena.TryAllocFrame();
  const uint32_t b = arena.TryAllocFrame();
  const uint32_t c = arena.TryAllocFrame();
  ASSERT_NE(a, SharedFrameArena::kNoFrame);
  ASSERT_NE(b, SharedFrameArena::kNoFrame);
  ASSERT_NE(c, SharedFrameArena::kNoFrame);
  EXPECT_EQ(arena.FramesInUse(), 3u);
  // Exhausted: the caller is told to squeeze, not blocked.
  EXPECT_EQ(arena.TryAllocFrame(), SharedFrameArena::kNoFrame);

  arena.ReleaseFrame(b);
  EXPECT_EQ(arena.FramesInUse(), 2u);
  EXPECT_EQ(arena.TryAllocFrame(), b);  // LIFO reuse keeps frames warm.

  const uint32_t batch[] = {a, b, c};
  arena.ReleaseFrames(batch);
  EXPECT_EQ(arena.FramesInUse(), 0u);
}

TEST(FrameArenaTest, ResidencyTableKeysByTenantAndPage) {
  // One stripe: every key collides onto the same shard and the table must
  // still keep tenants apart via the composite key.
  SharedFrameArena arena(4, /*stripe_count=*/1);
  EXPECT_EQ(arena.stripe_count(), 1u);

  arena.InsertSlot(/*tenant=*/0, /*page=*/7, /*slot=*/2);
  arena.InsertSlot(/*tenant=*/1, /*page=*/7, /*slot=*/5);
  EXPECT_EQ(arena.FindSlot(0, 7), 2u);
  EXPECT_EQ(arena.FindSlot(1, 7), 5u);
  EXPECT_EQ(arena.FindSlot(2, 7), SharedFrameArena::kNoFrame);
  EXPECT_EQ(arena.ResidentEntries(), 2u);

  arena.EraseSlot(0, 7);
  EXPECT_EQ(arena.FindSlot(0, 7), SharedFrameArena::kNoFrame);
  EXPECT_EQ(arena.FindSlot(1, 7), 5u);
  EXPECT_EQ(arena.ResidentEntries(), 1u);
}

TEST(FrameArenaTest, StripeCountDefaultsToPowerOfTwo) {
  for (size_t frames : {1u, 16u, 300u, 4096u}) {
    SharedFrameArena arena(frames);
    const size_t stripes = arena.stripe_count();
    EXPECT_GE(stripes, 8u);
    EXPECT_EQ(stripes & (stripes - 1), 0u) << stripes;
  }
}

// -- Pool-over-arena behaviour ----------------------------------------------

struct Tenant {
  explicit Tenant(SharedFrameArena* arena, uint32_t id, size_t quota = 3)
      : disk(64), pool(&disk, quota, ReplacementPolicyKind::kLru, arena, id) {
    disk.AllocatePages(16);
  }
  SimulatedDisk disk;
  BufferPool pool;
};

TEST(FrameArenaPoolTest, SharedPoolMatchesPrivatePoolWhenArenaIsAmple) {
  SimulatedDisk private_disk(64);
  private_disk.AllocatePages(16);
  BufferPool private_pool(&private_disk, 3);

  SharedFrameArena arena(8, /*stripe_count=*/2);
  Tenant tenant(&arena, /*id=*/0);

  const PageId trace[] = {0, 1, 2, 0, 3, 1, 4, 4, 2, 0};
  for (PageId page : trace) {
    const AccessMode mode = page % 2 ? AccessMode::kWrite : AccessMode::kRead;
    ASSERT_TRUE(private_pool.GetPage(page, mode).ok());
    ASSERT_TRUE(tenant.pool.GetPage(page, mode).ok());
  }
  EXPECT_TRUE(tenant.pool.shared_arena());
  EXPECT_EQ(tenant.pool.LruOrder(), private_pool.LruOrder());
  EXPECT_EQ(tenant.pool.stats().hits, private_pool.stats().hits);
  EXPECT_EQ(tenant.pool.stats().misses, private_pool.stats().misses);
  EXPECT_EQ(tenant.pool.stats().writes_app, private_pool.stats().writes_app);
  EXPECT_EQ(tenant.pool.squeezed_evictions(), 0u);
  // At quota the tenant borrows exactly quota frames, no more.
  EXPECT_EQ(arena.FramesInUse(), 3u);

  // Dirty bytes drain to the tenant's own device, same as private.
  ASSERT_TRUE(tenant.pool.FlushAll().ok());
  ASSERT_TRUE(private_pool.FlushAll().ok());
  for (PageId page : {1, 3}) {
    std::vector<std::byte> shared_bytes(64), private_bytes(64);
    ASSERT_TRUE(tenant.disk.ReadPage(page, shared_bytes).ok());
    ASSERT_TRUE(private_disk.ReadPage(page, private_bytes).ok());
    EXPECT_EQ(shared_bytes, private_bytes) << "page " << page;
  }
}

TEST(FrameArenaPoolTest, EvictionAtQuotaReusesTheAttachedFrame) {
  SharedFrameArena arena(8, /*stripe_count=*/2);
  Tenant tenant(&arena, /*id=*/0, /*quota=*/2);
  ASSERT_TRUE(tenant.pool.GetPage(0, AccessMode::kRead).ok());
  ASSERT_TRUE(tenant.pool.GetPage(1, AccessMode::kRead).ok());
  EXPECT_EQ(arena.FramesInUse(), 2u);
  // Quota-full evictions recycle the victim's frame in place: the arena's
  // allocator is not involved, use stays flat.
  ASSERT_TRUE(tenant.pool.GetPage(2, AccessMode::kRead).ok());
  EXPECT_EQ(arena.FramesInUse(), 2u);
  EXPECT_FALSE(tenant.pool.IsResident(0));
  EXPECT_EQ(arena.ResidentEntries(), 2u);
}

TEST(FrameArenaPoolTest, DiscardAndReleaseReturnFramesToTheArena) {
  SharedFrameArena arena(8, /*stripe_count=*/2);
  Tenant a(&arena, 0);
  Tenant b(&arena, 1);
  for (PageId page : {0, 1, 2}) {
    ASSERT_TRUE(a.pool.GetPage(page, AccessMode::kWrite).ok());
    ASSERT_TRUE(b.pool.GetPage(page, AccessMode::kRead).ok());
  }
  EXPECT_EQ(arena.FramesInUse(), 6u);
  EXPECT_EQ(arena.ResidentEntries(), 6u);

  // Discard drops a's pages 0-1 without write-back and frees their frames;
  // b's identically-numbered pages are untouched.
  a.pool.DiscardExtent(PageExtent{0, 2});
  EXPECT_EQ(a.pool.resident_pages(), 1u);
  EXPECT_EQ(b.pool.resident_pages(), 3u);
  EXPECT_EQ(arena.FramesInUse(), 4u);

  // Departure path: everything back at once, counters untouched.
  const BufferStats before = b.pool.stats();
  b.pool.ReleaseArenaFrames();
  EXPECT_EQ(b.pool.resident_pages(), 0u);
  EXPECT_EQ(arena.FramesInUse(), 1u);
  EXPECT_EQ(b.pool.stats().hits, before.hits);
  EXPECT_EQ(b.pool.stats().misses, before.misses);
  // And the departed tenant can fault pages back in afterwards.
  ASSERT_TRUE(b.pool.GetPage(0, AccessMode::kRead).ok());
  EXPECT_EQ(arena.FramesInUse(), 2u);
}

TEST(FrameArenaPoolTest, ExhaustedArenaSqueezesTheUnderQuotaTenant) {
  // Two tenants with quota 3 over 4 physical frames: the second tenant
  // must evict its own pages while under quota, never touch tenant a's.
  SharedFrameArena arena(4, /*stripe_count=*/2);
  Tenant a(&arena, 0);
  Tenant b(&arena, 1);
  for (PageId page : {0, 1, 2}) {
    ASSERT_TRUE(a.pool.GetPage(page, AccessMode::kRead).ok());
  }
  ASSERT_TRUE(b.pool.GetPage(0, AccessMode::kRead).ok());
  EXPECT_EQ(arena.FramesInUse(), 4u);

  ASSERT_TRUE(b.pool.GetPage(1, AccessMode::kRead).ok());
  EXPECT_EQ(b.pool.squeezed_evictions(), 1u);
  EXPECT_EQ(arena.squeezed_evictions(), 1u);
  EXPECT_FALSE(b.pool.IsResident(0));  // b shed its own LRU victim.
  EXPECT_EQ(b.pool.resident_pages(), 1u);
  for (PageId page : {0, 1, 2}) {
    EXPECT_TRUE(a.pool.IsResident(page)) << "tenant a page " << page;
  }
}

TEST(FrameArenaPoolTest, EmptyPoolOnExhaustedArenaReportsResourceExhausted) {
  SharedFrameArena arena(1, /*stripe_count=*/1);
  Tenant a(&arena, 0);
  Tenant b(&arena, 1);
  ASSERT_TRUE(a.pool.GetPage(0, AccessMode::kRead).ok());

  // b has nothing of its own to squeeze: the only honest answer is an
  // error, not stealing a's frame.
  auto result = b.pool.GetPage(0, AccessMode::kRead);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(a.pool.IsResident(0));

  // Once a lets go, b proceeds.
  a.pool.ReleaseArenaFrames();
  EXPECT_TRUE(b.pool.GetPage(0, AccessMode::kRead).ok());
}

// -- Concurrency (the TSan proof) -------------------------------------------

// The service's real topology: one thread per tenant, each driving its own
// pool, all pools borrowing from one arena. Two stripes over many keys
// forces both same-stripe and cross-stripe contention; the budget is ample
// so no squeezes perturb per-tenant determinism.
TEST(FrameArenaConcurrencyTest, TenantsOnDistinctThreadsShareOneArena) {
  constexpr uint32_t kTenants = 4;
  constexpr size_t kQuota = 4;
  constexpr int kRounds = 200;

  SharedFrameArena arena(kTenants * kQuota, /*stripe_count=*/2);
  std::vector<std::unique_ptr<Tenant>> tenants;
  for (uint32_t t = 0; t < kTenants; ++t) {
    tenants.push_back(std::make_unique<Tenant>(&arena, t, kQuota));
  }

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      Tenant& tenant = *tenants[t];
      for (int round = 0; round < kRounds; ++round) {
        // A tenant-dependent stride so the fleets' page sets differ.
        const PageId page = (round * (t + 3)) % 16;
        const AccessMode mode =
            (round + t) % 3 ? AccessMode::kRead : AccessMode::kWrite;
        ASSERT_TRUE(tenant.pool.GetPage(page, mode).ok());
        if (round % 37 == 0) {
          ASSERT_TRUE(tenant.pool.FlushAll().ok());
        }
        if (round % 53 == 0) {
          tenant.pool.DiscardExtent(PageExtent{0, 4});
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  uint64_t resident = 0;
  for (const auto& tenant : tenants) {
    EXPECT_LE(tenant->pool.resident_pages(), kQuota);
    EXPECT_GT(tenant->pool.stats().misses, 0u);
    EXPECT_EQ(tenant->pool.squeezed_evictions(), 0u);
    resident += tenant->pool.resident_pages();
  }
  EXPECT_EQ(arena.FramesInUse(), resident);
  EXPECT_EQ(arena.ResidentEntries(), resident);
  EXPECT_EQ(arena.squeezed_evictions(), 0u);
}

// Same fleet, single stripe: maximum table contention, still race-free.
TEST(FrameArenaConcurrencyTest, SingleStripeSerializesButNeverRaces) {
  constexpr uint32_t kTenants = 3;
  SharedFrameArena arena(kTenants * 3, /*stripe_count=*/1);
  std::vector<std::unique_ptr<Tenant>> tenants;
  for (uint32_t t = 0; t < kTenants; ++t) {
    tenants.push_back(std::make_unique<Tenant>(&arena, t, 3));
  }
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 150; ++round) {
        ASSERT_TRUE(
            tenants[t]->pool.GetPage((round + t) % 12, AccessMode::kWrite).ok());
      }
      tenants[t]->pool.ReleaseArenaFrames();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(arena.FramesInUse(), 0u);
  EXPECT_EQ(arena.ResidentEntries(), 0u);
}

}  // namespace
}  // namespace odbgc
