// Property tests: the buffer pool must behave exactly like a reference
// model (a map of page contents plus an LRU list) under arbitrary access
// sequences, for any frame count.

#include <deque>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "storage/disk.h"
#include "util/random.h"

namespace odbgc {
namespace {

struct Params {
  size_t frames;
  uint64_t seed;
};

class BufferPoolPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(BufferPoolPropertyTest, MatchesReferenceModel) {
  const Params params = GetParam();
  constexpr size_t kPageSize = 32;
  constexpr size_t kPages = 24;
  constexpr int kSteps = 4000;

  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(kPages);
  BufferPool pool(&disk, params.frames);

  // Reference model: logical content of every page (as the application
  // sees it through the pool), plus an LRU queue.
  std::map<PageId, uint8_t> content;  // First byte per page; 0 initially.
  std::deque<PageId> lru;             // Front = most recent.
  uint64_t model_misses = 0;

  auto touch_lru = [&](PageId p) {
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == p) {
        lru.erase(it);
        break;
      }
    }
    lru.push_front(p);
    if (lru.size() > params.frames) lru.pop_back();
  };
  auto resident = [&](PageId p) {
    for (PageId q : lru) {
      if (q == p) return true;
    }
    return false;
  };

  Rng rng(params.seed);
  for (int step = 0; step < kSteps; ++step) {
    const PageId page = rng.UniformInt(kPages);
    const bool write = rng.Bernoulli(0.4);

    if (!resident(page)) ++model_misses;
    touch_lru(page);

    auto frame = pool.GetPage(
        page, write ? AccessMode::kWrite : AccessMode::kRead);
    ASSERT_TRUE(frame.ok());
    // The pool must always present the logical content.
    ASSERT_EQ(std::to_integer<uint8_t>((*frame)[0]), content[page])
        << "page " << page << " at step " << step;
    if (write) {
      const uint8_t value = static_cast<uint8_t>(step & 0xff);
      (*frame)[0] = static_cast<std::byte>(value);
      content[page] = value;
    }

    // Residency and recency must match the model exactly (strict LRU).
    ASSERT_EQ(pool.resident_pages(), lru.size());
    const std::vector<PageId> order = pool.LruOrder();
    ASSERT_EQ(order.size(), lru.size());
    for (size_t i = 0; i < lru.size(); ++i) {
      ASSERT_EQ(order[i], lru[i]) << "LRU position " << i << " at step "
                                  << step;
    }
  }

  EXPECT_EQ(pool.stats().misses, model_misses);
  EXPECT_EQ(pool.stats().hits, static_cast<uint64_t>(kSteps) - model_misses);
  // Every miss is a disk read; disk agrees with the pool.
  EXPECT_EQ(disk.stats().page_reads, model_misses);

  // After flushing, the disk holds the logical content of every page.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (const auto& [page, value] : content) {
    std::vector<std::byte> buf(kPageSize);
    ASSERT_TRUE(disk.ReadPage(page, buf).ok());
    EXPECT_EQ(std::to_integer<uint8_t>(buf[0]), value) << "page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FrameCountsAndSeeds, BufferPoolPropertyTest,
    ::testing::Values(Params{1, 1}, Params{2, 2}, Params{3, 3}, Params{7, 4},
                      Params{8, 5}, Params{16, 6}, Params{23, 7},
                      Params{24, 8}, Params{64, 9}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "frames" + std::to_string(info.param.frames) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace odbgc
