#include "storage/extent.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(PageExtentTest, DefaultInvalid) {
  PageExtent e;
  EXPECT_FALSE(e.valid());
  EXPECT_FALSE(e.Contains(0));
}

TEST(PageExtentTest, ZeroCountInvalid) {
  PageExtent e{5, 0};
  EXPECT_FALSE(e.valid());
}

TEST(PageExtentTest, ContainsBoundaries) {
  PageExtent e{10, 4};
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(e.end_page(), 14u);
  EXPECT_FALSE(e.Contains(9));
  EXPECT_TRUE(e.Contains(10));
  EXPECT_TRUE(e.Contains(13));
  EXPECT_FALSE(e.Contains(14));
}

TEST(PageExtentTest, Equality) {
  EXPECT_EQ((PageExtent{1, 2}), (PageExtent{1, 2}));
  EXPECT_FALSE((PageExtent{1, 2}) == (PageExtent{1, 3}));
  EXPECT_FALSE((PageExtent{0, 2}) == (PageExtent{1, 2}));
}

}  // namespace
}  // namespace odbgc
