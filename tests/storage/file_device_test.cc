#include "storage/file_device.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "observe/observer.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

constexpr size_t kPageSize = 1024;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "odbgc_filedev_" + name;
  ::unlink(path.c_str());
  return path;
}

FileDeviceOptions Options(const std::string& name) {
  FileDeviceOptions options;
  options.path = TempPath(name);
  options.io_threads = 2;
  return options;
}

std::vector<std::byte> Page(uint8_t fill) {
  return std::vector<std::byte>(kPageSize, std::byte{fill});
}

TEST(FileDeviceTest, EmptyPathFailsFast) {
  FileDevice device(kPageSize, nullptr, FileDeviceOptions{});
  EXPECT_EQ(device.status().code(), StatusCode::kInvalidArgument);
  device.AllocatePages(2);
  auto buf = Page(0);
  EXPECT_FALSE(device.ReadPage(0, buf).ok());
  EXPECT_FALSE(device.WritePage(0, buf).ok());
}

TEST(FileDeviceTest, UnopenablePathSurfacesIoError) {
  FileDeviceOptions options;
  options.path = ::testing::TempDir() + "no_such_dir_odbgc/x.odb";
  FileDevice device(kPageSize, nullptr, options);
  EXPECT_EQ(device.status().code(), StatusCode::kIoError);
}

TEST(FileDeviceTest, FreshPagesReadAsZeros) {
  FileDevice device(kPageSize, nullptr, Options("zeros"));
  ASSERT_TRUE(device.status().ok()) << device.status().ToString();
  const PageExtent extent = device.AllocatePages(3);
  EXPECT_EQ(extent.first_page, 0u);
  EXPECT_EQ(device.num_pages(), 3u);

  auto buf = Page(0xff);
  ASSERT_TRUE(device.ReadPage(2, buf).ok());
  EXPECT_EQ(buf, Page(0));
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, WriteReadRoundTripWithCounters) {
  FileDevice device(kPageSize, nullptr, Options("roundtrip"));
  ASSERT_TRUE(device.status().ok()) << device.status().ToString();
  device.AllocatePages(4);

  ASSERT_TRUE(device.WritePage(1, Page(0x5a)).ok());
  ASSERT_TRUE(device.WritePage(2, Page(0xa5)).ok());
  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(1, buf).ok());
  EXPECT_EQ(buf, Page(0x5a));
  ASSERT_TRUE(device.ReadPage(2, buf).ok());
  EXPECT_EQ(buf, Page(0xa5));

  const DiskStats stats = device.stats();
  EXPECT_EQ(stats.page_writes, 2u);
  EXPECT_EQ(stats.page_reads, 2u);
  // write 1, write 2 (sequential), read 1, read 2 (sequential).
  EXPECT_EQ(stats.sequential_transfers, 2u);
  EXPECT_EQ(stats.random_transfers, 2u);

  const MeasuredIoStats measured = device.MeasuredStats();
  EXPECT_TRUE(measured.measured);
  EXPECT_EQ(measured.writes, 2u);
  EXPECT_EQ(measured.reads, 2u);
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, ValidatesRangeAndBufferSize) {
  FileDevice device(kPageSize, nullptr, Options("validate"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(2);
  auto buf = Page(0);
  EXPECT_EQ(device.ReadPage(2, buf).code(), StatusCode::kOutOfRange);
  std::vector<std::byte> small(kPageSize / 2);
  EXPECT_EQ(device.WritePage(0, small).code(),
            StatusCode::kInvalidArgument);
  ::unlink(device.options().path.c_str());
}

// The simulated-counter surface must be bit-identical to SimulatedDisk for
// the same request sequence — that is what makes a file-backed run
// comparable to the paper's in-memory model.
TEST(FileDeviceTest, SimulatedCountersMatchSimulatedDisk) {
  FileDevice file(kPageSize, nullptr, Options("counters"));
  ASSERT_TRUE(file.status().ok());
  SimulatedDisk disk(kPageSize);
  file.AllocatePages(8);
  disk.AllocatePages(8);

  auto buf = Page(0);
  const PageId sequence[] = {0, 1, 2, 7, 3, 4, 4, 6, 5, 0};
  for (const PageId page : sequence) {
    ASSERT_TRUE(file.WritePage(page, Page(uint8_t(page))).ok());
    ASSERT_TRUE(disk.WritePage(page, Page(uint8_t(page))).ok());
  }
  for (const PageId page : sequence) {
    ASSERT_TRUE(file.ReadPage(page, buf).ok());
    ASSERT_TRUE(disk.ReadPage(page, buf).ok());
  }

  const DiskStats a = file.stats();
  const DiskStats b = disk.stats();
  EXPECT_EQ(a.page_reads, b.page_reads);
  EXPECT_EQ(a.page_writes, b.page_writes);
  EXPECT_EQ(a.sequential_transfers, b.sequential_transfers);
  EXPECT_EQ(a.random_transfers, b.random_transfers);
  // Same cost model (the default DiskCostParams) -> same estimate.
  EXPECT_DOUBLE_EQ(file.EstimateTimeMs(), disk.EstimateTimeMs());
  ::unlink(file.options().path.c_str());
}

TEST(FileDeviceTest, WritePagesBatchCountsLikeSingleWrites) {
  FileDevice device(kPageSize, nullptr, Options("batch"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(6);

  std::vector<std::vector<std::byte>> payloads;
  for (uint8_t i = 0; i < 5; ++i) payloads.push_back(Page(i + 1));
  std::vector<PageWriteRequest> batch;
  for (size_t i = 0; i < payloads.size(); ++i) {
    batch.push_back({static_cast<PageId>(i), payloads[i]});
  }
  size_t written = 0;
  ASSERT_TRUE(device.WritePages(batch.data(), batch.size(), &written).ok());
  EXPECT_EQ(written, 5u);

  const DiskStats stats = device.stats();
  EXPECT_EQ(stats.page_writes, 5u);
  EXPECT_EQ(stats.sequential_transfers, 4u);

  const MeasuredIoStats measured = device.MeasuredStats();
  EXPECT_EQ(measured.writes, 5u);
  EXPECT_EQ(measured.batches, 1u);
  EXPECT_EQ(measured.fsyncs, 1u);  // sync_on_barrier default.

  auto buf = Page(0);
  for (size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_TRUE(device.ReadPage(i, buf).ok());
    EXPECT_EQ(buf, payloads[i]) << "page " << i;
  }
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, DuplicatePageInBatchKeepsLastWrite) {
  FileDevice device(kPageSize, nullptr, Options("dup"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(2);
  const auto first = Page(0x11);
  const auto second = Page(0x22);
  const auto other = Page(0x33);
  PageWriteRequest batch[] = {{0, first}, {1, other}, {0, second}};
  size_t written = 0;
  ASSERT_TRUE(device.WritePages(batch, 3, &written).ok());
  EXPECT_EQ(written, 3u);
  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, second);
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, CleanWriteFaultLeavesOldBytes) {
  FileDevice device(kPageSize, nullptr, Options("clean_fault"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(2);
  ASSERT_TRUE(device.WritePage(0, Page(0x77)).ok());

  FaultPlan plan;
  plan.fail_after_writes = 1;  // Next write fails, cleanly.
  device.InjectFaults(plan);
  EXPECT_EQ(device.WritePage(0, Page(0x88)).code(), StatusCode::kIoError);
  EXPECT_EQ(device.faults_fired(), 1u);

  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, Page(0x77));
  ::unlink(device.options().path.c_str());
}

// A short write leaves a frame whose checksum no longer covers the bytes
// on disk: the next read must surface Corruption, not stale data.
TEST(FileDeviceTest, ShortWriteFaultLeavesDetectableCorruption) {
  FileDevice device(kPageSize, nullptr, Options("short_fault"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(2);
  ASSERT_TRUE(device.WritePage(0, Page(0x77)).ok());

  FaultPlan plan;
  plan.fail_after_writes = 1;
  plan.write_fault_style = WriteFaultStyle::kShortWrite;
  device.InjectFaults(plan);
  EXPECT_EQ(device.WritePage(0, Page(0x88)).code(), StatusCode::kIoError);
  device.ClearFaults();

  auto buf = Page(0);
  EXPECT_EQ(device.ReadPage(0, buf).code(), StatusCode::kCorruption);
  // Untouched pages still read fine.
  ASSERT_TRUE(device.ReadPage(1, buf).ok());
  EXPECT_EQ(buf, Page(0));

  // Rewriting the damaged page heals it.
  ASSERT_TRUE(device.WritePage(0, Page(0x99)).ok());
  ASSERT_TRUE(device.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, Page(0x99));
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, TornPageFaultInBatchDamagesOnlyFaultedPage) {
  FileDevice device(kPageSize, nullptr, Options("torn_fault"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(4);

  FaultPlan plan;
  plan.fail_after_writes = 3;  // Third write of the batch below.
  plan.write_fault_style = WriteFaultStyle::kTornPage;
  device.InjectFaults(plan);

  std::vector<std::vector<std::byte>> payloads;
  for (uint8_t i = 0; i < 4; ++i) payloads.push_back(Page(i + 1));
  std::vector<PageWriteRequest> batch;
  for (size_t i = 0; i < payloads.size(); ++i) {
    batch.push_back({static_cast<PageId>(i), payloads[i]});
  }
  size_t written = 0;
  EXPECT_EQ(device.WritePages(batch.data(), batch.size(), &written).code(),
            StatusCode::kIoError);
  EXPECT_EQ(written, 2u);  // Pages 0 and 1 landed before the fault.
  device.ClearFaults();

  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, payloads[0]);
  ASSERT_TRUE(device.ReadPage(1, buf).ok());
  EXPECT_EQ(buf, payloads[1]);
  EXPECT_EQ(device.ReadPage(2, buf).code(), StatusCode::kCorruption);
  ASSERT_TRUE(device.ReadPage(3, buf).ok());  // Never submitted: zeros.
  EXPECT_EQ(buf, Page(0));
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, PrefetchServesReadsFromCache) {
  FileDeviceOptions options = Options("prefetch");
  options.readahead_pages = 8;
  FileDevice device(kPageSize, nullptr, options);
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(4);
  for (PageId p = 0; p < 4; ++p) {
    ASSERT_TRUE(device.WritePage(p, Page(uint8_t(p + 1))).ok());
  }

  const PageId pages[] = {0, 1, 2, 3};
  device.Prefetch(pages);
  const MeasuredIoStats after_prefetch = device.MeasuredStats();
  EXPECT_EQ(after_prefetch.prefetched_pages, 4u);
  EXPECT_EQ(after_prefetch.reads, 4u);  // One physical batch read each.

  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(2, buf).ok());
  EXPECT_EQ(buf, Page(3));
  const MeasuredIoStats after_read = device.MeasuredStats();
  // Served from the cache: no new physical read, but one simulated read.
  EXPECT_EQ(after_read.reads, 4u);
  EXPECT_EQ(after_read.readahead_hits, 1u);
  EXPECT_EQ(device.stats().page_reads, 1u);

  // Consume-on-hit: a second read of the same page goes to the file.
  ASSERT_TRUE(device.ReadPage(2, buf).ok());
  EXPECT_EQ(device.MeasuredStats().reads, 5u);
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, WriteInvalidatesPrefetchedPage) {
  FileDeviceOptions options = Options("prefetch_inval");
  options.readahead_pages = 8;
  FileDevice device(kPageSize, nullptr, options);
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(2);
  ASSERT_TRUE(device.WritePage(0, Page(1)).ok());
  const PageId pages[] = {0};
  device.Prefetch(pages);

  ASSERT_TRUE(device.WritePage(0, Page(2)).ok());
  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, Page(2));  // Fresh bytes, not the stale staged copy.
  EXPECT_EQ(device.MeasuredStats().readahead_hits, 0u);
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, ObserverSeesBatchSyncAndReadAheadEvents) {
  struct Sink : SimObserver {
    std::vector<DeviceBatchEvent> batches;
    std::vector<DeviceSyncEvent> syncs;
    std::vector<ReadAheadEvent> readaheads;
    void OnDeviceBatch(const DeviceBatchEvent& event) override {
      batches.push_back(event);
    }
    void OnDeviceSync(const DeviceSyncEvent& event) override {
      syncs.push_back(event);
    }
    void OnReadAhead(const ReadAheadEvent& event) override {
      readaheads.push_back(event);
    }
  } sink;

  FileDeviceOptions options = Options("observer");
  options.readahead_pages = 8;
  FileDevice device(kPageSize, nullptr, options);
  ASSERT_TRUE(device.status().ok());
  device.set_observer(&sink);
  device.AllocatePages(4);

  std::vector<std::vector<std::byte>> payloads{Page(1), Page(2)};
  PageWriteRequest batch[] = {{0, payloads[0]}, {1, payloads[1]}};
  ASSERT_TRUE(device.WritePages(batch, 2, nullptr).ok());
  ASSERT_EQ(sink.batches.size(), 2u);  // submitted + completed.
  EXPECT_TRUE(sink.batches[0].is_write);
  EXPECT_FALSE(sink.batches[0].completed);
  EXPECT_EQ(sink.batches[0].pages, 2u);
  EXPECT_TRUE(sink.batches[1].completed);
  EXPECT_EQ(sink.batches[1].ordinal, 1u);
  ASSERT_EQ(sink.syncs.size(), 1u);  // The barrier fsync.
  EXPECT_EQ(sink.syncs[0].ordinal, 1u);

  const PageId pages[] = {0, 1};
  device.Prefetch(pages);
  ASSERT_EQ(sink.readaheads.size(), 1u);
  EXPECT_EQ(sink.readaheads[0].requested_pages, 2u);
  EXPECT_EQ(sink.readaheads[0].installed_pages, 2u);
  ::unlink(device.options().path.c_str());
}

TEST(FileDeviceTest, SaveLoadStateRoundTrips) {
  FileDevice device(kPageSize, nullptr, Options("savestate"));
  ASSERT_TRUE(device.status().ok());
  device.AllocatePages(4);
  ASSERT_TRUE(device.WritePage(2, Page(1)).ok());  // last_accessed = 2.

  std::stringstream state;
  device.SaveState(state);

  FileDevice restored(kPageSize, nullptr, Options("savestate2"));
  ASSERT_TRUE(restored.status().ok());
  restored.AllocatePages(4);
  ASSERT_TRUE(restored.LoadState(state).ok());
  // The classification cursor transferred: page 3 immediately follows the
  // restored cursor, so the first access is sequential.
  ASSERT_TRUE(restored.WritePage(3, Page(2)).ok());
  EXPECT_EQ(restored.stats().sequential_transfers, 1u);
  EXPECT_EQ(restored.stats().random_transfers, 0u);

  // Geometry mismatch is Corruption.
  std::stringstream state2;
  device.SaveState(state2);
  FileDevice wrong(kPageSize, nullptr, Options("savestate3"));
  wrong.AllocatePages(2);
  EXPECT_EQ(wrong.LoadState(state2).code(), StatusCode::kCorruption);
  ::unlink(device.options().path.c_str());
  ::unlink(restored.options().path.c_str());
  ::unlink(wrong.options().path.c_str());
}

TEST(FileDeviceTest, DirectIoRequestOpensOrFallsBack) {
  FileDeviceOptions options = Options("direct");
  options.direct_io = true;
  FileDevice device(kPageSize, nullptr, options);
  // tmpfs refuses O_DIRECT; either way the device must be fully usable.
  ASSERT_TRUE(device.status().ok()) << device.status().ToString();
  device.AllocatePages(2);
  ASSERT_TRUE(device.WritePage(0, Page(0xcd)).ok());
  auto buf = Page(0);
  ASSERT_TRUE(device.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, Page(0xcd));
  ::unlink(device.options().path.c_str());
}

}  // namespace
}  // namespace odbgc
