#include "storage/read_ahead.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace odbgc {
namespace {

constexpr size_t kPageSize = 64;

std::vector<std::byte> Page(uint8_t fill) {
  return std::vector<std::byte>(kPageSize, std::byte{fill});
}

TEST(ReadAheadTest, LookupConsumesOnHit) {
  ReadAhead cache(kPageSize, 4);
  cache.Install(7, Page(0xaa));
  EXPECT_TRUE(cache.Contains(7));

  auto out = Page(0);
  EXPECT_TRUE(cache.Lookup(7, out));
  EXPECT_EQ(out[0], std::byte{0xaa});
  EXPECT_EQ(cache.hits(), 1u);
  // Consume-on-hit: the buffer pool above is the long-term cache.
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_FALSE(cache.Lookup(7, out));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ReadAheadTest, InstallEvictsOldestAtCapacity) {
  ReadAhead cache(kPageSize, 2);
  cache.Install(1, Page(1));
  cache.Install(2, Page(2));
  cache.Install(3, Page(3));  // Evicts page 1 (oldest stamp).
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.installed(), 3u);
}

TEST(ReadAheadTest, ReinstallRefreshesContentsAndStamp) {
  ReadAhead cache(kPageSize, 2);
  cache.Install(1, Page(1));
  cache.Install(2, Page(2));
  cache.Install(1, Page(9));  // Overwrite in place; page 1 is now newest.
  cache.Install(3, Page(3));  // Should evict page 2, not page 1.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));

  auto out = Page(0);
  EXPECT_TRUE(cache.Lookup(1, out));
  EXPECT_EQ(out[0], std::byte{9});
}

TEST(ReadAheadTest, InvalidateDropsOnlyThatPage) {
  ReadAhead cache(kPageSize, 4);
  cache.Install(1, Page(1));
  cache.Install(2, Page(2));
  cache.Invalidate(1);
  cache.Invalidate(99);  // Unknown page: no-op.
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(ReadAheadTest, ClearKeepsCounters) {
  ReadAhead cache(kPageSize, 4);
  cache.Install(1, Page(1));
  auto out = Page(0);
  EXPECT_TRUE(cache.Lookup(1, out));
  cache.Install(2, Page(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.installed(), 2u);
}

TEST(ReadAheadTest, ZeroCapacityStagesNothing) {
  ReadAhead cache(kPageSize, 0);
  cache.Install(1, Page(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains(1));
}

}  // namespace
}  // namespace odbgc
