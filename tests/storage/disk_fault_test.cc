#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "storage/disk.h"

namespace odbgc {
namespace {

constexpr size_t kPageSize = 256;

std::vector<std::byte> PageBuffer() {
  return std::vector<std::byte>(kPageSize);
}

TEST(DiskFaultTest, NthWriteFailsExactlyOnce) {
  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(4);
  auto buf = PageBuffer();

  FaultPlan plan;
  plan.fail_after_writes = 3;
  disk.InjectFaults(plan);

  EXPECT_TRUE(disk.WritePage(0, buf).ok());
  EXPECT_TRUE(disk.WritePage(1, buf).ok());
  const Status fault = disk.WritePage(2, buf);
  EXPECT_EQ(fault.code(), StatusCode::kIoError);
  EXPECT_EQ(disk.faults_fired(), 1u);
  // Scripted triggers fire once; the device then works again (the crash
  // being simulated is the *process* dying from the error, not the disk
  // staying broken).
  EXPECT_TRUE(disk.WritePage(2, buf).ok());
  // Reads were never armed.
  EXPECT_TRUE(disk.ReadPage(0, buf).ok());
}

TEST(DiskFaultTest, NthReadFailsIndependentlyOfWrites) {
  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(2);
  auto buf = PageBuffer();

  FaultPlan plan;
  plan.fail_after_reads = 2;
  disk.InjectFaults(plan);

  EXPECT_TRUE(disk.WritePage(0, buf).ok());
  EXPECT_TRUE(disk.ReadPage(0, buf).ok());
  EXPECT_EQ(disk.ReadPage(1, buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.faults_fired(), 1u);
}

TEST(DiskFaultTest, FaultedTransferLeavesNoTrace) {
  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(2);
  auto buf = PageBuffer();
  buf[0] = std::byte{0xaa};
  ASSERT_TRUE(disk.WritePage(0, buf).ok());
  const DiskStats before = disk.stats();

  FaultPlan plan;
  plan.fail_after_writes = 1;
  disk.InjectFaults(plan);
  buf[0] = std::byte{0xbb};
  ASSERT_FALSE(disk.WritePage(0, buf).ok());

  // The failed write neither counted as a transfer nor touched the page.
  EXPECT_EQ(disk.stats().page_writes, before.page_writes);
  auto read_back = PageBuffer();
  ASSERT_TRUE(disk.ReadPage(0, read_back).ok());
  EXPECT_EQ(read_back[0], std::byte{0xaa});
}

TEST(DiskFaultTest, ProbabilisticFaultsUseOwnStream) {
  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(1);
  auto buf = PageBuffer();

  FaultPlan plan;
  plan.error_prob = 1.0;
  plan.seed = 99;
  disk.InjectFaults(plan);
  EXPECT_EQ(disk.WritePage(0, buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.ReadPage(0, buf).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.faults_fired(), 2u);

  disk.ClearFaults();
  EXPECT_TRUE(disk.WritePage(0, buf).ok());
  EXPECT_TRUE(disk.ReadPage(0, buf).ok());
}

TEST(DiskFaultTest, RearmingRestartsCounters) {
  SimulatedDisk disk(kPageSize);
  disk.AllocatePages(1);
  auto buf = PageBuffer();

  FaultPlan plan;
  plan.fail_after_writes = 2;
  disk.InjectFaults(plan);
  EXPECT_TRUE(disk.WritePage(0, buf).ok());
  disk.InjectFaults(plan);  // Restart: the count begins again.
  EXPECT_TRUE(disk.WritePage(0, buf).ok());
  EXPECT_EQ(disk.WritePage(0, buf).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace odbgc
