// Tests for the disk timing model (seek / rotational / transfer).

#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace odbgc {
namespace {

class DiskCostTest : public ::testing::Test {
 protected:
  DiskCostTest() : disk_(64) { disk_.AllocatePages(16); }

  void Read(PageId page) {
    std::vector<std::byte> buf(64);
    ASSERT_TRUE(disk_.ReadPage(page, buf).ok());
  }
  void Write(PageId page) {
    std::vector<std::byte> buf(64);
    ASSERT_TRUE(disk_.WritePage(page, buf).ok());
  }

  SimulatedDisk disk_;
};

TEST_F(DiskCostTest, FirstAccessIsRandom) {
  Read(0);
  EXPECT_EQ(disk_.stats().random_transfers, 1u);
  EXPECT_EQ(disk_.stats().sequential_transfers, 0u);
}

TEST_F(DiskCostTest, ConsecutivePagesAreSequential) {
  Read(3);
  Read(4);
  Read(5);
  EXPECT_EQ(disk_.stats().random_transfers, 1u);
  EXPECT_EQ(disk_.stats().sequential_transfers, 2u);
}

TEST_F(DiskCostTest, BackwardOrRepeatedAccessIsRandom) {
  Read(5);
  Read(5);  // Same page: a full rotation away, counted random.
  Read(4);  // Backward.
  Read(9);  // Jump.
  EXPECT_EQ(disk_.stats().random_transfers, 4u);
  EXPECT_EQ(disk_.stats().sequential_transfers, 0u);
}

TEST_F(DiskCostTest, WritesClassifiedToo) {
  Write(0);
  Write(1);
  Read(2);
  EXPECT_EQ(disk_.stats().sequential_transfers, 2u);
  EXPECT_EQ(disk_.stats().random_transfers, 1u);
}

TEST_F(DiskCostTest, TimeEstimateMatchesHandComputation) {
  Read(0);  // Random.
  Read(1);  // Sequential.
  Read(2);  // Sequential.
  Read(10);  // Random.
  DiskCostParams params;
  params.seek_ms = 10.0;
  params.rotational_ms = 5.0;
  params.transfer_ms_per_page = 2.0;
  // 2 random * (10+5+2) + 2 sequential * 2 = 34 + 4.
  EXPECT_DOUBLE_EQ(EstimateDiskTimeMs(disk_.stats(), params), 38.0);
}

TEST_F(DiskCostTest, DefaultParamsReasonable) {
  Read(0);
  const double ms = EstimateDiskTimeMs(disk_.stats());
  EXPECT_GT(ms, 20.0);  // One random access on a ~1993 disk: ~26 ms.
  EXPECT_LT(ms, 40.0);
}

TEST_F(DiskCostTest, EmptyStatsZeroTime) {
  EXPECT_DOUBLE_EQ(EstimateDiskTimeMs(DiskStats{}), 0.0);
}

}  // namespace
}  // namespace odbgc
