#include "storage/ssd_device.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

constexpr size_t kPageSize = 64;

SsdCostParams TinyFlash() {
  SsdCostParams cost;
  cost.pages_per_block = 4;
  cost.spare_blocks = 2;
  return cost;
}

std::vector<std::byte> Pattern(uint8_t value) {
  return std::vector<std::byte>(kPageSize, static_cast<std::byte>(value));
}

TEST(SsdDeviceTest, ContentRoundTrip) {
  SsdDevice ssd(kPageSize, nullptr, TinyFlash());
  const PageExtent extent = ssd.AllocatePages(6);
  EXPECT_EQ(extent.first_page, 0u);
  EXPECT_EQ(ssd.num_pages(), 6u);

  for (PageId p = 0; p < 6; ++p) {
    ASSERT_TRUE(ssd.WritePage(p, Pattern(static_cast<uint8_t>(p + 1))).ok());
  }
  for (PageId p = 0; p < 6; ++p) {
    std::vector<std::byte> buf(kPageSize);
    ASSERT_TRUE(ssd.ReadPage(p, buf).ok());
    EXPECT_EQ(std::to_integer<uint8_t>(buf[0]), p + 1);
    EXPECT_EQ(std::to_integer<uint8_t>(buf[kPageSize - 1]), p + 1);
  }
  EXPECT_EQ(ssd.stats().page_reads, 6u);
  EXPECT_EQ(ssd.stats().page_writes, 6u);
}

TEST(SsdDeviceTest, BoundsAndSizeChecks) {
  SsdDevice ssd(kPageSize, nullptr, TinyFlash());
  ssd.AllocatePages(2);
  std::vector<std::byte> buf(kPageSize);
  EXPECT_EQ(ssd.ReadPage(5, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ssd.WritePage(5, buf).code(), StatusCode::kOutOfRange);
  std::vector<std::byte> wrong(kPageSize / 2);
  EXPECT_EQ(ssd.ReadPage(0, wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ssd.WritePage(0, wrong).code(), StatusCode::kInvalidArgument);
}

TEST(SsdDeviceTest, GrowthKeepsSpareBlocks) {
  const SsdCostParams cost = TinyFlash();
  SsdDevice ssd(kPageSize, nullptr, cost);
  ssd.AllocatePages(4);  // 1 data block + 2 spares.
  EXPECT_EQ(ssd.flash_blocks(), 3u);
  ssd.AllocatePages(1);  // 5 logical pages -> 2 data blocks + 2 spares.
  EXPECT_EQ(ssd.flash_blocks(), 4u);
  ssd.AllocatePages(7);  // 12 logical pages -> 3 data blocks + 2 spares.
  EXPECT_EQ(ssd.flash_blocks(), 5u);
}

TEST(SsdDeviceTest, OverwriteChurnTriggersGarbageCollection) {
  SsdDevice ssd(kPageSize, nullptr, TinyFlash());
  ssd.AllocatePages(8);

  // Rewrite a small hot set far beyond the writable slots: the FTL must
  // erase blocks to keep accepting writes, and every page must survive.
  for (int round = 0; round < 64; ++round) {
    for (PageId p = 0; p < 8; ++p) {
      ASSERT_TRUE(
          ssd.WritePage(p, Pattern(static_cast<uint8_t>(round))).ok());
    }
  }
  EXPECT_GT(ssd.erases(), 0u);
  EXPECT_GE(ssd.WriteAmplification(), 1.0);
  for (PageId p = 0; p < 8; ++p) {
    std::vector<std::byte> buf(kPageSize);
    ASSERT_TRUE(ssd.ReadPage(p, buf).ok());
    EXPECT_EQ(std::to_integer<uint8_t>(buf[0]), 63u);
  }
}

TEST(SsdDeviceTest, EstimateTimeChargesReadsProgramsAndErases) {
  const SsdCostParams cost = TinyFlash();
  SsdDevice ssd(kPageSize, nullptr, cost);
  ssd.AllocatePages(8);
  for (int round = 0; round < 16; ++round) {
    for (PageId p = 0; p < 8; ++p) {
      ASSERT_TRUE(ssd.WritePage(p, Pattern(1)).ok());
    }
  }
  std::vector<std::byte> buf(kPageSize);
  ASSERT_TRUE(ssd.ReadPage(0, buf).ok());

  const DiskStats stats = ssd.stats();
  const double expected =
      static_cast<double>(stats.page_reads) * cost.read_ms_per_page +
      static_cast<double>(stats.page_writes + ssd.gc_page_copies()) *
          cost.program_ms_per_page +
      static_cast<double>(ssd.erases()) * cost.erase_ms_per_block;
  EXPECT_DOUBLE_EQ(ssd.EstimateTimeMs(), expected);
  EXPECT_GT(ssd.EstimateTimeMs(), 0.0);
}

TEST(SsdDeviceTest, FtlIsDeterministic) {
  auto run = [](SsdDevice& ssd) {
    ssd.AllocatePages(8);
    for (int round = 0; round < 32; ++round) {
      // Skewed pattern: page 0 is hot, the rest rotate.
      ASSERT_TRUE(ssd.WritePage(0, Pattern(1)).ok());
      ASSERT_TRUE(
          ssd.WritePage(1 + (round % 7), Pattern(2)).ok());
    }
  };
  SsdDevice a(kPageSize, nullptr, TinyFlash());
  SsdDevice b(kPageSize, nullptr, TinyFlash());
  run(a);
  run(b);
  EXPECT_EQ(a.erases(), b.erases());
  EXPECT_EQ(a.gc_page_copies(), b.gc_page_copies());
  EXPECT_EQ(a.stats().page_writes, b.stats().page_writes);
  EXPECT_EQ(a.flash_blocks(), b.flash_blocks());
}

TEST(SsdDeviceTest, SaveLoadReproducesFutureBehavior) {
  const SsdCostParams cost = TinyFlash();
  SsdDevice a(kPageSize, nullptr, cost);
  a.AllocatePages(8);
  for (int round = 0; round < 24; ++round) {
    ASSERT_TRUE(a.WritePage(round % 8, Pattern(3)).ok());
  }

  std::stringstream state;
  a.SaveState(state);

  SsdDevice b(kPageSize, nullptr, cost);
  b.AllocatePages(8);
  ASSERT_TRUE(b.LoadState(state).ok());

  // From the restored FTL state, the same writes must produce the same
  // GC work (counters count only the new activity on b).
  const uint64_t a_erases = a.erases();
  const uint64_t a_copies = a.gc_page_copies();
  for (int round = 0; round < 24; ++round) {
    ASSERT_TRUE(a.WritePage(round % 5, Pattern(4)).ok());
    ASSERT_TRUE(b.WritePage(round % 5, Pattern(4)).ok());
  }
  EXPECT_EQ(a.erases() - a_erases, b.erases());
  EXPECT_EQ(a.gc_page_copies() - a_copies, b.gc_page_copies());
}

TEST(SsdDeviceTest, LoadRejectsGeometryMismatch) {
  SsdDevice a(kPageSize, nullptr, TinyFlash());
  a.AllocatePages(8);
  std::stringstream state;
  a.SaveState(state);

  SsdDevice b(kPageSize, nullptr, TinyFlash());
  b.AllocatePages(4);  // Different logical size.
  EXPECT_EQ(b.LoadState(state).code(), StatusCode::kCorruption);
}

TEST(SsdDeviceTest, ScriptedFaultFiresOnNthWrite) {
  SsdDevice ssd(kPageSize, nullptr, TinyFlash());
  ssd.AllocatePages(4);
  FaultPlan plan;
  plan.fail_after_writes = 2;
  ssd.InjectFaults(plan);

  ASSERT_TRUE(ssd.WritePage(0, Pattern(1)).ok());
  EXPECT_EQ(ssd.WritePage(1, Pattern(1)).code(), StatusCode::kIoError);
  EXPECT_EQ(ssd.faults_fired(), 1u);
  // The failed write must not have mutated FTL state or contents.
  std::vector<std::byte> buf(kPageSize);
  ASSERT_TRUE(ssd.ReadPage(1, buf).ok());
  EXPECT_EQ(std::to_integer<uint8_t>(buf[0]), 0u);
}

}  // namespace
}  // namespace odbgc
