#include "storage/io_scheduler.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace odbgc {
namespace {

constexpr size_t kBlock = 4096;

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "odbgc_iosched_" + name;
  ::unlink(path.c_str());
  return path;
}

int OpenRw(const std::string& path) {
  return ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
}

std::vector<std::byte> Block(uint8_t fill) {
  return std::vector<std::byte>(kBlock, std::byte{fill});
}

std::vector<std::byte> ReadWholeFile(const std::string& path) {
  std::vector<std::byte> bytes;
  const int fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0);
  std::byte buf[kBlock];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

TEST(IoSchedulerTest, WritesThenReadsRoundTrip) {
  const std::string path = TempPath("roundtrip");
  const int fd = OpenRw(path);
  ASSERT_GE(fd, 0);

  IoScheduler scheduler;
  std::vector<std::vector<std::byte>> blocks;
  for (uint8_t i = 0; i < 8; ++i) blocks.push_back(Block(i + 1));
  for (size_t i = 0; i < blocks.size(); ++i) {
    scheduler.SubmitWrite(fd, i * kBlock, blocks[i]);
  }
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(scheduler.jobs_completed(), 8u);

  std::vector<std::vector<std::byte>> read(blocks.size(), Block(0));
  for (size_t i = 0; i < read.size(); ++i) {
    scheduler.SubmitRead(fd, i * kBlock, read[i]);
  }
  ASSERT_TRUE(scheduler.Drain().ok());
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(read[i], blocks[i]) << "block " << i;
  }
  ::close(fd);
  ::unlink(path.c_str());
}

TEST(IoSchedulerTest, ReadPastEofZeroFills) {
  const std::string path = TempPath("eof");
  const int fd = OpenRw(path);
  ASSERT_GE(fd, 0);
  IoScheduler scheduler;
  auto block = Block(0xff);
  scheduler.SubmitRead(fd, 10 * kBlock, block);
  ASSERT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(block, Block(0));
  ::close(fd);
  ::unlink(path.c_str());
}

// The determinism acceptance check: disjoint-range batches must produce
// byte-identical files regardless of worker count (and therefore of
// completion order).
TEST(IoSchedulerTest, FileBytesIndependentOfThreadCount) {
  std::vector<std::vector<std::byte>> images;
  for (const int threads : {1, 2, 8}) {
    const std::string path =
        TempPath("threads" + std::to_string(threads));
    const int fd = OpenRw(path);
    ASSERT_GE(fd, 0);

    IoSchedulerOptions options;
    options.threads = threads;
    IoScheduler scheduler(options);
    EXPECT_EQ(scheduler.threads(), threads);

    // Several batches of disjoint offsets, submitted in a scattered order
    // so multi-threaded completion order actually varies.
    std::vector<std::vector<std::byte>> blocks;
    for (int i = 0; i < 64; ++i) {
      blocks.push_back(Block(static_cast<uint8_t>(i * 37 + 11)));
    }
    for (int batch = 0; batch < 4; ++batch) {
      for (int i = 0; i < 16; ++i) {
        const int slot = batch * 16 + ((i * 7) % 16);
        scheduler.SubmitWrite(fd, static_cast<uint64_t>(slot) * kBlock,
                              blocks[slot]);
      }
      ASSERT_TRUE(scheduler.Drain().ok());
    }
    ::close(fd);
    images.push_back(ReadWholeFile(path));
    ::unlink(path.c_str());
  }
  ASSERT_EQ(images[0].size(), 64u * kBlock);
  EXPECT_EQ(images[0], images[1]);
  EXPECT_EQ(images[0], images[2]);
}

// Drain reports the FIRST failure in submission order, not whichever
// worker happened to fail first on the clock.
TEST(IoSchedulerTest, DrainReportsFirstErrorInSubmissionOrder) {
  const std::string path = TempPath("errors");
  const int fd = OpenRw(path);
  ASSERT_GE(fd, 0);

  IoSchedulerOptions options;
  options.threads = 4;
  IoScheduler scheduler(options);

  auto good = Block(1);
  // Two bad jobs (invalid fd); the earlier submission must win.
  scheduler.SubmitWrite(fd, 0, good);
  scheduler.SubmitWrite(-2, kBlock, good);
  scheduler.SubmitWrite(-3, 2 * kBlock, good);
  const Status status = scheduler.Drain();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);

  // The batch is cleared: the scheduler is reusable after a failure.
  scheduler.SubmitWrite(fd, 0, good);
  EXPECT_TRUE(scheduler.Drain().ok());
  ::close(fd);
  ::unlink(path.c_str());
}

TEST(IoSchedulerTest, DrainOnEmptyQueueIsOk) {
  IoScheduler scheduler;
  EXPECT_TRUE(scheduler.Drain().ok());
  EXPECT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(scheduler.jobs_completed(), 0u);
}

TEST(IoSchedulerTest, BackendNameAndDetection) {
  EXPECT_STREQ(IoBackendName(IoBackend::kThreadPool), "thread_pool");
  EXPECT_STREQ(IoBackendName(IoBackend::kIoUring), "io_uring");
  // Whatever DetectIoBackend picks, constructing with it must work.
  IoSchedulerOptions options;
  options.backend = DetectIoBackend();
  IoScheduler scheduler(options);
  EXPECT_TRUE(scheduler.Drain().ok());
}

}  // namespace
}  // namespace odbgc
