#include "storage/device_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "storage/file_device.h"

namespace odbgc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "odbgc_devreg_" + name;
}

TEST(DeviceRegistryTest, SpecSplitsAtFirstColon) {
  EXPECT_EQ(DeviceSpecName("disk"), "disk");
  EXPECT_EQ(DeviceSpecArg("disk"), "");
  EXPECT_EQ(DeviceSpecName("file:/tmp/a.odb"), "file");
  EXPECT_EQ(DeviceSpecArg("file:/tmp/a.odb"), "/tmp/a.odb");
  // Only the FIRST colon splits (paths may contain more).
  EXPECT_EQ(DeviceSpecArg("file:/tmp/a:b"), "/tmp/a:b");
}

TEST(DeviceRegistryTest, BuiltinsAreRegistered) {
  EXPECT_TRUE(IsDeviceRegistered("disk"));
  EXPECT_TRUE(IsDeviceRegistered("ssd"));
  EXPECT_TRUE(IsDeviceRegistered("file"));
  EXPECT_TRUE(IsDeviceRegistered("file:/some/path"));  // Name portion.
  EXPECT_FALSE(IsDeviceRegistered("tape"));

  const auto names = RegisteredDeviceNames();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin : {"disk", "ssd", "file"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
}

TEST(DeviceRegistryTest, MakesBuiltinDevices) {
  DeviceContext context;
  context.page_size = 1024;

  auto disk = MakeDeviceFromSpec("disk", context);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->kind(), DeviceKind::kSimulatedDisk);

  auto ssd = MakeDeviceFromSpec("ssd", context);
  ASSERT_TRUE(ssd.ok());
  EXPECT_EQ((*ssd)->kind(), DeviceKind::kSsd);

  context.file.path = TempPath("make_builtin.odb");
  auto file = MakeDeviceFromSpec("file", context);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->kind(), DeviceKind::kFile);
}

TEST(DeviceRegistryTest, FileSpecArgOverridesContextPath) {
  DeviceContext context;
  context.page_size = 1024;
  context.file.path = TempPath("ignored.odb");
  const std::string arg_path = TempPath("from_arg.odb");

  auto device = MakeDeviceFromSpec("file:" + arg_path, context);
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  auto* file = static_cast<FileDevice*>(device->get());
  EXPECT_EQ(file->options().path, arg_path);
}

TEST(DeviceRegistryTest, UnknownSpecListsRegisteredNames) {
  DeviceContext context;
  const auto result = MakeDeviceFromSpec("tape", context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("disk"), std::string::npos);
}

TEST(DeviceRegistryTest, FileWithoutPathFails) {
  DeviceContext context;  // context.file.path empty, no spec arg.
  EXPECT_EQ(MakeDeviceFromSpec("file", context).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeviceRegistryTest, FileOpenFailureSurfacesAtConstruction) {
  DeviceContext context;
  const auto result =
      MakeDeviceFromSpec("file:/no/such/dir/odbgc.odb", context);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DeviceRegistryTest, RegisterRejectsBadAndDuplicateNames) {
  EXPECT_EQ(RegisterDevice("", [](const DeviceContext&, const std::string&)
                               -> Result<std::unique_ptr<PageDevice>> {
              return Status::InvalidArgument("unreachable");
            }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RegisterDevice("bad:name",
                           [](const DeviceContext&, const std::string&)
                               -> Result<std::unique_ptr<PageDevice>> {
                             return Status::InvalidArgument("unreachable");
                           })
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RegisterDevice("disk", [](const DeviceContext&,
                                      const std::string&)
                               -> Result<std::unique_ptr<PageDevice>> {
              return Status::InvalidArgument("unreachable");
            }).code(),
            StatusCode::kAlreadyExists);
}

TEST(DeviceRegistryTest, CustomDeviceRoundTrips) {
  const Status registered = RegisterDevice(
      "test-null-device",
      [](const DeviceContext& context,
         const std::string&) -> Result<std::unique_ptr<PageDevice>> {
        return std::unique_ptr<PageDevice>(
            new SimulatedDisk(context.page_size, context.registry));
      });
  // Another test binary run may have registered it already.
  if (registered.ok()) {
    EXPECT_TRUE(IsDeviceRegistered("test-null-device"));
    DeviceContext context;
    auto device = MakeDeviceFromSpec("test-null-device", context);
    ASSERT_TRUE(device.ok());
    EXPECT_EQ((*device)->kind(), DeviceKind::kSimulatedDisk);
  }
}

TEST(DeviceRegistryTest, PerRunSpecSuffixesOnlyFilePaths) {
  EXPECT_EQ(PerRunDeviceSpec("disk", "Random", 3), "disk");
  EXPECT_EQ(PerRunDeviceSpec("ssd", "Random", 3), "ssd");
  EXPECT_EQ(PerRunDeviceSpec("file:/tmp/x.odb", "Random", 3),
            "file:/tmp/x.odb-Random-s3");
  // Distinct (policy, seed) pairs never collide on one backing file.
  EXPECT_NE(PerRunDeviceSpec("file:/tmp/x.odb", "Random", 1),
            PerRunDeviceSpec("file:/tmp/x.odb", "Random", 2));
  EXPECT_NE(PerRunDeviceSpec("file:/tmp/x.odb", "Random", 1),
            PerRunDeviceSpec("file:/tmp/x.odb", "MostGarbage", 1));
}

}  // namespace
}  // namespace odbgc
