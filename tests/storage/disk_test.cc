#include "storage/disk.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

std::vector<std::byte> Pattern(size_t size, uint8_t seed) {
  std::vector<std::byte> data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed + i) & 0xff);
  }
  return data;
}

TEST(DiskTest, StartsEmpty) {
  SimulatedDisk disk;
  EXPECT_EQ(disk.num_pages(), 0u);
  EXPECT_EQ(disk.page_size(), kDefaultPageSize);
  EXPECT_EQ(disk.stats().total(), 0u);
}

TEST(DiskTest, AllocateReturnsContiguousExtents) {
  SimulatedDisk disk(512);
  PageExtent a = disk.AllocatePages(4);
  PageExtent b = disk.AllocatePages(2);
  EXPECT_EQ(a.first_page, 0u);
  EXPECT_EQ(a.page_count, 4u);
  EXPECT_EQ(b.first_page, 4u);
  EXPECT_EQ(b.page_count, 2u);
  EXPECT_EQ(disk.num_pages(), 6u);
}

TEST(DiskTest, FreshPagesAreZero) {
  SimulatedDisk disk(64);
  disk.AllocatePages(1);
  std::vector<std::byte> buf(64, std::byte{0xff});
  ASSERT_TRUE(disk.ReadPage(0, buf).ok());
  for (std::byte b : buf) EXPECT_EQ(b, std::byte{0});
}

TEST(DiskTest, WriteReadRoundtrip) {
  SimulatedDisk disk(128);
  disk.AllocatePages(3);
  const auto data = Pattern(128, 7);
  ASSERT_TRUE(disk.WritePage(1, data).ok());
  std::vector<std::byte> buf(128);
  ASSERT_TRUE(disk.ReadPage(1, buf).ok());
  EXPECT_EQ(buf, data);
  // Neighbors untouched.
  ASSERT_TRUE(disk.ReadPage(0, buf).ok());
  EXPECT_EQ(buf, std::vector<std::byte>(128, std::byte{0}));
}

TEST(DiskTest, CountsTransfers) {
  SimulatedDisk disk(64);
  disk.AllocatePages(2);
  std::vector<std::byte> buf(64);
  ASSERT_TRUE(disk.WritePage(0, buf).ok());
  ASSERT_TRUE(disk.WritePage(1, buf).ok());
  ASSERT_TRUE(disk.ReadPage(0, buf).ok());
  EXPECT_EQ(disk.stats().page_writes, 2u);
  EXPECT_EQ(disk.stats().page_reads, 1u);
  EXPECT_EQ(disk.stats().total(), 3u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().total(), 0u);
}

TEST(DiskTest, OutOfRangeRejected) {
  SimulatedDisk disk(64);
  disk.AllocatePages(1);
  std::vector<std::byte> buf(64);
  EXPECT_EQ(disk.ReadPage(1, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.WritePage(5, buf).code(), StatusCode::kOutOfRange);
  // Failed operations are not counted.
  EXPECT_EQ(disk.stats().total(), 0u);
}

TEST(DiskTest, SizeMismatchRejected) {
  SimulatedDisk disk(64);
  disk.AllocatePages(1);
  std::vector<std::byte> small(32), big(128);
  EXPECT_EQ(disk.ReadPage(0, small).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.WritePage(0, big).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace odbgc
