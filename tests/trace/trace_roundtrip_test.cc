#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "trace/trace_reader.h"
#include "trace/trace_writer.h"
#include "util/random.h"

namespace odbgc {
namespace {

std::vector<TraceEvent> RandomEvents(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceEvent> events;
  for (size_t i = 0; i < count; ++i) {
    switch (rng.UniformInt(7)) {
      case 0:
        events.push_back(TraceEvent::Alloc(rng.Next(), 50 + rng.UniformInt(100),
                                           rng.UniformInt(4), rng.Next(),
                                           rng.UniformInt(2) ? 1 : 0));
        break;
      case 1:
        events.push_back(
            TraceEvent::WriteSlot(rng.Next(), rng.UniformInt(8), rng.Next()));
        break;
      case 2:
        events.push_back(TraceEvent::ReadSlot(rng.Next(), rng.UniformInt(8)));
        break;
      case 3:
        events.push_back(TraceEvent::Visit(rng.Next()));
        break;
      case 4:
        events.push_back(TraceEvent::WriteData(rng.Next()));
        break;
      case 5:
        events.push_back(TraceEvent::AddRoot(rng.Next()));
        break;
      default:
        events.push_back(TraceEvent::RemoveRoot(rng.Next()));
        break;
    }
  }
  return events;
}

class TraceRoundtripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TraceRoundtripTest, WriteThenReadIdentical) {
  const std::vector<TraceEvent> events = RandomEvents(GetParam(), GetParam());

  std::stringstream stream;
  TraceWriter writer(&stream);
  for (const TraceEvent& event : events) {
    ASSERT_TRUE(writer.Append(event).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(writer.events_written(), events.size());

  TraceReader reader(&stream);
  for (size_t i = 0; i < events.size(); ++i) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    ASSERT_TRUE(next->has_value()) << "premature end at " << i;
    EXPECT_EQ(**next, events[i]) << "event " << i << ": "
                                 << (*next)->ToString() << " vs "
                                 << events[i].ToString();
  }
  auto end = reader.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  EXPECT_EQ(reader.events_read(), events.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraceRoundtripTest,
                         ::testing::Values(0, 1, 2, 17, 256, 5000));

TEST(TraceRoundtripTest, EmptyTraceHasHeaderOnly) {
  std::stringstream stream;
  TraceWriter writer(&stream);
  ASSERT_TRUE(writer.Flush().ok());
  EXPECT_EQ(stream.str().size(), 8u);
  TraceReader reader(&stream);
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(TraceRoundtripTest, ReplayIntoSink) {
  const auto events = RandomEvents(50, 7);
  std::stringstream stream;
  TraceWriter writer(&stream);
  for (const auto& e : events) ASSERT_TRUE(writer.Append(e).ok());
  ASSERT_TRUE(writer.Flush().ok());

  TraceReader reader(&stream);
  VectorTraceSink sink;
  ASSERT_TRUE(reader.ReplayInto(&sink).ok());
  ASSERT_EQ(sink.events().size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(sink.events()[i], events[i]);
  }
}

TEST(TraceEventTest, ToStringCoversKinds) {
  EXPECT_NE(TraceEvent::Alloc(1, 100, 2, 0, 0).ToString().find("Alloc"),
            std::string::npos);
  EXPECT_NE(TraceEvent::WriteSlot(1, 0, 2).ToString().find("WriteSlot"),
            std::string::npos);
  EXPECT_NE(TraceEvent::ReadSlot(1, 0).ToString().find("ReadSlot"),
            std::string::npos);
  EXPECT_NE(TraceEvent::AddRoot(1).ToString().find("AddRoot"),
            std::string::npos);
}

TEST(TraceEventTest, VarintBoundaryValues) {
  // Exercise multi-byte varints: values around 2^7, 2^14, 2^63.
  std::stringstream stream;
  TraceWriter writer(&stream);
  const std::vector<uint64_t> ids = {0x7f, 0x80, 0x3fff, 0x4000,
                                     0xffffffffffffffffull};
  for (uint64_t id : ids) {
    ASSERT_TRUE(writer.Append(TraceEvent::Visit(id)).ok());
  }
  TraceReader reader(&stream);
  for (uint64_t id : ids) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok() && next->has_value());
    EXPECT_EQ((*next)->object, id);
  }
}

}  // namespace
}  // namespace odbgc
