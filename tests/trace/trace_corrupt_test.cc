// Failure injection on the trace reader: corrupt and truncated inputs
// must produce Status errors, never crashes or partial events.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "trace/trace_reader.h"
#include "trace/trace_writer.h"
#include "util/random.h"

namespace odbgc {
namespace {

std::string ValidTraceBytes() {
  std::stringstream stream;
  TraceWriter writer(&stream);
  EXPECT_TRUE(writer.Append(TraceEvent::Alloc(1, 100, 2, 0, 0)).ok());
  EXPECT_TRUE(writer.Append(TraceEvent::WriteSlot(1, 0, 2)).ok());
  EXPECT_TRUE(writer.Append(TraceEvent::Visit(1)).ok());
  return stream.str();
}

// Drains the reader; returns the terminating status (OK for clean end).
Status Drain(const std::string& bytes, size_t* events_out = nullptr) {
  std::stringstream stream(bytes);
  TraceReader reader(&stream);
  size_t events = 0;
  for (;;) {
    auto next = reader.Next();
    if (!next.ok()) {
      if (events_out != nullptr) *events_out = events;
      return next.status();
    }
    if (!next->has_value()) {
      if (events_out != nullptr) *events_out = events;
      return Status::Ok();
    }
    ++events;
  }
}

TEST(TraceCorruptTest, BadMagic) {
  std::string bytes = ValidTraceBytes();
  bytes[0] = 'X';
  EXPECT_EQ(Drain(bytes).code(), StatusCode::kCorruption);
}

TEST(TraceCorruptTest, BadVersion) {
  std::string bytes = ValidTraceBytes();
  bytes[4] = 0x7f;
  EXPECT_EQ(Drain(bytes).code(), StatusCode::kCorruption);
}

TEST(TraceCorruptTest, UnknownEventKind) {
  std::string bytes = ValidTraceBytes();
  bytes[8] = 0x63;  // First event kind byte.
  EXPECT_EQ(Drain(bytes).code(), StatusCode::kCorruption);
}

TEST(TraceCorruptTest, EveryTruncationIsCleanOrCorruption) {
  const std::string bytes = ValidTraceBytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t events = 0;
    const Status status = Drain(bytes.substr(0, cut), &events);
    if (status.ok()) {
      // A clean end is only legal at an event boundary; the prefix events
      // must all have parsed.
      EXPECT_GE(cut, 8u) << "header shorter than 8 bytes cannot be clean";
    } else {
      EXPECT_EQ(status.code(), StatusCode::kCorruption)
          << "cut at " << cut << ": " << status.ToString();
    }
    EXPECT_LE(events, 3u);
  }
}

TEST(TraceCorruptTest, OverlongVarintRejected) {
  // Header + kind byte + 11 continuation bytes (varint > 64 bits).
  std::string bytes = ValidTraceBytes().substr(0, 8);
  bytes += static_cast<char>(4);  // kVisit.
  for (int i = 0; i < 11; ++i) bytes += static_cast<char>(0x80);
  bytes += static_cast<char>(0x01);
  EXPECT_EQ(Drain(bytes).code(), StatusCode::kCorruption);
}

TEST(TraceCorruptTest, EmptyInput) {
  EXPECT_EQ(Drain("").code(), StatusCode::kCorruption);
}

TEST(TraceCorruptTest, RandomBytesNeverCrash) {
  // Fuzz the reader with arbitrary byte streams (valid header prefix or
  // not): it must always terminate with a clean end or a Status error.
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    if (round % 2 == 0) bytes = ValidTraceBytes().substr(0, 8);  // Header.
    const size_t len = rng.UniformInt(300);
    for (size_t i = 0; i < len; ++i) {
      bytes += static_cast<char>(rng.UniformInt(256));
    }
    size_t events = 0;
    const Status status = Drain(bytes, &events);
    // Either outcome is fine; the property is termination without UB and
    // a sane event bound (each event consumes at least 2 bytes).
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kCorruption);
    }
    EXPECT_LE(events, bytes.size());
  }
}

TEST(TraceCorruptTest, GarbageAfterValidEventsDetected) {
  std::string bytes = ValidTraceBytes();
  bytes += static_cast<char>(0x00);  // Invalid kind 0.
  size_t events = 0;
  const Status status = Drain(bytes, &events);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(events, 3u) << "valid prefix must parse before the error";
}

}  // namespace
}  // namespace odbgc
