#include "trace/trace_stats.h"

#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(TraceStatsTest, CountsEventKinds) {
  TraceStatsCollector stats;
  ASSERT_TRUE(stats.Append(TraceEvent::Alloc(1, 100, 2, 0, 0)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::Alloc(2, 64000, 0, 1, 1)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 2)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::ReadSlot(1, 0)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::Visit(1)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteData(1)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::AddRoot(1)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::RemoveRoot(1)).ok());

  const auto& s = stats.Finish();
  EXPECT_EQ(s.events, 8u);
  EXPECT_EQ(s.allocs, 2u);
  EXPECT_EQ(s.large_allocs, 1u);
  EXPECT_EQ(s.bytes_allocated, 64100u);
  EXPECT_EQ(s.slot_writes, 1u);
  EXPECT_EQ(s.slot_reads, 1u);
  EXPECT_EQ(s.visits, 1u);
  EXPECT_EQ(s.data_writes, 1u);
  EXPECT_EQ(s.root_adds, 1u);
  EXPECT_EQ(s.root_removes, 1u);
}

TEST(TraceStatsTest, ClassifiesOverwrites) {
  TraceStatsCollector stats;
  // Store, overwrite, clear, re-store.
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 10)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 11)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 0)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 12)).ok());
  // Clearing an already-empty slot is not an overwrite.
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(2, 0, 0)).ok());

  const auto& s = stats.Finish();
  EXPECT_EQ(s.slot_writes, 5u);
  EXPECT_EQ(s.pointer_stores, 3u);
  EXPECT_EQ(s.pointer_overwrites, 2u);
  EXPECT_EQ(s.null_clears, 1u);
}

TEST(TraceStatsTest, DerivedMetrics) {
  TraceStatsCollector stats;
  ASSERT_TRUE(stats.Append(TraceEvent::Alloc(1, 100, 3, 0, 0)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::Alloc(2, 100, 3, 0, 0)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 2)).ok());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(stats.Append(TraceEvent::ReadSlot(1, 0)).ok());
  }
  const auto& s = stats.Finish();
  EXPECT_DOUBLE_EQ(s.MeanSmallObjectSize(), 100.0);
  EXPECT_DOUBLE_EQ(s.EdgeReadWriteRatio(), 15.0);
  // One live edge over two objects.
  EXPECT_DOUBLE_EQ(s.Connectivity(), 0.5);
  EXPECT_DOUBLE_EQ(s.LargeSpaceFraction(), 0.0);
}

TEST(TraceStatsTest, ConnectivityIgnoresClearedEdges) {
  TraceStatsCollector stats;
  ASSERT_TRUE(stats.Append(TraceEvent::Alloc(1, 100, 3, 0, 0)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 0, 1)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 1, 1)).ok());
  ASSERT_TRUE(stats.Append(TraceEvent::WriteSlot(1, 1, 0)).ok());
  const auto& s = stats.Finish();
  EXPECT_DOUBLE_EQ(s.Connectivity(), 1.0);
}

TEST(TraceStatsTest, PrintSmoke) {
  TraceStatsCollector stats;
  ASSERT_TRUE(stats.Append(TraceEvent::Alloc(1, 100, 2, 0, 0)).ok());
  std::ostringstream os;
  stats.Print(os);
  EXPECT_NE(os.str().find("objects allocated"), std::string::npos);
  EXPECT_NE(os.str().find("connectivity"), std::string::npos);
}

TEST(TraceStatsTest, EmptyTrace) {
  TraceStatsCollector stats;
  const auto& s = stats.Finish();
  EXPECT_EQ(s.events, 0u);
  EXPECT_DOUBLE_EQ(s.MeanSmallObjectSize(), 0.0);
  EXPECT_DOUBLE_EQ(s.EdgeReadWriteRatio(), 0.0);
  EXPECT_DOUBLE_EQ(s.Connectivity(), 0.0);
}

}  // namespace
}  // namespace odbgc
