// RunExperiment must be bit-deterministic across thread counts: a parallel
// run is only trustworthy if every field of every SimulationResult —
// counters, component stats, metric samples, time series — matches the
// serial run exactly. This covers the non-default I/O configurations too
// (SSD backend, CLOCK/2Q replacement).

#include <gtest/gtest.h>

#include "sim/runner.h"
#include "util/time_series.h"

namespace odbgc {
namespace {

ExperimentSpec TinySpec() {
  ExperimentSpec spec;
  spec.base.heap.store.page_size = 1024;
  spec.base.heap.store.pages_per_partition = 16;
  spec.base.heap.buffer_pages = 16;
  spec.base.heap.overwrite_trigger = 25;
  spec.base.snapshot_interval = 1000;  // Exercise the time series too.
  spec.base.workload.target_live_bytes = 64ull << 10;
  spec.base.workload.total_alloc_bytes = 160ull << 10;
  spec.base.workload.tree_nodes_min = 50;
  spec.base.workload.tree_nodes_max = 150;
  spec.base.workload.large_object_size = 4096;
  spec.policies = {"MostGarbage", "Random", "NoCollection"};
  spec.num_seeds = 3;
  spec.first_seed = 10;
  return spec;
}

void ExpectSameSeries(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.points().size(), b.points().size());
  for (size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << "point " << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << "point " << i;
  }
}

void ExpectFieldIdentical(const SimulationResult& a,
                          const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.replacement, b.replacement);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  EXPECT_EQ(a.estimated_device_time_ms, b.estimated_device_time_ms);
  ExpectSameSeries(a.unreclaimed_garbage_kb, b.unreclaimed_garbage_kb);
  ExpectSameSeries(a.database_size_kb, b.database_size_kb);
  EXPECT_EQ(a.heap_stats.pointer_stores, b.heap_stats.pointer_stores);
  EXPECT_EQ(a.heap_stats.objects_allocated, b.heap_stats.objects_allocated);
  EXPECT_EQ(a.heap_stats.full_collections, b.heap_stats.full_collections);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
  EXPECT_EQ(a.buffer_stats.reads_app, b.buffer_stats.reads_app);
  EXPECT_EQ(a.buffer_stats.reads_gc, b.buffer_stats.reads_gc);
  EXPECT_EQ(a.buffer_stats.writes_app, b.buffer_stats.writes_app);
  EXPECT_EQ(a.buffer_stats.writes_gc, b.buffer_stats.writes_gc);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
  // The whole metrics registry, row by row.
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name) << "sample " << i;
    EXPECT_EQ(a.metrics[i].application, b.metrics[i].application)
        << a.metrics[i].name;
    EXPECT_EQ(a.metrics[i].collector, b.metrics[i].collector)
        << a.metrics[i].name;
  }
}

void ExpectExperimentsIdentical(const ExperimentSpec& spec) {
  ExperimentSpec serial = spec;
  serial.threads = 1;
  ExperimentSpec parallel = spec;
  parallel.threads = 4;

  auto a = RunExperiment(serial);
  auto b = RunExperiment(parallel);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->sets.size(), b->sets.size());
  for (size_t s = 0; s < a->sets.size(); ++s) {
    ASSERT_EQ(a->sets[s].policy, b->sets[s].policy);
    ASSERT_EQ(a->sets[s].runs.size(), b->sets[s].runs.size());
    for (size_t r = 0; r < a->sets[s].runs.size(); ++r) {
      SCOPED_TRACE("policy set " + std::to_string(s) + " run " +
                   std::to_string(r));
      ExpectFieldIdentical(a->sets[s].runs[r], b->sets[s].runs[r]);
    }
  }
}

TEST(RunnerDeterminismTest, ParallelMatchesSerialFieldForField) {
  ExpectExperimentsIdentical(TinySpec());
}

TEST(RunnerDeterminismTest, ParallelMatchesSerialOnSsdWithClock) {
  ExperimentSpec spec = TinySpec();
  spec.base.heap.device = DeviceKind::kSsd;
  spec.base.heap.ssd_cost.pages_per_block = 8;
  spec.base.heap.replacement = ReplacementPolicyKind::kClock;
  ExpectExperimentsIdentical(spec);
}

TEST(RunnerDeterminismTest, ParallelMatchesSerialWithTwoQ) {
  ExperimentSpec spec = TinySpec();
  spec.base.heap.replacement = ReplacementPolicyKind::kTwoQ;
  spec.policies = {"MostGarbage", "Random"};
  spec.num_seeds = 2;
  ExpectExperimentsIdentical(spec);
}

}  // namespace
}  // namespace odbgc
