// The work-stealing scheduler's verification contract (DESIGN.md §15):
// scheduling is unobservable. Under skewed shard sizes — the load shape
// stealing exists for — the aggregate result must equal the serial
// oracle, the PR 7 pull-queue scheduler, and itself across 1/2/4/8
// threads, bitwise, for all six paper policies, with parallel marking
// riding on the same pool.
#include "sim/concurrent_simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/selection_policy.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

// 8 shards, the last one 8x the volume of the rest: with a greedy
// whole-shard scheduler the giant shard dominates the critical path; the
// work-stealing scheduler must still produce the identical aggregate.
SimulationConfig SkewedConcurrent(const std::string& policy_name,
                                  uint32_t threads) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 25;
  config.heap.policy_name = policy_name;
  config.heap.parallel_marking_threads = 2;  // Marks on the scheduler pool.
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 50;
  config.workload.tree_nodes_max = 150;
  config.workload.large_object_size = 4096;
  config.seed = 11;
  config.mutator_threads = threads;
  config.trace_shards = 8;
  config.shard_weights = {1, 1, 1, 1, 1, 1, 1, 8};
  config.shard_scheduler = ShardSchedulerKind::kWorkStealing;
  return config;
}

SimulationResult SerialOracle(const SimulationConfig& config) {
  ConcurrentSimulator shape(config);
  std::vector<SimulationResult> parts;
  for (uint32_t s = 0; s < shape.shard_count(); ++s) {
    SimulationConfig shard = shape.ShardConfig(s);
    shard.heap.parallel_marking_threads = 0;  // Oracle marks serially.
    Simulator sim(shard);
    EXPECT_TRUE(sim.Run().ok()) << "shard " << s;
    parts.push_back(sim.Finish());
  }
  SimulationResult result = ConcurrentSimulator::AggregateResults(parts);
  result.seed = config.seed;
  return result;
}

void ExpectResultsIdentical(const SimulationResult& a,
                            const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  EXPECT_EQ(a.estimated_device_time_ms, b.estimated_device_time_ms);
  EXPECT_EQ(a.heap_stats.collections, b.heap_stats.collections);
  EXPECT_EQ(a.heap_stats.pointer_stores, b.heap_stats.pointer_stores);
  EXPECT_EQ(a.heap_stats.objects_allocated, b.heap_stats.objects_allocated);
  EXPECT_EQ(a.heap_stats.garbage_bytes_reclaimed,
            b.heap_stats.garbage_bytes_reclaimed);
  EXPECT_EQ(a.heap_stats.live_bytes_copied, b.heap_stats.live_bytes_copied);
  EXPECT_EQ(a.heap_stats.max_total_bytes, b.heap_stats.max_total_bytes);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
  EXPECT_EQ(a.buffer_stats.reads_app, b.buffer_stats.reads_app);
  EXPECT_EQ(a.buffer_stats.reads_gc, b.buffer_stats.reads_gc);
  EXPECT_EQ(a.buffer_stats.writes_app, b.buffer_stats.writes_app);
  EXPECT_EQ(a.buffer_stats.writes_gc, b.buffer_stats.writes_gc);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name) << "sample " << i;
    EXPECT_EQ(a.metrics[i].application, b.metrics[i].application)
        << a.metrics[i].name;
    EXPECT_EQ(a.metrics[i].collector, b.metrics[i].collector)
        << a.metrics[i].name;
  }
}

class WorkStealingEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkStealingEquivalenceTest, SkewedShardsMatchSerialOracle) {
  const SimulationConfig config = SkewedConcurrent(GetParam(), 4);
  const SimulationResult oracle = SerialOracle(config);

  ConcurrentSimulator concurrent(config);
  ASSERT_TRUE(concurrent.Run().ok());
  ExpectResultsIdentical(concurrent.Finish(), oracle);
}

TEST_P(WorkStealingEquivalenceTest, ResultIsThreadCountInvariant) {
  const SimulationResult baseline =
      [&] {
        ConcurrentSimulator sim(SkewedConcurrent(GetParam(), 1));
        EXPECT_TRUE(sim.Run().ok());
        return sim.Finish();
      }();
  for (uint32_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ConcurrentSimulator sim(SkewedConcurrent(GetParam(), threads));
    ASSERT_TRUE(sim.Run().ok());
    ExpectResultsIdentical(sim.Finish(), baseline);
  }
}

TEST_P(WorkStealingEquivalenceTest, MatchesPullQueueScheduler) {
  SimulationConfig ws = SkewedConcurrent(GetParam(), 4);
  SimulationConfig pull = ws;
  pull.shard_scheduler = ShardSchedulerKind::kPullQueue;

  ConcurrentSimulator ws_sim(ws);
  ASSERT_TRUE(ws_sim.Run().ok());
  ConcurrentSimulator pull_sim(pull);
  ASSERT_TRUE(pull_sim.Run().ok());
  ExpectResultsIdentical(ws_sim.Finish(), pull_sim.Finish());
}

INSTANTIATE_TEST_SUITE_P(Policies, WorkStealingEquivalenceTest,
                         ::testing::ValuesIn(PaperPolicyNames()));

TEST(WorkStealingSchedulerTest, WeightedSlicesCoverTheAllocationVolume) {
  const SimulationConfig config = SkewedConcurrent("UpdatedPointer", 4);
  ConcurrentSimulator sim(config);
  uint64_t covered = 0;
  for (uint32_t s = 0; s < sim.shard_count(); ++s) {
    covered += sim.ShardConfig(s).workload.total_alloc_bytes;
  }
  EXPECT_EQ(covered, config.workload.total_alloc_bytes);
  // The weight-8 shard holds 8/15 of the volume, to rounding.
  const uint64_t giant = sim.ShardConfig(7).workload.total_alloc_bytes;
  const uint64_t expected =
      static_cast<uint64_t>(config.workload.total_alloc_bytes * 8.0 / 15.0);
  EXPECT_NEAR(static_cast<double>(giant), static_cast<double>(expected), 2.0);
}

TEST(WorkStealingSchedulerTest, EmptyWeightsKeepTheEqualSplit) {
  SimulationConfig config = SkewedConcurrent("UpdatedPointer", 4);
  config.shard_weights.clear();
  ConcurrentSimulator sim(config);
  const uint64_t total = config.workload.total_alloc_bytes;
  uint64_t covered = 0;
  for (uint32_t s = 0; s < sim.shard_count(); ++s) {
    const uint64_t slice = sim.ShardConfig(s).workload.total_alloc_bytes;
    EXPECT_GE(slice, total / 8);
    EXPECT_LE(slice, total / 8 + 1);
    covered += slice;
  }
  EXPECT_EQ(covered, total);
}

TEST(WorkStealingSchedulerTest, RejectsMismatchedWeights) {
  SimulationConfig config = SkewedConcurrent("UpdatedPointer", 4);
  config.shard_weights = {1, 2, 3};  // 3 weights, 8 shards.
  ConcurrentSimulator sim(config);
  EXPECT_EQ(sim.Run().code(), StatusCode::kInvalidArgument);
}

TEST(WorkStealingSchedulerTest, RejectsNonPositiveWeights) {
  SimulationConfig config = SkewedConcurrent("UpdatedPointer", 4);
  config.shard_weights = {1, 1, 1, 1, 1, 1, 1, 0};
  ConcurrentSimulator sim(config);
  EXPECT_EQ(sim.Run().code(), StatusCode::kInvalidArgument);
}

TEST(WorkStealingSchedulerTest, ReportsSchedulerDiagnostics) {
  const SimulationConfig config = SkewedConcurrent("MostGarbage", 4);
  ConcurrentSimulator sim(config);
  ASSERT_TRUE(sim.Run().ok());
  const std::vector<double>& busy = sim.worker_busy_seconds();
  ASSERT_EQ(busy.size(), 4u);
  double total_busy = 0;
  for (double b : busy) {
    EXPECT_GE(b, 0.0);
    total_busy += b;
  }
  EXPECT_GT(total_busy, 0.0);
}

TEST(WorkStealingSchedulerTest, PullQueueRunLeavesDiagnosticsEmpty) {
  SimulationConfig config = SkewedConcurrent("UpdatedPointer", 2);
  config.shard_scheduler = ShardSchedulerKind::kPullQueue;
  ConcurrentSimulator sim(config);
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_TRUE(sim.worker_busy_seconds().empty());
  EXPECT_EQ(sim.scheduler_steals(), 0u);
}

// The epoch machinery stays load-bearing under the batch scheduler: the
// epoch advanced (batches bump it) and the run left no pins or
// registered slots behind.
TEST(WorkStealingSchedulerTest, EpochMachineryIsExercised) {
  ConcurrentSimulator sim(SkewedConcurrent("UpdatedPointer", 4));
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_GT(sim.epochs().current_epoch(), 1u);
  EXPECT_TRUE(sim.epochs().AllQuiescent());
  EXPECT_EQ(sim.epochs().registered_threads(), 0u);
}

}  // namespace
}  // namespace odbgc
