// TenantSpec / ServiceSpec fluent builders (sim/spec.h): every setter
// lands in the right nested-struct field, Build() hands back the wrapped
// SimulationConfig, and the defaults match the deprecated direct-struct
// paths so the two construction surfaces stay interchangeable.

#include "sim/spec.h"

#include <gtest/gtest.h>

#include "buffer/replacement_policy.h"
#include "sim/config.h"

namespace odbgc {
namespace {

TEST(TenantSpecTest, BaseWrapsThePaperConfigUnchanged) {
  const SimulationConfig expected = PaperBaseConfig();
  const SimulationConfig built = TenantSpec::Base().Build();
  EXPECT_EQ(built.heap.policy_name, expected.heap.policy_name);
  EXPECT_EQ(built.heap.buffer_pages, expected.heap.buffer_pages);
  EXPECT_EQ(built.heap.store.pages_per_partition,
            expected.heap.store.pages_per_partition);
  EXPECT_EQ(built.seed, expected.seed);
  EXPECT_EQ(built.workload.total_alloc_bytes,
            expected.workload.total_alloc_bytes);
}

TEST(TenantSpecTest, HeapKnobsLandInHeapOptions) {
  const SimulationConfig config = TenantSpec::Base()
                                      .WithPolicy("MostGarbage")
                                      .WithBufferPages(48)
                                      .WithPartitionPages(32)
                                      .WithTrigger(75)
                                      .WithDevice("ssd")
                                      .WithReplacement(
                                          ReplacementPolicyKind::kClock)
                                      .Build();
  EXPECT_EQ(config.heap.policy_name, "MostGarbage");
  EXPECT_EQ(config.heap.buffer_pages, 48u);
  EXPECT_EQ(config.heap.store.pages_per_partition, 32u);
  EXPECT_EQ(config.heap.overwrite_trigger, 75u);
  EXPECT_EQ(config.heap.device_spec, "ssd");
  EXPECT_EQ(config.heap.replacement, ReplacementPolicyKind::kClock);
}

TEST(TenantSpecTest, WorkloadKnobsLandInWorkloadAndTopLevel) {
  const SimulationConfig config = TenantSpec::Base()
                                      .WithSeed(42)
                                      .WithTotalAllocationMb(8)
                                      .WithWarmStart()
                                      .WithSnapshotInterval(500)
                                      .WithMutatorThreads(4, 8)
                                      .Build();
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.workload.total_alloc_bytes, 8ull << 20);
  EXPECT_TRUE(config.warm_start);
  EXPECT_EQ(config.snapshot_interval, 500u);
  EXPECT_EQ(config.mutator_threads, 4u);
  EXPECT_EQ(config.trace_shards, 8u);
}

TEST(TenantSpecTest, TotalAllocationScalesLiveTargetProportionally) {
  const SimulationConfig base = PaperBaseConfig();
  const SimulationConfig scaled =
      TenantSpec::Base()
          .WithTotalAllocation(base.workload.total_alloc_bytes * 2)
          .Build();
  EXPECT_EQ(scaled.workload.total_alloc_bytes,
            base.workload.total_alloc_bytes * 2);
  EXPECT_EQ(scaled.workload.target_live_bytes,
            base.workload.target_live_bytes * 2);
}

TEST(TenantSpecTest, NamedSetsTheServiceIdentity) {
  const TenantSpec spec =
      TenantSpec::Base().Named("oltp").WithPolicy("Random");
  EXPECT_EQ(spec.name, "oltp");
  EXPECT_EQ(spec.config.heap.policy_name, "Random");
}

TEST(TenantSpecTest, DefaultNameIsEmptyForServiceAssignment) {
  EXPECT_TRUE(TenantSpec::Base().name.empty());
}

TEST(ServiceSpecTest, DefaultsMatchTheEquivalenceContract) {
  const ServiceSpec spec = ServiceSpec::Hosting({});
  EXPECT_EQ(spec.threads, 1u);
  EXPECT_EQ(spec.shared_frame_budget, 0u);  // Sum of tenant caps.
  EXPECT_DOUBLE_EQ(spec.admission_watermark, 0.0);  // Admission off.
  EXPECT_TRUE(spec.manifest_dir.empty());
  EXPECT_EQ(spec.observer, nullptr);
  EXPECT_EQ(spec.events_per_batch, 256u);
}

TEST(ServiceSpecTest, BuilderAssemblesAFleet) {
  const ServiceSpec spec =
      ServiceSpec::Hosting({TenantSpec::Base().Named("a")})
          .AddTenant(TenantSpec::Base().Named("b").WithSeed(9))
          .WithThreads(4)
          .WithFrameBudget(96)
          .WithWatermark(0.5)
          .WithManifestDir("/tmp/out")
          .WithEventsPerBatch(128);
  ASSERT_EQ(spec.tenants.size(), 2u);
  EXPECT_EQ(spec.tenants[0].name, "a");
  EXPECT_EQ(spec.tenants[1].name, "b");
  EXPECT_EQ(spec.tenants[1].config.seed, 9u);
  EXPECT_EQ(spec.threads, 4u);
  EXPECT_EQ(spec.shared_frame_budget, 96u);
  EXPECT_DOUBLE_EQ(spec.admission_watermark, 0.5);
  EXPECT_EQ(spec.manifest_dir, "/tmp/out");
  EXPECT_EQ(spec.events_per_batch, 128u);
}

}  // namespace
}  // namespace odbgc
