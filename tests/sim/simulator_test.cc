#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

SimulationConfig TinySim() {
  SimulationConfig config;
  config.heap.store.page_size = 512;
  config.heap.store.pages_per_partition = 8;
  config.heap.buffer_pages = 8;
  config.heap.overwrite_trigger = 0;  // Manual only; traces below are tiny.
  return config;
}

TEST(SimulatorTest, ReplaysHandWrittenTrace) {
  Simulator simulator(TinySim());
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(10, 100, 2, 0, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::AddRoot(10)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(20, 100, 2, 10, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::WriteSlot(10, 0, 20)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::Visit(20)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::ReadSlot(10, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::WriteData(20)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::WriteSlot(10, 0, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::RemoveRoot(10)).ok());

  EXPECT_EQ(simulator.events_applied(), 9u);
  const CollectedHeap& heap = simulator.heap();
  EXPECT_EQ(heap.store().object_count(), 2u);
  EXPECT_EQ(heap.stats().pointer_overwrites, 1u);
  EXPECT_TRUE(heap.store().roots().empty());
}

TEST(SimulatorTest, LogicalIdsAreIndependentOfStoreIds) {
  Simulator simulator(TinySim());
  // Trace uses arbitrary sparse ids.
  ASSERT_TRUE(
      simulator.Append(TraceEvent::Alloc(0xdeadbeef, 100, 2, 0, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(7, 100, 2, 0, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::WriteSlot(0xdeadbeef, 1, 7)).ok());
  EXPECT_EQ(simulator.heap().store().object_count(), 2u);
}

TEST(SimulatorTest, UnknownObjectRejected) {
  Simulator simulator(TinySim());
  EXPECT_EQ(simulator.Append(TraceEvent::Visit(5)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(simulator.Append(TraceEvent::WriteSlot(5, 0, 0)).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(5, 100, 2, 0, 0)).ok());
  EXPECT_EQ(simulator.Append(TraceEvent::WriteSlot(5, 0, 9)).code(),
            StatusCode::kNotFound);
}

TEST(SimulatorTest, DuplicateAllocRejected) {
  Simulator simulator(TinySim());
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(5, 100, 2, 0, 0)).ok());
  EXPECT_EQ(simulator.Append(TraceEvent::Alloc(5, 100, 2, 0, 0)).code(),
            StatusCode::kCorruption);
}

TEST(SimulatorTest, SnapshotsProduceTimeSeries) {
  SimulationConfig config = TinySim();
  config.snapshot_interval = 3;
  Simulator simulator(config);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        simulator.Append(TraceEvent::Alloc(100 + i, 100, 2, 0, 0)).ok());
  }
  SimulationResult result = simulator.Finish();
  EXPECT_EQ(result.database_size_kb.points().size(), 3u);  // At 3, 6, 9.
  EXPECT_EQ(result.unreclaimed_garbage_kb.points().size(), 3u);
  EXPECT_DOUBLE_EQ(result.database_size_kb.points()[0].x, 3.0);
}

TEST(SimulatorTest, FinishComputesCensusAndAccounting) {
  Simulator simulator(TinySim());
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(1, 100, 2, 0, 0)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::AddRoot(1)).ok());
  ASSERT_TRUE(simulator.Append(TraceEvent::Alloc(2, 150, 2, 1, 0)).ok());

  SimulationResult result = simulator.Finish();
  EXPECT_EQ(result.app_events, 3u);
  EXPECT_EQ(result.final_live_bytes, 100u);
  EXPECT_EQ(result.unreclaimed_garbage_bytes, 150u);
  EXPECT_EQ(result.actual_garbage_bytes(), 150u);
  EXPECT_EQ(result.bytes_allocated, 250u);
  EXPECT_EQ(result.total_io(), result.app_io + result.gc_io);
}

TEST(SimulatorTest, RunGeneratesConfiguredWorkload) {
  SimulationConfig config = TinySim();
  config.heap.overwrite_trigger = 25;
  config.workload.target_live_bytes = 32ull << 10;
  config.workload.total_alloc_bytes = 80ull << 10;
  config.workload.tree_nodes_min = 40;
  config.workload.tree_nodes_max = 120;
  config.workload.large_object_size = 2048;
  config.seed = 3;
  Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  SimulationResult result = simulator.Finish();
  EXPECT_GT(result.app_events, 1000u);
  EXPECT_GT(result.collections, 0u);
  EXPECT_GE(result.bytes_allocated, config.workload.total_alloc_bytes);
}

}  // namespace
}  // namespace odbgc
