// The storage-engine acceptance check: a six-policy experiment run with
// `device=file:<path>` must produce SimulationResults whose policy-relevant
// fields are byte-identical to the same-seed run on the in-memory
// SimulatedDisk. The file backend threads real pwrite/pread, an async
// scheduler, fsync barriers and a read-ahead cache under the same
// PageDevice seam — none of which may perturb the simulated cost model.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "observe/manifest.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "storage/device_registry.h"
#include "util/time_series.h"

namespace odbgc {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "odbgc_file_equiv/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SimulationConfig TinyConfig(uint64_t seed) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.snapshot_interval = 2000;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

void ExpectSameSeries(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.points().size(), b.points().size());
  for (size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << "point " << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << "point " << i;
  }
}

// Every policy-relevant field — everything the paper's tables and the
// manifests' result section draw on. `device` (the backend's identity)
// and `measured` (real wall-clock I/O) are intentionally not compared:
// they are exactly what the two runs legitimately differ in.
void ExpectPolicyFieldsIdentical(const SimulationResult& file,
                                 const SimulationResult& mem) {
  EXPECT_EQ(file.policy, mem.policy);
  EXPECT_EQ(file.seed, mem.seed);
  EXPECT_EQ(file.app_events, mem.app_events);
  EXPECT_EQ(file.app_io, mem.app_io);
  EXPECT_EQ(file.gc_io, mem.gc_io);
  EXPECT_EQ(file.max_storage_bytes, mem.max_storage_bytes);
  EXPECT_EQ(file.max_partitions, mem.max_partitions);
  EXPECT_EQ(file.final_partitions, mem.final_partitions);
  EXPECT_EQ(file.collections, mem.collections);
  EXPECT_EQ(file.garbage_reclaimed_bytes, mem.garbage_reclaimed_bytes);
  EXPECT_EQ(file.live_bytes_copied, mem.live_bytes_copied);
  EXPECT_EQ(file.unreclaimed_garbage_bytes, mem.unreclaimed_garbage_bytes);
  EXPECT_EQ(file.final_live_bytes, mem.final_live_bytes);
  EXPECT_EQ(file.remset_entries, mem.remset_entries);
  EXPECT_EQ(file.bytes_allocated, mem.bytes_allocated);
  EXPECT_EQ(file.pointer_overwrites, mem.pointer_overwrites);
  // Same DiskCostParams surface: the estimate must match to the bit.
  EXPECT_EQ(file.estimated_device_time_ms, mem.estimated_device_time_ms);
  ExpectSameSeries(file.unreclaimed_garbage_kb, mem.unreclaimed_garbage_kb);
  ExpectSameSeries(file.database_size_kb, mem.database_size_kb);
  EXPECT_EQ(file.heap_stats.pointer_stores, mem.heap_stats.pointer_stores);
  EXPECT_EQ(file.heap_stats.objects_allocated,
            mem.heap_stats.objects_allocated);
  EXPECT_EQ(file.heap_stats.full_collections,
            mem.heap_stats.full_collections);
  EXPECT_EQ(file.buffer_stats.hits, mem.buffer_stats.hits);
  EXPECT_EQ(file.buffer_stats.misses, mem.buffer_stats.misses);
  EXPECT_EQ(file.buffer_stats.reads_app, mem.buffer_stats.reads_app);
  EXPECT_EQ(file.buffer_stats.reads_gc, mem.buffer_stats.reads_gc);
  EXPECT_EQ(file.buffer_stats.writes_app, mem.buffer_stats.writes_app);
  EXPECT_EQ(file.buffer_stats.writes_gc, mem.buffer_stats.writes_gc);
  EXPECT_EQ(file.disk_stats.page_reads, mem.disk_stats.page_reads);
  EXPECT_EQ(file.disk_stats.page_writes, mem.disk_stats.page_writes);
  EXPECT_EQ(file.disk_stats.sequential_transfers,
            mem.disk_stats.sequential_transfers);
  EXPECT_EQ(file.disk_stats.random_transfers,
            mem.disk_stats.random_transfers);
}

SimulationResult RunOne(SimulationConfig config) {
  Simulator simulator(config);
  EXPECT_TRUE(simulator.Run().ok());
  return simulator.Finish();
}

TEST(FileBackendEquivalenceTest, SixPoliciesMatchInMemoryRuns) {
  const std::string dir = FreshDir("six_policies");
  for (const std::string& policy : PaperPolicyNames()) {
    SimulationConfig mem_config = TinyConfig(/*seed=*/11);
    mem_config.heap.policy_name = policy;
    const SimulationResult mem = RunOne(mem_config);

    SimulationConfig file_config = mem_config;
    file_config.heap.device_spec = "file:" + dir + "/" + policy + ".odb";
    const SimulationResult file = RunOne(file_config);

    EXPECT_EQ(file.device, DeviceKind::kFile) << policy;
    EXPECT_EQ(mem.device, DeviceKind::kSimulatedDisk);
    ExpectPolicyFieldsIdentical(file, mem);

    // And the file run carries real measurements on the side.
    EXPECT_TRUE(file.measured.measured) << policy;
    EXPECT_GT(file.measured.writes, 0u) << policy;
    EXPECT_FALSE(mem.measured.measured);
  }
  std::filesystem::remove_all(dir);
}

TEST(FileBackendEquivalenceTest, ReadAheadAndThreadsDoNotPerturbResults) {
  const std::string dir = FreshDir("knobs");
  SimulationConfig base = TinyConfig(/*seed=*/5);
  base.heap.policy_name = "UpdatedPointer";
  const SimulationResult reference = RunOne(base);

  struct Knobs {
    const char* name;
    size_t readahead;
    int threads;
    bool direct_io;
  };
  for (const Knobs& k :
       {Knobs{"no_readahead", 0, 1, false}, Knobs{"threads8", 64, 8, false},
        Knobs{"direct", 64, 2, true}}) {
    SimulationConfig config = base;
    config.heap.device_spec =
        "file:" + dir + "/" + std::string(k.name) + ".odb";
    config.heap.file_device.readahead_pages = k.readahead;
    config.heap.file_device.io_threads = k.threads;
    config.heap.file_device.direct_io = k.direct_io;
    ExpectPolicyFieldsIdentical(RunOne(config), reference);
  }
  std::filesystem::remove_all(dir);
}

TEST(FileBackendEquivalenceTest, ExperimentManifestsCarryMeasuredSection) {
  const std::string dir = FreshDir("manifests");
  ExperimentSpec spec;
  spec.base = TinyConfig(/*seed=*/1);
  spec.base.heap.device_spec = "file:" + dir + "/exp.odb";
  spec.policies = {"MostGarbage", "Random"};
  spec.num_seeds = 2;
  spec.manifest_dir = dir + "/manifests";

  auto experiment = RunExperiment(spec);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();

  for (const std::string& policy : spec.policies) {
    for (uint64_t seed = spec.first_seed;
         seed < spec.first_seed + spec.num_seeds; ++seed) {
      const std::string path =
          spec.manifest_dir + "/" + ManifestFileName(policy, seed);
      auto manifest = LoadManifestFile(path);
      ASSERT_TRUE(manifest.ok()) << path << ": "
                                 << manifest.status().ToString();
      // Config names the backend, not the per-run path (digests must stay
      // comparable across the experiment axes)...
      const Json* config = manifest->Get("config");
      ASSERT_NE(config, nullptr);
      const Json* heap = config->Get("heap");
      ASSERT_NE(heap, nullptr);
      ASSERT_NE(heap->Get("device"), nullptr);
      EXPECT_EQ(heap->Get("device")->string_value(), "file");
      // ...while the measured section records the actual backing file.
      const Json* measured = manifest->Get("measured");
      ASSERT_NE(measured, nullptr) << path;
      ASSERT_NE(measured->Get("device_spec"), nullptr);
      EXPECT_NE(measured->Get("device_spec")->string_value().find(policy),
                std::string::npos);
      EXPECT_GT(measured->Get("writes")->uint_value(), 0u);
      EXPECT_GE(measured->Get("wall_ms")->double_value(), 0.0);
    }
  }
  std::filesystem::remove_all(dir);
}

// Byte-level determinism of the medium itself: two identical runs leave
// byte-identical partition files behind (the scheduler's disjoint-range
// guarantee, surfaced end to end).
TEST(FileBackendEquivalenceTest, IdenticalRunsLeaveIdenticalFiles) {
  const std::string dir = FreshDir("file_bytes");
  std::vector<std::string> paths;
  for (const char* name : {"a", "b"}) {
    SimulationConfig config = TinyConfig(/*seed=*/7);
    config.heap.policy_name = "MutatedPartition";
    config.heap.device_spec = "file:" + dir + "/" + name + ".odb";
    config.heap.file_device.io_threads = name[0] == 'a' ? 1 : 4;
    (void)RunOne(config);
    paths.push_back(dir + "/" + name + ".odb");
  }
  std::ifstream a(paths[0], std::ios::binary);
  std::ifstream b(paths[1], std::ios::binary);
  ASSERT_TRUE(a.good() && b.good());
  const std::string bytes_a((std::istreambuf_iterator<char>(a)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(b)), {});
  EXPECT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_TRUE(bytes_a == bytes_b);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace odbgc
