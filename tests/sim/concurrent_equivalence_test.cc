// The concurrent mode's verification contract (sim/concurrent_simulator.h):
// a multi-threaded run's aggregate result must equal, field for field, the
// aggregate of its shards each replayed through the plain serial Simulator.
// Held here for all six paper policies, and across thread counts — the
// shard set is the determinism unit, so 1, 2 and 3 workers over the same
// shards must agree bitwise.

#include "sim/concurrent_simulator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/selection_policy.h"
#include "sim/runner.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

SimulationConfig SmallConcurrent(const std::string& policy_name) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 25;
  config.heap.policy_name = policy_name;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 50;
  config.workload.tree_nodes_max = 150;
  config.workload.large_object_size = 4096;
  config.seed = 7;
  config.mutator_threads = 2;
  config.trace_shards = 4;
  return config;
}

/// The serial oracle: every shard the concurrent run would execute,
/// replayed through the plain Simulator and aggregated by the same rule.
SimulationResult SerialOracle(const SimulationConfig& config) {
  ConcurrentSimulator shape(config);
  std::vector<SimulationResult> parts;
  for (uint32_t s = 0; s < shape.shard_count(); ++s) {
    Simulator sim(shape.ShardConfig(s));
    EXPECT_TRUE(sim.Run().ok()) << "shard " << s;
    parts.push_back(sim.Finish());
  }
  SimulationResult result = ConcurrentSimulator::AggregateResults(parts);
  result.seed = config.seed;
  return result;
}

/// Field-for-field equality over the deterministic result surface
/// (everything except `measured`, which is wall-clock by definition).
void ExpectResultsIdentical(const SimulationResult& a,
                            const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.replacement, b.replacement);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  EXPECT_EQ(a.estimated_device_time_ms, b.estimated_device_time_ms);
  EXPECT_EQ(a.heap_stats.collections, b.heap_stats.collections);
  EXPECT_EQ(a.heap_stats.full_collections, b.heap_stats.full_collections);
  EXPECT_EQ(a.heap_stats.pointer_stores, b.heap_stats.pointer_stores);
  EXPECT_EQ(a.heap_stats.objects_allocated, b.heap_stats.objects_allocated);
  EXPECT_EQ(a.heap_stats.garbage_bytes_reclaimed,
            b.heap_stats.garbage_bytes_reclaimed);
  EXPECT_EQ(a.heap_stats.live_bytes_copied, b.heap_stats.live_bytes_copied);
  EXPECT_EQ(a.heap_stats.max_total_bytes, b.heap_stats.max_total_bytes);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
  EXPECT_EQ(a.buffer_stats.reads_app, b.buffer_stats.reads_app);
  EXPECT_EQ(a.buffer_stats.reads_gc, b.buffer_stats.reads_gc);
  EXPECT_EQ(a.buffer_stats.writes_app, b.buffer_stats.writes_app);
  EXPECT_EQ(a.buffer_stats.writes_gc, b.buffer_stats.writes_gc);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name) << "sample " << i;
    EXPECT_EQ(a.metrics[i].application, b.metrics[i].application)
        << a.metrics[i].name;
    EXPECT_EQ(a.metrics[i].collector, b.metrics[i].collector)
        << a.metrics[i].name;
  }
}

class ConcurrentEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ConcurrentEquivalenceTest, TwoThreadsMatchSerialOracle) {
  const SimulationConfig config = SmallConcurrent(GetParam());
  ConcurrentSimulator concurrent(config);
  ASSERT_TRUE(concurrent.Run().ok());
  const SimulationResult result = concurrent.Finish();
  // Guard against a vacuous pass: the sharded run must have actually
  // replayed the workload.
  EXPECT_GT(result.app_events, 0u);
  EXPECT_GE(result.bytes_allocated, config.workload.total_alloc_bytes);
  ExpectResultsIdentical(SerialOracle(config), result);
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, ConcurrentEquivalenceTest,
                         ::testing::ValuesIn(PaperPolicyNames()));

TEST(ConcurrentSimulatorTest, ResultIsThreadCountInvariant) {
  const SimulationConfig base = SmallConcurrent("MostGarbage");
  std::vector<SimulationResult> results;
  for (uint32_t threads : {1u, 2u, 3u}) {
    SimulationConfig config = base;
    config.mutator_threads = threads;  // trace_shards stays 4.
    ConcurrentSimulator sim(config);
    ASSERT_TRUE(sim.Run().ok()) << threads << " threads";
    results.push_back(sim.Finish());
  }
  ExpectResultsIdentical(results[0], results[1]);
  ExpectResultsIdentical(results[0], results[2]);
}

TEST(ConcurrentSimulatorTest, ShardSeedsAreDistinct) {
  const uint64_t base = 7;
  EXPECT_NE(ConcurrentSimulator::ShardSeed(base, 0),
            ConcurrentSimulator::ShardSeed(base, 1));
  EXPECT_NE(ConcurrentSimulator::ShardSeed(base, 0), base);
  // Stable: the equivalence contract depends on shard seeds never moving.
  EXPECT_EQ(ConcurrentSimulator::ShardSeed(base, 0),
            ConcurrentSimulator::ShardSeed(base, 0));
}

TEST(ConcurrentSimulatorTest, ShardSlicesCoverTheAllocationVolume) {
  SimulationConfig config = SmallConcurrent("Random");
  config.workload.total_alloc_bytes = 240ull * 1024 + 3;  // Non-divisible.
  ConcurrentSimulator sim(config);
  uint64_t total = 0;
  for (uint32_t s = 0; s < sim.shard_count(); ++s) {
    total += sim.ShardConfig(s).workload.total_alloc_bytes;
  }
  EXPECT_EQ(total, config.workload.total_alloc_bytes);
}

TEST(ConcurrentSimulatorTest, EpochMachineryIsExercised) {
  const SimulationConfig config = SmallConcurrent("UpdatedPointer");
  ConcurrentSimulator sim(config);
  ASSERT_TRUE(sim.Run().ok());
  // The pacer ticked the epoch at least once per batch, and every worker
  // unpinned and unregistered on exit.
  EXPECT_GT(sim.epochs().current_epoch(), 1u);
  EXPECT_TRUE(sim.epochs().AllQuiescent());
  EXPECT_EQ(sim.epochs().registered_threads(), 0u);
}

TEST(ConcurrentSimulatorTest, RunnerRoutesMutatorThreadsInvariantly) {
  // RunExperiment dispatches mutator_threads > 1 through the concurrent
  // simulator; the experiment-level results must still be thread-count
  // invariant (same shard set either way).
  auto run = [](uint32_t mutators) {
    ExperimentSpec spec;
    spec.base = SmallConcurrent("");
    spec.base.heap.policy_name.clear();
    spec.policies = {"MostGarbage", "Random"};
    spec.num_seeds = 2;
    spec.threads = 1;
    return std::move(spec).WithMutatorThreads(mutators, 4);
  };
  auto serial = RunExperiment(run(1));
  auto threaded = RunExperiment(run(2));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  ASSERT_EQ(serial->sets.size(), threaded->sets.size());
  for (size_t s = 0; s < serial->sets.size(); ++s) {
    ASSERT_EQ(serial->sets[s].runs.size(), threaded->sets[s].runs.size());
    for (size_t r = 0; r < serial->sets[s].runs.size(); ++r) {
      SCOPED_TRACE("set " + std::to_string(s) + " run " + std::to_string(r));
      EXPECT_GT(serial->sets[s].runs[r].app_events, 0u);
      ExpectResultsIdentical(serial->sets[s].runs[r],
                             threaded->sets[s].runs[r]);
    }
  }
}

TEST(ConcurrentSimulatorTest, RejectsMoreThreadsThanShards) {
  SimulationConfig config = SmallConcurrent("Random");
  config.mutator_threads = 8;
  config.trace_shards = 4;
  ConcurrentSimulator sim(config);
  EXPECT_EQ(sim.Run().code(), StatusCode::kInvalidArgument);
}

TEST(ConcurrentSimulatorTest, RejectsZeroThreads) {
  SimulationConfig config = SmallConcurrent("Random");
  config.mutator_threads = 0;
  ConcurrentSimulator sim(config);
  EXPECT_EQ(sim.Run().code(), StatusCode::kInvalidArgument);
}

TEST(ConcurrentSimulatorTest, RejectsDurabilityKnobs) {
  SimulationConfig config = SmallConcurrent("Random");
  config.wal_dir = "/tmp/odbgc-wal";
  ConcurrentSimulator with_wal(config);
  EXPECT_EQ(with_wal.Run().code(), StatusCode::kInvalidArgument);

  config.wal_dir.clear();
  config.checkpoint_every_rounds = 4;
  ConcurrentSimulator with_checkpoints(config);
  EXPECT_EQ(with_checkpoints.Run().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace odbgc
