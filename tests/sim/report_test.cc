#include "sim/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

SimulationResult FakeRun(PolicyKind policy, uint64_t seed, uint64_t app_io,
                         uint64_t gc_io, uint64_t max_storage,
                         uint64_t reclaimed, uint64_t unreclaimed) {
  SimulationResult r;
  r.policy = policy;
  r.seed = seed;
  r.app_io = app_io;
  r.gc_io = gc_io;
  r.max_storage_bytes = max_storage;
  r.max_partitions = max_storage / (48 * 8192);
  r.garbage_reclaimed_bytes = reclaimed;
  r.unreclaimed_garbage_bytes = unreclaimed;
  r.collections = 25;
  return r;
}

Experiment FakeExperiment() {
  Experiment e;
  PolicyRuns most;
  most.policy = PolicyKind::kMostGarbage;
  most.runs = {FakeRun(PolicyKind::kMostGarbage, 1, 32000, 1500,
                       7000ull << 10, 4700ull << 10, 2300ull << 10),
               FakeRun(PolicyKind::kMostGarbage, 2, 34000, 1600,
                       7400ull << 10, 4800ull << 10, 2200ull << 10)};
  PolicyRuns updated;
  updated.policy = PolicyKind::kUpdatedPointer;
  updated.runs = {FakeRun(PolicyKind::kUpdatedPointer, 1, 33000, 1650,
                          7700ull << 10, 4300ull << 10, 2700ull << 10),
                  FakeRun(PolicyKind::kUpdatedPointer, 2, 35000, 1750,
                          8100ull << 10, 4400ull << 10, 2600ull << 10)};
  e.sets = {most, updated};
  return e;
}

TEST(ReportTest, SummarizeComputesAggregates) {
  const auto summaries = Summarize(FakeExperiment());
  ASSERT_EQ(summaries.size(), 2u);
  const PolicySummary& most = summaries[0];
  EXPECT_EQ(most.policy, PolicyKind::kMostGarbage);
  EXPECT_DOUBLE_EQ(most.app_io.mean(), 33000.0);
  EXPECT_DOUBLE_EQ(most.gc_io.mean(), 1550.0);
  EXPECT_DOUBLE_EQ(most.total_io.mean(), 34550.0);
  // Relative-to-baseline of the baseline itself is exactly 1.
  EXPECT_DOUBLE_EQ(most.relative_total_io.mean(), 1.0);
  EXPECT_DOUBLE_EQ(most.relative_total_io.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(most.relative_max_storage.mean(), 1.0);

  const PolicySummary& updated = summaries[1];
  // Paired per seed: (34650/33500 + 36750/35600) / 2.
  EXPECT_NEAR(updated.relative_total_io.mean(),
              (34650.0 / 33500.0 + 36750.0 / 35600.0) / 2, 1e-9);
  EXPECT_GT(updated.relative_max_storage.mean(), 1.0);
}

TEST(ReportTest, SummarizeWithoutBaselineSkipsRelative) {
  Experiment e = FakeExperiment();
  e.sets.erase(e.sets.begin());  // Drop MostGarbage.
  const auto summaries = Summarize(e);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].relative_total_io.count(), 0u);
}

TEST(ReportTest, FractionAndEfficiency) {
  const auto summaries = Summarize(FakeExperiment());
  const PolicySummary& most = summaries[0];
  // Seed 1: 4700 / 7000 = 67.1%.
  EXPECT_NEAR(most.fraction_reclaimed_pct.mean(),
              (4700.0 / 7000.0 + 4800.0 / 7000.0) / 2 * 100, 0.2);
  EXPECT_NEAR(most.efficiency_kb_per_io.mean(),
              (4700.0 / 1500.0 + 4800.0 / 1600.0) / 2, 1e-6);
  EXPECT_DOUBLE_EQ(most.actual_garbage_kb.mean(), 7000.0);
}

TEST(ReportTest, TablesContainPolicyRows) {
  const auto summaries = Summarize(FakeExperiment());
  for (auto printer : {PrintThroughputTable, PrintStorageTable,
                       PrintEfficiencyTable}) {
    std::ostringstream os;
    printer(summaries, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("MostGarbage"), std::string::npos);
    EXPECT_NE(out.find("UpdatedPointer"), std::string::npos);
  }
}

TEST(ReportTest, EfficiencyTableHasActualGarbageRow) {
  std::ostringstream os;
  PrintEfficiencyTable(Summarize(FakeExperiment()), os);
  EXPECT_NE(os.str().find("Actual Garbage"), std::string::npos);
  EXPECT_NE(os.str().find("7000"), std::string::npos);
}

}  // namespace
}  // namespace odbgc
