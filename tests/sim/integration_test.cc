// End-to-end runs of the scaled-down paper workload under every policy,
// checking the cross-policy invariants of trace-driven simulation.

#include <gtest/gtest.h>

#include "core/reachability.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

SimulationConfig SmallPaperConfig(PolicyKind policy, uint64_t seed) {
  SimulationConfig config = PaperBaseConfig();
  config.heap.store.page_size = 2048;
  config.heap.store.pages_per_partition = 16;  // 32 KB partitions.
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 40;
  config.heap.policy = policy;
  config.seed = seed;
  config.workload.target_live_bytes = 160ull << 10;
  config.workload.total_alloc_bytes = 420ull << 10;
  config.workload.tree_nodes_min = 80;
  config.workload.tree_nodes_max = 300;
  config.workload.large_object_size = 8192;
  return config;
}

SimulationResult RunOne(PolicyKind policy, uint64_t seed) {
  Simulator simulator(SmallPaperConfig(policy, seed));
  const Status status = simulator.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  return simulator.Finish();
}

TEST(IntegrationTest, DeterministicAcrossRepeats) {
  const SimulationResult a = RunOne(PolicyKind::kUpdatedPointer, 1);
  const SimulationResult b = RunOne(PolicyKind::kUpdatedPointer, 1);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.collections, b.collections);
}

TEST(IntegrationTest, WorkloadIdenticalAcrossPolicies) {
  // The logical evolution of the database is trace-determined: events,
  // allocation volume, overwrites and final live bytes must be identical
  // whichever policy collected.
  const SimulationResult reference = RunOne(PolicyKind::kNoCollection, 2);
  for (PolicyKind policy :
       {PolicyKind::kRandom, PolicyKind::kUpdatedPointer,
        PolicyKind::kMostGarbage, PolicyKind::kMutatedPartition,
        PolicyKind::kWeightedPointer}) {
    const SimulationResult run = RunOne(policy, 2);
    EXPECT_EQ(run.app_events, reference.app_events) << PolicyName(policy);
    EXPECT_EQ(run.bytes_allocated, reference.bytes_allocated);
    EXPECT_EQ(run.pointer_overwrites, reference.pointer_overwrites);
    EXPECT_EQ(run.final_live_bytes, reference.final_live_bytes)
        << PolicyName(policy) << ": collection must never change liveness";
    EXPECT_EQ(run.actual_garbage_bytes(), reference.actual_garbage_bytes())
        << PolicyName(policy)
        << ": reclaimed + unreclaimed is a trace property";
  }
}

TEST(IntegrationTest, CollectingPoliciesReclaimGarbage) {
  for (PolicyKind policy : {PolicyKind::kRandom, PolicyKind::kUpdatedPointer,
                            PolicyKind::kMostGarbage}) {
    const SimulationResult run = RunOne(policy, 3);
    EXPECT_GT(run.collections, 3u) << PolicyName(policy);
    EXPECT_GT(run.garbage_reclaimed_bytes, 0u) << PolicyName(policy);
    EXPECT_GT(run.FractionReclaimedPct(), 5.0) << PolicyName(policy);
    EXPECT_GT(run.EfficiencyKbPerIo(), 0.0) << PolicyName(policy);
  }
}

TEST(IntegrationTest, NoCollectionUsesMostStorage) {
  const SimulationResult none = RunOne(PolicyKind::kNoCollection, 4);
  EXPECT_EQ(none.collections, 0u);
  EXPECT_EQ(none.gc_io, 0u);
  EXPECT_EQ(none.garbage_reclaimed_bytes, 0u);
  for (PolicyKind policy :
       {PolicyKind::kUpdatedPointer, PolicyKind::kMostGarbage}) {
    const SimulationResult run = RunOne(policy, 4);
    EXPECT_LT(run.max_storage_bytes, none.max_storage_bytes)
        << PolicyName(policy) << " must use less storage than NoCollection";
  }
}

TEST(IntegrationTest, OracleBeatsRandomOnReclamation) {
  // Averaged over a few seeds so a single lucky Random run cannot flip it.
  double oracle = 0, random = 0;
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    oracle += RunOne(PolicyKind::kMostGarbage, seed).FractionReclaimedPct();
    random += RunOne(PolicyKind::kRandom, seed).FractionReclaimedPct();
  }
  EXPECT_GT(oracle, random);
}

TEST(IntegrationTest, IoAccountingConsistent) {
  const SimulationResult run = RunOne(PolicyKind::kUpdatedPointer, 8);
  EXPECT_EQ(run.app_io, run.buffer_stats.app_io());
  EXPECT_EQ(run.gc_io, run.buffer_stats.gc_io());
  // Every buffer miss is exactly one disk read.
  EXPECT_EQ(run.buffer_stats.misses,
            run.buffer_stats.reads_app + run.buffer_stats.reads_gc);
}

}  // namespace
}  // namespace odbgc
