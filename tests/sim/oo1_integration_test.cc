// End-to-end replay of the OO1-style workload under each policy: the same
// cross-policy invariants as the tree workload, on a flat, connection-
// heavy object graph.

#include <gtest/gtest.h>

#include "core/reachability.h"
#include "sim/simulator.h"
#include "workload/oo1_generator.h"

namespace odbgc {
namespace {

SimulationConfig SmallHeapConfig(PolicyKind policy) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.policy = policy;
  config.heap.overwrite_trigger = 60;
  return config;
}

OO1Config SmallOO1() {
  OO1Config config;
  config.target_live_bytes = 96ull << 10;
  config.total_alloc_bytes = 220ull << 10;
  config.lookup_count = 20;
  config.traversal_depth = 4;
  config.inserts_per_round = 10;
  config.deletes_per_round = 10;
  return config;
}

SimulationResult RunOne(PolicyKind policy, uint64_t seed) {
  Simulator simulator(SmallHeapConfig(policy));
  OO1Generator generator(SmallOO1(), seed);
  const Status status = generator.Generate(&simulator);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return simulator.Finish();
}

TEST(OO1IntegrationTest, ReplaysUnderEveryPolicy) {
  for (PolicyKind policy : AllPolicyKinds()) {
    const SimulationResult run = RunOne(policy, 1);
    EXPECT_GT(run.app_events, 10000u) << PolicyName(policy);
    if (policy != PolicyKind::kNoCollection) {
      EXPECT_GT(run.collections, 0u) << PolicyName(policy);
    }
  }
}

TEST(OO1IntegrationTest, WorkloadIdenticalAcrossPolicies) {
  const SimulationResult reference = RunOne(PolicyKind::kNoCollection, 2);
  for (PolicyKind policy :
       {PolicyKind::kUpdatedPointer, PolicyKind::kMostGarbage}) {
    const SimulationResult run = RunOne(policy, 2);
    EXPECT_EQ(run.app_events, reference.app_events);
    EXPECT_EQ(run.final_live_bytes, reference.final_live_bytes);
    EXPECT_EQ(run.actual_garbage_bytes(), reference.actual_garbage_bytes());
  }
}

TEST(OO1IntegrationTest, DeletesCreateReclaimableGarbage) {
  const SimulationResult run = RunOne(PolicyKind::kMostGarbage, 3);
  EXPECT_GT(run.actual_garbage_bytes(), 20ull << 10);
  EXPECT_GT(run.garbage_reclaimed_bytes, 0u);
}

TEST(OO1IntegrationTest, HeapInvariantsHoldAfterRun) {
  Simulator simulator(SmallHeapConfig(PolicyKind::kUpdatedPointer));
  OO1Generator generator(SmallOO1(), 4);
  ASSERT_TRUE(generator.Generate(&simulator).ok());

  const ObjectStore& store = simulator.heap().store();
  const auto live = ComputeLiveSet(store);
  for (ObjectId id : live) {
    const auto* info = store.Lookup(id);
    ASSERT_NE(info, nullptr);
    for (ObjectId child : info->slots) {
      if (!child.is_null()) {
        ASSERT_TRUE(store.Exists(child));
      }
    }
  }
  // Live parts tracked by the generator are a lower bound on live bytes.
  EXPECT_GE(ComputeGarbageCensus(store).total_live_bytes,
            generator.live_part_count() * 100);
}

}  // namespace
}  // namespace odbgc
