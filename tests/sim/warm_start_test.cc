#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(bool warm, uint64_t seed = 1) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.warm_start = warm;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

TEST(WarmStartTest, ExcludesBuildPhaseFromMeasurements) {
  Simulator cold(TinyConfig(false));
  ASSERT_TRUE(cold.Run().ok());
  const SimulationResult cold_result = cold.Finish();

  Simulator warm(TinyConfig(true));
  ASSERT_TRUE(warm.Run().ok());
  const SimulationResult warm_result = warm.Finish();

  // The warm run measures strictly less: fewer events, fewer allocated
  // bytes (the build is excluded), less application I/O.
  EXPECT_LT(warm_result.app_events, cold_result.app_events);
  EXPECT_LT(warm_result.bytes_allocated, cold_result.bytes_allocated);
  EXPECT_LT(warm_result.app_io, cold_result.app_io);
  // But the database itself ends identical (same trace).
  EXPECT_EQ(warm_result.final_live_bytes, cold_result.final_live_bytes);
  EXPECT_EQ(warm_result.final_partitions, cold_result.final_partitions);
}

TEST(WarmStartTest, HeapResetMeasurementKeepsDatabase) {
  Simulator simulator(TinyConfig(false));
  ASSERT_TRUE(simulator.Run().ok());
  CollectedHeap& heap = simulator.heap();
  const size_t objects = heap.store().object_count();
  const uint64_t live = heap.store().live_bytes();
  ASSERT_GT(heap.total_io(), 0u);

  heap.ResetMeasurement();
  EXPECT_EQ(heap.total_io(), 0u);
  EXPECT_EQ(heap.stats().collections, 0u);
  EXPECT_EQ(heap.stats().bytes_allocated, 0u);
  EXPECT_TRUE(heap.collection_log().empty());
  // The database is untouched.
  EXPECT_EQ(heap.store().object_count(), objects);
  EXPECT_EQ(heap.store().live_bytes(), live);
  // The footprint high-water mark restarts from the current footprint.
  EXPECT_EQ(heap.stats().max_total_bytes, heap.store().total_bytes());
}

TEST(WarmStartTest, WarmBufferSavesInitialIo) {
  // The first traversals after a warm start hit the still-resident build
  // pages; a cold-started heap with an artificially cleared buffer would
  // have to fault them in. Compare warm-start app I/O to the same phase
  // of a run whose buffer was discarded after the build.
  SimulationConfig config = TinyConfig(true, 7);
  Simulator warm(config);
  ASSERT_TRUE(warm.Run().ok());

  Simulator flushed(config);
  // Replicate Run() but clear the buffer between phases.
  WorkloadGenerator generator(config.workload, config.seed);
  ASSERT_TRUE(generator.BuildInitialDatabase(&flushed).ok());
  flushed.heap().ResetMeasurement();
  ASSERT_TRUE(flushed.heap().mutable_buffer().FlushAll().ok());
  flushed.heap().mutable_buffer().DiscardExtent(
      PageExtent{0, flushed.heap().disk().num_pages()});
  flushed.heap().mutable_buffer().ResetStats();
  ASSERT_TRUE(generator.Generate(&flushed).ok());

  // The warm buffer saves application *reads* (its resident pages need no
  // fault-in); its deferred write-backs of build-phase dirty pages can
  // offset the total, so the clean comparison is reads.
  EXPECT_LE(warm.Finish().buffer_stats.reads_app,
            flushed.Finish().buffer_stats.reads_app);
}

}  // namespace
}  // namespace odbgc
