#include "sim/runner.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

ExperimentSpec TinySpec() {
  ExperimentSpec spec;
  spec.base.heap.store.page_size = 1024;
  spec.base.heap.store.pages_per_partition = 16;
  spec.base.heap.buffer_pages = 16;
  spec.base.heap.overwrite_trigger = 25;
  spec.base.workload.target_live_bytes = 64ull << 10;
  spec.base.workload.total_alloc_bytes = 160ull << 10;
  spec.base.workload.tree_nodes_min = 50;
  spec.base.workload.tree_nodes_max = 150;
  spec.base.workload.large_object_size = 4096;
  spec.policies = {"MostGarbage", "Random", "NoCollection"};
  spec.num_seeds = 3;
  spec.first_seed = 10;
  return spec;
}

TEST(RunnerTest, RunsAllPoliciesAndSeeds) {
  auto experiment = RunExperiment(TinySpec());
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();
  ASSERT_EQ(experiment->sets.size(), 3u);
  for (const PolicyRuns& set : experiment->sets) {
    ASSERT_EQ(set.runs.size(), 3u);
    for (size_t i = 0; i < set.runs.size(); ++i) {
      EXPECT_EQ(set.runs[i].policy, set.policy);
      EXPECT_EQ(set.runs[i].seed, 10 + i);
      EXPECT_GT(set.runs[i].app_events, 0u);
    }
  }
}

TEST(RunnerTest, FindLocatesPolicy) {
  auto experiment = RunExperiment(TinySpec());
  ASSERT_TRUE(experiment.ok());
  EXPECT_NE(experiment->Find(PolicyKind::kRandom), nullptr);
  EXPECT_EQ(experiment->Find(PolicyKind::kUpdatedPointer), nullptr);
}

TEST(RunnerTest, SeedsSeeTheSameTraceAcrossPolicies) {
  auto experiment = RunExperiment(TinySpec());
  ASSERT_TRUE(experiment.ok());
  const PolicyRuns* a = experiment->Find(PolicyKind::kMostGarbage);
  const PolicyRuns* b = experiment->Find(PolicyKind::kNoCollection);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (size_t i = 0; i < a->runs.size(); ++i) {
    EXPECT_EQ(a->runs[i].app_events, b->runs[i].app_events);
    EXPECT_EQ(a->runs[i].bytes_allocated, b->runs[i].bytes_allocated);
  }
}

TEST(RunnerTest, SingleThreadMatchesParallel) {
  ExperimentSpec serial = TinySpec();
  serial.threads = 1;
  ExperimentSpec parallel = TinySpec();
  parallel.threads = 4;
  auto a = RunExperiment(serial);
  auto b = RunExperiment(parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t s = 0; s < a->sets.size(); ++s) {
    for (size_t r = 0; r < a->sets[s].runs.size(); ++r) {
      EXPECT_EQ(a->sets[s].runs[r].app_io, b->sets[s].runs[r].app_io);
      EXPECT_EQ(a->sets[s].runs[r].max_storage_bytes,
                b->sets[s].runs[r].max_storage_bytes);
    }
  }
}

TEST(RunnerTest, InvalidWorkloadSurfacesError) {
  ExperimentSpec spec = TinySpec();
  spec.base.workload.total_alloc_bytes = 1;  // < live target: invalid.
  auto experiment = RunExperiment(spec);
  EXPECT_FALSE(experiment.ok());
  EXPECT_EQ(experiment.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace odbgc
