// End-to-end property of the trace layer: generating a workload straight
// into a simulator and generating it into a trace file, then replaying
// the file, must produce bit-identical simulations — the foundation of
// "capture once, evaluate every policy on the identical event stream".

#include <sstream>

#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/simulator.h"
#include "trace/trace_reader.h"
#include "trace/trace_writer.h"
#include "workload/generator.h"
#include "workload/oo1_generator.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(PolicyKind policy, uint64_t seed) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.policy = policy;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 220ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

void ExpectIdentical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
}

class TraceReplayEquivalenceTest
    : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(TraceReplayEquivalenceTest, FileReplayMatchesLiveGeneration) {
  const SimulationConfig config = TinyConfig(GetParam(), 5);

  // Live: generator feeds the simulator directly.
  Simulator live(config);
  ASSERT_TRUE(live.Run().ok());

  // Captured: generator -> binary trace -> reader -> simulator.
  std::stringstream stream;
  {
    TraceWriter writer(&stream);
    WorkloadGenerator generator(config.workload, config.seed);
    ASSERT_TRUE(generator.Generate(&writer).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  Simulator replayed(config);
  TraceReader reader(&stream);
  ASSERT_TRUE(reader.ReplayInto(&replayed).ok());

  ExpectIdentical(live.Finish(), replayed.Finish());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, TraceReplayEquivalenceTest,
    ::testing::Values(PolicyKind::kUpdatedPointer, PolicyKind::kMostGarbage,
                      PolicyKind::kNoCollection, PolicyKind::kRandom),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      return PolicyName(info.param);
    });

TEST(TraceReplayEquivalenceTest, OO1WorkloadRoundtripsToo) {
  SimulationConfig config = TinyConfig(PolicyKind::kUpdatedPointer, 9);
  config.heap.overwrite_trigger = 60;
  OO1Config workload;
  workload.target_live_bytes = 64ull << 10;
  workload.total_alloc_bytes = 150ull << 10;
  workload.lookup_count = 15;
  workload.traversal_depth = 4;

  Simulator live(config);
  {
    OO1Generator generator(workload, config.seed);
    ASSERT_TRUE(generator.Generate(&live).ok());
  }

  std::stringstream stream;
  {
    TraceWriter writer(&stream);
    OO1Generator generator(workload, config.seed);
    ASSERT_TRUE(generator.Generate(&writer).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  Simulator replayed(config);
  TraceReader reader(&stream);
  ASSERT_TRUE(reader.ReplayInto(&replayed).ok());

  ExpectIdentical(live.Finish(), replayed.Finish());
}

}  // namespace
}  // namespace odbgc
