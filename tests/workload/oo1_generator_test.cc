#include "workload/oo1_generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace odbgc {
namespace {

OO1Config TinyOO1() {
  OO1Config config;
  config.target_live_bytes = 64ull << 10;
  config.total_alloc_bytes = 140ull << 10;
  config.lookup_count = 10;
  config.traversal_depth = 4;
  config.inserts_per_round = 10;
  config.deletes_per_round = 10;
  return config;
}

TEST(OO1ConfigTest, ValidatesDefaults) {
  EXPECT_TRUE(OO1Config().Validate().ok());
  EXPECT_TRUE(TinyOO1().Validate().ok());
}

TEST(OO1ConfigTest, RejectsNonsense) {
  OO1Config config = TinyOO1();
  config.part_size = 30;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyOO1();
  config.total_alloc_bytes = config.target_live_bytes - 1;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyOO1();
  config.locality_prob = 2.0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyOO1();
  config.traversal_depth = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TinyOO1();
  config.connections_per_part = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(OO1GeneratorTest, DeterministicPerSeed) {
  VectorTraceSink a, b;
  OO1Generator ga(TinyOO1(), 42);
  OO1Generator gb(TinyOO1(), 42);
  ASSERT_TRUE(ga.Generate(&a).ok());
  ASSERT_TRUE(gb.Generate(&b).ok());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    ASSERT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(OO1GeneratorTest, RespectsBudget) {
  OO1Generator generator(TinyOO1(), 7);
  VectorTraceSink sink;
  ASSERT_TRUE(generator.Generate(&sink).ok());
  EXPECT_TRUE(generator.Done());
  EXPECT_GE(generator.total_allocated_bytes(),
            TinyOO1().total_alloc_bytes);
}

TEST(OO1GeneratorTest, TraceIsWellFormed) {
  VectorTraceSink sink;
  OO1Generator generator(TinyOO1(), 3);
  ASSERT_TRUE(generator.Generate(&sink).ok());

  std::map<uint64_t, uint32_t> slots_of;
  std::set<std::pair<uint64_t, uint32_t>> set_slots;
  size_t overwrites = 0;
  for (const TraceEvent& event : sink.events()) {
    switch (event.kind) {
      case EventKind::kAlloc:
        ASSERT_EQ(slots_of.count(event.object), 0u);
        slots_of[event.object] = event.num_slots;
        break;
      case EventKind::kWriteSlot:
        ASSERT_TRUE(slots_of.count(event.object));
        ASSERT_LT(event.slot, slots_of[event.object]);
        if (event.target != 0) {
          ASSERT_TRUE(slots_of.count(event.target));
          set_slots.insert({event.object, event.slot});
        } else {
          ASSERT_TRUE(set_slots.count({event.object, event.slot}));
          set_slots.erase({event.object, event.slot});
          ++overwrites;
        }
        break;
      case EventKind::kReadSlot:
        ASSERT_TRUE(slots_of.count(event.object));
        ASSERT_LT(event.slot, slots_of[event.object]);
        break;
      default:
        ASSERT_TRUE(slots_of.count(event.object));
        break;
    }
  }
  EXPECT_GT(overwrites, 50u) << "deletes must clear pointers";
}

TEST(OO1GeneratorTest, WithoutIncomingClearsAlmostNoOverwrites) {
  OO1Config config = TinyOO1();
  config.clear_incoming_on_delete = false;
  VectorTraceSink sink;
  OO1Generator generator(config, 5);
  ASSERT_TRUE(generator.Generate(&sink).ok());
  TraceStatsCollector stats;
  for (const auto& event : sink.events()) {
    ASSERT_TRUE(stats.Append(event).ok());
  }
  // Only index-slot clears remain (one per delete).
  OO1Generator with(TinyOO1(), 5);
  TraceStatsCollector with_stats;
  ASSERT_TRUE(with.Generate(&with_stats).ok());
  EXPECT_LT(stats.Finish().pointer_overwrites,
            with_stats.Finish().pointer_overwrites);
}

TEST(OO1GeneratorTest, WorkloadShape) {
  OO1Generator generator(TinyOO1(), 11);
  TraceStatsCollector stats;
  ASSERT_TRUE(generator.Generate(&stats).ok());
  const auto& s = stats.Finish();
  // The tiny test config is build-dominated; transaction reads must still
  // be plentiful (full-size configs are read-dominated overall).
  EXPECT_GT(s.slot_reads, 1000u);
  EXPECT_GT(s.visits, 0u);
  // Parts carry up to 3 connections plus an index reference.
  EXPECT_GT(s.Connectivity(), 0.5);
  EXPECT_LT(s.Connectivity(), 4.0);
  EXPECT_GT(generator.live_part_count(), 100u);
}

TEST(OO1GeneratorTest, LivePartCountStaysNearTarget) {
  const OO1Config config = TinyOO1();
  OO1Generator generator(config, 13);
  VectorTraceSink sink;
  ASSERT_TRUE(generator.Generate(&sink).ok());
  const size_t target_parts =
      config.target_live_bytes / config.part_size;
  EXPECT_GT(generator.live_part_count(), target_parts / 2);
  EXPECT_LT(generator.live_part_count(), target_parts * 2);
}

}  // namespace
}  // namespace odbgc
