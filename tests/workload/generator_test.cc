#include "workload/generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/trace_stats.h"

namespace odbgc {
namespace {

WorkloadConfig TinyWorkload() {
  WorkloadConfig config;
  config.target_live_bytes = 64ull << 10;
  config.total_alloc_bytes = 160ull << 10;
  config.tree_nodes_min = 50;
  config.tree_nodes_max = 150;
  config.large_object_size = 4096;
  return config;
}

TEST(WorkloadConfigTest, ValidatesDefaults) {
  EXPECT_TRUE(WorkloadConfig().Validate().ok());
  EXPECT_TRUE(TinyWorkload().Validate().ok());
}

TEST(WorkloadConfigTest, RejectsNonsense) {
  WorkloadConfig config = TinyWorkload();
  config.total_alloc_bytes = config.target_live_bytes - 1;
  EXPECT_FALSE(config.Validate().ok());

  config = TinyWorkload();
  config.min_object_size = 200;
  config.max_object_size = 100;
  EXPECT_FALSE(config.Validate().ok());

  config = TinyWorkload();
  config.min_object_size = 30;  // Below header + 3 slots.
  EXPECT_FALSE(config.Validate().ok());

  config = TinyWorkload();
  config.slots_per_object = 1;
  EXPECT_FALSE(config.Validate().ok());

  config = TinyWorkload();
  config.dense_edge_prob = 1.5;
  EXPECT_FALSE(config.Validate().ok());

  config = TinyWorkload();
  config.p_breadth_first = 0.9;
  config.p_depth_first = 0.3;
  EXPECT_FALSE(config.Validate().ok());

  config = TinyWorkload();
  config.dense_window = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(WorkloadConfigTest, ConnectivityHelper) {
  const WorkloadConfig config = TinyWorkload().WithConnectivity(1.167);
  EXPECT_NEAR(config.dense_edge_prob, 0.167, 1e-12);
  EXPECT_DOUBLE_EQ(TinyWorkload().WithConnectivity(0.9).dense_edge_prob, 0.0);
}

TEST(WorkloadConfigTest, TotalAllocationHelperScalesLiveTarget) {
  const WorkloadConfig base = TinyWorkload();
  const WorkloadConfig doubled =
      base.WithTotalAllocation(base.total_alloc_bytes * 2);
  EXPECT_EQ(doubled.total_alloc_bytes, base.total_alloc_bytes * 2);
  EXPECT_EQ(doubled.target_live_bytes, base.target_live_bytes * 2);
}

TEST(WorkloadConfigTest, LargeObjectProbabilityMatchesSpaceFraction) {
  WorkloadConfig config;
  const double f = config.LargeObjectProbability();
  const double a = config.MeanSmallObjectSize();
  const double l = config.large_object_size;
  const double space_fraction = f * l / (f * l + (1 - f) * a);
  EXPECT_NEAR(space_fraction, config.large_space_fraction, 1e-9);
}

TEST(GeneratorTest, DeterministicPerSeed) {
  VectorTraceSink a, b;
  WorkloadGenerator ga(TinyWorkload(), 42);
  WorkloadGenerator gb(TinyWorkload(), 42);
  ASSERT_TRUE(ga.Generate(&a).ok());
  ASSERT_TRUE(gb.Generate(&b).ok());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    ASSERT_EQ(a.events()[i], b.events()[i]) << "diverged at event " << i;
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  VectorTraceSink a, b;
  WorkloadGenerator ga(TinyWorkload(), 1);
  WorkloadGenerator gb(TinyWorkload(), 2);
  ASSERT_TRUE(ga.Generate(&a).ok());
  ASSERT_TRUE(gb.Generate(&b).ok());
  bool differ = a.events().size() != b.events().size();
  for (size_t i = 0; !differ && i < a.events().size(); ++i) {
    differ = !(a.events()[i] == b.events()[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(GeneratorTest, RespectsAllocationBudget) {
  const WorkloadConfig config = TinyWorkload();
  WorkloadGenerator generator(config, 7);
  VectorTraceSink sink;
  ASSERT_TRUE(generator.Generate(&sink).ok());
  EXPECT_TRUE(generator.Done());
  EXPECT_GE(generator.total_allocated_bytes(), config.total_alloc_bytes);
  // Overshoot bounded by one round's worth of growth.
  EXPECT_LT(generator.total_allocated_bytes(),
            config.total_alloc_bytes + (64ull << 10));
}

TEST(GeneratorTest, LiveSizeNearTarget) {
  const WorkloadConfig config = TinyWorkload();
  WorkloadGenerator generator(config, 11);
  VectorTraceSink sink;
  ASSERT_TRUE(generator.Generate(&sink).ok());
  EXPECT_GT(generator.logical_live_bytes(), config.target_live_bytes / 2);
  EXPECT_LT(generator.logical_live_bytes(), config.target_live_bytes * 2);
}

TEST(GeneratorTest, TraceIsWellFormed) {
  // Every referenced object was allocated earlier; slots are in range;
  // every WriteSlot(0) clears a previously set slot.
  VectorTraceSink sink;
  WorkloadGenerator generator(TinyWorkload(), 3);
  ASSERT_TRUE(generator.Generate(&sink).ok());

  std::map<uint64_t, uint32_t> slots_of;
  std::set<std::pair<uint64_t, uint32_t>> set_slots;
  for (const TraceEvent& event : sink.events()) {
    switch (event.kind) {
      case EventKind::kAlloc:
        ASSERT_EQ(slots_of.count(event.object), 0u) << "duplicate alloc";
        slots_of[event.object] = event.num_slots;
        ASSERT_GE(event.size, 20 + 8 * event.num_slots);
        break;
      case EventKind::kWriteSlot: {
        ASSERT_TRUE(slots_of.count(event.object)) << "write before alloc";
        ASSERT_LT(event.slot, slots_of[event.object]);
        if (event.target != 0) {
          ASSERT_TRUE(slots_of.count(event.target)) << "dangling target";
          set_slots.insert({event.object, event.slot});
        } else {
          ASSERT_TRUE(set_slots.count({event.object, event.slot}))
              << "cleared a slot that was never set";
        }
        break;
      }
      case EventKind::kReadSlot:
        ASSERT_TRUE(slots_of.count(event.object));
        ASSERT_LT(event.slot, slots_of[event.object]);
        break;
      default:
        ASSERT_TRUE(slots_of.count(event.object));
        break;
    }
  }
}

TEST(GeneratorTest, WorkloadCharacteristicsMatchPaper) {
  // Full-size generation is fast enough to check the Section 5 shape
  // directly: sizes, large-object fraction, connectivity, read/write mix.
  WorkloadConfig config;  // Paper defaults: 5 MB live, 11 MB allocated.
  WorkloadGenerator generator(config, 5);
  TraceStatsCollector stats;
  ASSERT_TRUE(generator.Generate(&stats).ok());
  const auto& s = stats.Finish();

  EXPECT_NEAR(s.MeanSmallObjectSize(), 100.0, 3.0);
  EXPECT_NEAR(s.LargeSpaceFraction(), 0.20, 0.07);
  // The trace-level metric counts end-of-run edges over all allocations,
  // so edge deletions pull it a few percent under the nominal 1.083.
  EXPECT_NEAR(s.Connectivity(), 1.083, 0.08);
  EXPECT_GT(s.Connectivity(), 1.0);
  EXPECT_GT(s.EdgeReadWriteRatio(), 8.0);
  EXPECT_LT(s.EdgeReadWriteRatio(), 40.0);
  EXPECT_GT(s.pointer_overwrites, 2000u);
  EXPECT_GT(s.events, 1'000'000u);
}

TEST(GeneratorTest, ConnectivityKnobMovesMeasuredConnectivity) {
  auto measure = [](double c) {
    WorkloadConfig config = TinyWorkload().WithConnectivity(c);
    WorkloadGenerator generator(config, 9);
    TraceStatsCollector stats;
    EXPECT_TRUE(generator.Generate(&stats).ok());
    return stats.Finish().Connectivity();
  };
  const double low = measure(1.005);
  const double high = measure(1.167);
  // The tiny test workload deletes a larger fraction of its edges than
  // the paper-size one, shifting both absolute values down; the knob must
  // still move measured connectivity by roughly the configured delta.
  EXPECT_GT(high, low + 0.08);
  EXPECT_NEAR(high - low, 0.162, 0.08);
}

TEST(GeneratorTest, IncrementalApiMatchesGenerate) {
  VectorTraceSink whole, stepped;
  WorkloadGenerator a(TinyWorkload(), 13);
  ASSERT_TRUE(a.Generate(&whole).ok());

  WorkloadGenerator b(TinyWorkload(), 13);
  ASSERT_TRUE(b.BuildInitialDatabase(&stepped).ok());
  while (!b.Done()) {
    ASSERT_TRUE(b.RunRound(&stepped).ok());
  }
  ASSERT_EQ(whole.events().size(), stepped.events().size());
}

}  // namespace
}  // namespace odbgc
