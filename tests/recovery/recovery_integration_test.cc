#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "recovery/recover.h"
#include "sim/config.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "storage/disk.h"
#include "util/time_series.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(uint64_t seed = 1) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.snapshot_interval = 2000;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "odbgc_recovery_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectSameSeries(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.points().size(), b.points().size());
  for (size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << "point " << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << "point " << i;
  }
}

/// Full-field equality: a resumed run must be indistinguishable from an
/// uninterrupted one, down to component stats and time-series samples.
void ExpectSameResult(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  ExpectSameSeries(a.unreclaimed_garbage_kb, b.unreclaimed_garbage_kb);
  ExpectSameSeries(a.database_size_kb, b.database_size_kb);
  EXPECT_EQ(a.heap_stats.pointer_stores, b.heap_stats.pointer_stores);
  EXPECT_EQ(a.heap_stats.objects_allocated, b.heap_stats.objects_allocated);
  EXPECT_EQ(a.heap_stats.full_collections, b.heap_stats.full_collections);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
  EXPECT_EQ(a.buffer_stats.reads_app, b.buffer_stats.reads_app);
  EXPECT_EQ(a.buffer_stats.reads_gc, b.buffer_stats.reads_gc);
  EXPECT_EQ(a.buffer_stats.writes_app, b.buffer_stats.writes_app);
  EXPECT_EQ(a.buffer_stats.writes_gc, b.buffer_stats.writes_gc);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
}

SimulationResult PlainRun(SimulationConfig config) {
  config.wal_dir.clear();
  Simulator simulator(config);
  EXPECT_TRUE(simulator.Run().ok());
  return simulator.Finish();
}

TEST(RecoveryIntegrationTest, DurableRunMatchesPlainRun) {
  SimulationConfig config = TinyConfig();
  config.wal_dir = FreshDir("durable_vs_plain");
  config.checkpoint_every_rounds = 25;

  auto durable = RunDurableSimulation(config);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  ExpectSameResult(*durable, PlainRun(config));
}

TEST(RecoveryIntegrationTest, WarmStartDurableRunMatchesPlainRun) {
  SimulationConfig config = TinyConfig();
  config.warm_start = true;
  config.wal_dir = FreshDir("warm_durable");
  config.checkpoint_every_rounds = 25;

  auto durable = RunDurableSimulation(config);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  ExpectSameResult(*durable, PlainRun(config));
}

TEST(RecoveryIntegrationTest, OpenRequiresWalDir) {
  EXPECT_EQ(DurableSimulation::Open(TinyConfig()).status().code(),
            StatusCode::kInvalidArgument);
}

// The acceptance scenario: a run killed mid-flight by an injected I/O
// fault resumes from its latest checkpoint and finishes with the exact
// result of an uninterrupted run — swept over several kill points so both
// early (pre-first-checkpoint) and late kills are covered.
TEST(RecoveryIntegrationTest, KilledRunResumesToIdenticalResult) {
  SimulationConfig config = TinyConfig(3);
  const SimulationResult reference = PlainRun(config);
  config.checkpoint_every_rounds = 20;

  // Kill points span the run: during the build, mid-run, and late enough
  // that checkpoints exist. (A durable run does the same simulated disk
  // writes as a plain one — the WAL lives on the host filesystem.)
  const uint64_t total_writes = reference.disk_stats.page_writes;
  ASSERT_GT(total_writes, 100u);
  const uint64_t late_kill = total_writes * 9 / 10;
  for (uint64_t kill_after_writes :
       {total_writes / 20 + 1, total_writes / 2, late_kill}) {
    config.wal_dir =
        FreshDir("kill_" + std::to_string(kill_after_writes));

    // First attempt: arm the fault, expect the run to die with IoError.
    {
      auto engine = DurableSimulation::Open(config);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      FaultPlan plan;
      plan.fail_after_writes = kill_after_writes;
      (*engine)->simulator().heap().mutable_disk().InjectFaults(plan);
      const Status died = (*engine)->Run();
      ASSERT_FALSE(died.ok()) << "kill point " << kill_after_writes
                              << " beyond the end of the run";
      EXPECT_EQ(died.code(), StatusCode::kIoError);
      EXPECT_EQ(
          (*engine)->simulator().heap().mutable_disk().faults_fired(), 1u);
      // The engine is abandoned here, exactly like a crashed process:
      // no checkpoint, no clean shutdown.
    }

    // Second attempt: plain reopen recovers and completes.
    auto engine = DurableSimulation::Open(config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Run().ok());
    ExpectSameResult((*engine)->Finish(), reference);

    const DurableRunStats& stats = (*engine)->run_stats();
    // The late kill lands after the first checkpoint: the resume must
    // start from a snapshot, not rebuild from scratch.
    if (kill_after_writes == late_kill) {
      EXPECT_TRUE(stats.resumed);
      EXPECT_GT(stats.resumed_from_round, 0u);
    }
  }
}

TEST(RecoveryIntegrationTest, ReplayAloneRecoversWithoutCheckpoints) {
  SimulationConfig config = TinyConfig(5);
  const SimulationResult reference = PlainRun(config);
  config.wal_dir = FreshDir("replay_only");
  config.checkpoint_every_rounds = 0;  // WAL only, no snapshots.

  {
    auto engine = DurableSimulation::Open(config);
    ASSERT_TRUE(engine.ok());
    FaultPlan plan;
    plan.fail_after_writes = reference.disk_stats.page_writes / 2;
    (*engine)->simulator().heap().mutable_disk().InjectFaults(plan);
    ASSERT_FALSE((*engine)->Run().ok());
  }

  auto engine = DurableSimulation::Open(config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE((*engine)->run_stats().resumed);
  EXPECT_GT((*engine)->run_stats().events_replayed, 0u);
  ASSERT_TRUE((*engine)->Run().ok());
  ExpectSameResult((*engine)->Finish(), reference);
}

TEST(RecoveryIntegrationTest, ReopenAfterCompletionReplaysToSameResult) {
  SimulationConfig config = TinyConfig(7);
  config.wal_dir = FreshDir("reopen_done");
  config.checkpoint_every_rounds = 30;

  auto first = RunDurableSimulation(config);
  ASSERT_TRUE(first.ok());
  // Everything is on disk; a second invocation replays/restores its way
  // back to the same final state without re-running the workload's
  // uncommitted portion (there is none).
  auto second = RunDurableSimulation(config);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectSameResult(*second, *first);
}

TEST(RecoveryIntegrationTest, DurableExperimentMatchesPlainExperiment) {
  ExperimentSpec spec;
  spec.base = TinyConfig();
  spec.policies = {"UpdatedPointer", "Random"};
  spec.num_seeds = 2;
  spec.threads = 2;

  auto plain = RunExperiment(spec);
  ASSERT_TRUE(plain.ok());

  spec.base.wal_dir = FreshDir("experiment");
  spec.base.checkpoint_every_rounds = 40;
  auto durable = RunExperimentDurable(spec);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  ASSERT_EQ(durable->sets.size(), plain->sets.size());
  for (size_t s = 0; s < plain->sets.size(); ++s) {
    ASSERT_EQ(durable->sets[s].runs.size(), plain->sets[s].runs.size());
    for (size_t r = 0; r < plain->sets[s].runs.size(); ++r) {
      ExpectSameResult(durable->sets[s].runs[r], plain->sets[s].runs[r]);
    }
  }
  // Each run got its own durability directory.
  EXPECT_TRUE(std::filesystem::exists(spec.base.wal_dir +
                                      "/UpdatedPointer-s1"));
}

TEST(RecoveryIntegrationTest, FaultInjectionScriptedAndProbabilistic) {
  SimulationConfig config = TinyConfig();
  Simulator simulator(config);
  PageDevice& disk = simulator.heap().mutable_disk();

  FaultPlan plan;
  plan.fail_after_writes = 1;
  disk.InjectFaults(plan);
  const Status died = simulator.Run();
  ASSERT_FALSE(died.ok());
  EXPECT_EQ(died.code(), StatusCode::kIoError);
  EXPECT_EQ(disk.faults_fired(), 1u);

  // Probabilistic: p=1 fails the first transfer.
  Simulator other(config);
  FaultPlan always;
  always.error_prob = 1.0;
  other.heap().mutable_disk().InjectFaults(always);
  const Status always_died = other.Run();
  ASSERT_FALSE(always_died.ok());
  EXPECT_EQ(always_died.code(), StatusCode::kIoError);

  // Clearing disarms: a fresh run under the same heap config completes.
  Simulator cleared(config);
  cleared.heap().mutable_disk().InjectFaults(always);
  cleared.heap().mutable_disk().ClearFaults();
  EXPECT_TRUE(cleared.Run().ok());
}

}  // namespace
}  // namespace odbgc
