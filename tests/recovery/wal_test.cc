#include "recovery/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/event.h"

namespace odbgc {
namespace {

std::string TestPath(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "odbgc_wal_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<WalRecord> SampleRecords() {
  return {
      WalRecord::Event(TraceEvent::Alloc(1, 100, 3, 0, 0)),
      WalRecord::Event(TraceEvent::WriteSlot(1, 0, 2)),
      WalRecord::Event(TraceEvent::ReadSlot(1, 1)),
      WalRecord::Event(TraceEvent::Visit(2)),
      WalRecord::Event(TraceEvent::AddRoot(1)),
      WalRecord::Collection(0, 7),
      WalRecord::Collection(1, kInvalidPartition),
      WalRecord::RoundCommit(3, 1234, 2, 99),
  };
}

void WriteSample(const std::string& path,
                 const std::vector<WalRecord>& records) {
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const auto& record : records) {
    ASSERT_TRUE(writer->Append(record).ok());
  }
  ASSERT_TRUE(writer->Sync().ok());
}

void ExpectSameRecord(const WalRecord& a, const WalRecord& b) {
  ASSERT_EQ(a.type, b.type);
  switch (a.type) {
    case WalRecordType::kEvent:
      EXPECT_TRUE(a.event == b.event)
          << a.event.ToString() << " vs " << b.event.ToString();
      break;
    case WalRecordType::kRoundCommit:
      EXPECT_EQ(a.round, b.round);
      EXPECT_EQ(a.events_applied, b.events_applied);
      EXPECT_EQ(a.collections, b.collections);
      EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
      break;
    case WalRecordType::kCollection:
      EXPECT_EQ(a.decision_index, b.decision_index);
      EXPECT_EQ(a.victim, b.victim);
      break;
  }
}

TEST(WalTest, RoundTripAllRecordTypes) {
  const std::string path = TestPath("roundtrip.odbl");
  const auto records = SampleRecords();
  WriteSample(path, records);

  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectSameRecord(contents->records[i], records[i]);
  }
  // Offsets are strictly increasing, starting past the 8-byte header.
  EXPECT_EQ(contents->header_end_offset, 8u);
  uint64_t prev = contents->header_end_offset;
  for (uint64_t offset : contents->record_end_offsets) {
    EXPECT_GT(offset, prev);
    prev = offset;
  }
  EXPECT_EQ(prev, std::filesystem::file_size(path));
}

TEST(WalTest, EmptySegmentIsValid) {
  const std::string path = TestPath("empty.odbl");
  WriteSample(path, {});
  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
}

TEST(WalTest, OpenForAppendContinuesSegment) {
  const std::string path = TestPath("append.odbl");
  WriteSample(path, {WalRecord::RoundCommit(1, 10, 0, 5)});
  {
    auto writer = WalWriter::OpenForAppend(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(WalRecord::RoundCommit(2, 20, 1, 9)).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[1].round, 2u);
}

TEST(WalTest, TornTailIsTruncatedByRecover) {
  const std::string path = TestPath("torn.odbl");
  const auto records = SampleRecords();
  WriteSample(path, records);
  const uint64_t clean_size = std::filesystem::file_size(path);

  // Simulate a crash mid-append: half a record's framing.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x05\x00\x00", 3);
  }
  ASSERT_GT(std::filesystem::file_size(path), clean_size);

  // Strict read refuses.
  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);

  // Recovery keeps the records and truncates the tail in place.
  auto recovered = RecoverWal(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->records.size(), records.size());
  EXPECT_EQ(std::filesystem::file_size(path), clean_size);
  // After truncation the segment is strictly valid again.
  EXPECT_TRUE(ReadWal(path).ok());
}

TEST(WalTest, CorruptPayloadDetectedByCrc) {
  const std::string path = TestPath("crc.odbl");
  const auto records = SampleRecords();
  WriteSample(path, records);

  // Flip one byte inside the last record's payload.
  const uint64_t size = std::filesystem::file_size(path);
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(size - 1));
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x40;
    file.seekp(static_cast<std::streamoff>(size - 1));
    file.write(&byte, 1);
  }

  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
  auto recovered = RecoverWal(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), records.size() - 1);
  EXPECT_LT(std::filesystem::file_size(path), size);
}

TEST(WalTest, BadMagicRejectedEvenByRecover) {
  const std::string path = TestPath("magic.odbl");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("NOPE\x01\x00\x00\x00", 8);
  }
  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(RecoverWal(path).status().code(), StatusCode::kCorruption);
}

TEST(WalTest, TruncatedHeaderRejected) {
  const std::string path = TestPath("header.odbl");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("OD", 2);
  }
  EXPECT_EQ(ReadWal(path).status().code(), StatusCode::kCorruption);
  EXPECT_EQ(RecoverWal(path).status().code(), StatusCode::kCorruption);
}

TEST(WalTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadWal(TestPath("missing.odbl")).status().code(),
            StatusCode::kIoError);
}

TEST(WalTest, EveryTruncationPointFailsCleanly) {
  const std::string path = TestPath("truncsweep.odbl");
  WriteSample(path, SampleRecords());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::string trunc_path = TestPath("truncsweep_cut.odbl");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    {
      std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    auto strict = ReadWal(trunc_path);
    if (strict.ok()) {
      // Only clean record boundaries parse strictly.
      EXPECT_TRUE(strict->record_end_offsets.empty()
                      ? cut == 8
                      : strict->record_end_offsets.back() == cut);
    } else {
      EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
    }
    // Lenient recovery never fails on a truncated tail (header permitting).
    if (cut >= 8) {
      EXPECT_TRUE(RecoverWal(trunc_path).ok()) << "cut=" << cut;
    }
  }
}

}  // namespace
}  // namespace odbgc
