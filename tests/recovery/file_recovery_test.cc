// Crash consistency on the real-file backend: a run killed by an injected
// write fault that physically damages the partition file (short write /
// torn page, the lies real media tell on power cut) must resume through
// the recovery engine to a SimulationResult bit-identical to an
// uninterrupted run's.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "recovery/recover.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "storage/file_device.h"
#include "util/time_series.h"

namespace odbgc {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "odbgc_file_recovery/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SimulationConfig TinyConfig(uint64_t seed) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.snapshot_interval = 2000;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

void ExpectSameResult(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  EXPECT_EQ(a.estimated_device_time_ms, b.estimated_device_time_ms);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
}

SimulationResult PlainRun(SimulationConfig config) {
  config.wal_dir.clear();
  Simulator simulator(config);
  EXPECT_TRUE(simulator.Run().ok());
  return simulator.Finish();
}

void RunCrashRecoveryCase(WriteFaultStyle style, const char* label) {
  SCOPED_TRACE(label);
  const std::string dir = FreshDir(label);

  SimulationConfig config = TinyConfig(/*seed=*/3);
  config.heap.policy_name = "UpdatedPointer";
  config.heap.device_spec = "file:" + dir + "/reference.odb";
  const SimulationResult reference = PlainRun(config);
  ASSERT_GT(reference.disk_stats.page_writes, 100u);

  const std::string crash_file = dir + "/crash.odb";
  config.heap.device_spec = "file:" + crash_file;
  config.wal_dir = dir + "/wal";
  config.checkpoint_every_rounds = 20;

  // First attempt: the Nth physical write is interrupted mid-frame and the
  // process "dies" (the engine is abandoned without a clean shutdown).
  {
    auto engine = DurableSimulation::Open(config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    FaultPlan plan;
    plan.fail_after_writes = reference.disk_stats.page_writes / 2;
    plan.write_fault_style = style;
    (*engine)->simulator().heap().mutable_disk().InjectFaults(plan);
    const Status died = (*engine)->Run();
    ASSERT_FALSE(died.ok());
    EXPECT_EQ(died.code(), StatusCode::kIoError);
    EXPECT_EQ((*engine)->simulator().heap().mutable_disk().faults_fired(),
              1u);
  }

  // The crashed partition file is really damaged: a torn page leaves its
  // 0xDB garbage run in the payload half of some frame.
  if (style == WriteFaultStyle::kTornPage) {
    std::ifstream in(crash_file, std::ios::binary);
    ASSERT_TRUE(in.good());
    const std::string bytes((std::istreambuf_iterator<char>(in)), {});
    EXPECT_NE(bytes.find(std::string(256, static_cast<char>(0xDB))),
              std::string::npos);
  }

  // Second attempt: reopen recovers (checkpoint + WAL replay rebuild the
  // store into a fresh truncated file) and finishes with the reference
  // result, bit for bit.
  auto engine = DurableSimulation::Open(config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->Run().ok());
  SimulationResult recovered = (*engine)->Finish();
  EXPECT_EQ(recovered.device, DeviceKind::kFile);
  ExpectSameResult(recovered, reference);
  EXPECT_TRUE(recovered.measured.measured);

  std::filesystem::remove_all(dir);
}

TEST(FileRecoveryTest, ShortWriteCrashResumesToIdenticalResult) {
  RunCrashRecoveryCase(WriteFaultStyle::kShortWrite, "short_write");
}

TEST(FileRecoveryTest, TornPageCrashResumesToIdenticalResult) {
  RunCrashRecoveryCase(WriteFaultStyle::kTornPage, "torn_page");
}

}  // namespace
}  // namespace odbgc
