#include "recovery/checkpoint_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/config.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(uint64_t seed = 1) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "odbgc_ckpt_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A simulation paused mid-run, ready to snapshot.
struct PartialRun {
  std::unique_ptr<Simulator> simulator;
  std::unique_ptr<WorkloadGenerator> generator;
};

PartialRun RunPartway(const SimulationConfig& config, int rounds) {
  PartialRun run;
  run.simulator = std::make_unique<Simulator>(config);
  run.generator =
      std::make_unique<WorkloadGenerator>(config.workload, config.seed);
  EXPECT_TRUE(run.generator->BuildInitialDatabase(run.simulator.get()).ok());
  for (int i = 0; i < rounds && !run.generator->Done(); ++i) {
    EXPECT_TRUE(run.generator->RunRound(run.simulator.get()).ok());
  }
  return run;
}

std::string CheckpointBytes(const Simulator& simulator,
                            const WorkloadGenerator& generator) {
  std::ostringstream out;
  EXPECT_TRUE(simulator.SaveCheckpointState(out).ok());
  generator.SaveState(out);
  return out.str();
}

TEST(CheckpointManagerTest, WriteThenLoadRestoresIdenticalState) {
  const SimulationConfig config = TinyConfig();
  CheckpointManager manager(FreshDir("roundtrip"));
  ASSERT_TRUE(manager.Init().ok());

  PartialRun original = RunPartway(config, 40);
  const uint64_t round = original.generator->rounds_run();
  ASSERT_TRUE(
      manager.WriteSnapshot(round, *original.simulator, *original.generator)
          .ok());

  auto loaded = manager.LoadSnapshot(round, config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->round, round);

  // The restored pair re-serializes to the exact bytes of the original —
  // the strongest statement that nothing was lost or perturbed.
  EXPECT_EQ(CheckpointBytes(*loaded->simulator, *loaded->generator),
            CheckpointBytes(*original.simulator, *original.generator));

  // And both continue identically.
  for (int i = 0; i < 20 && !original.generator->Done(); ++i) {
    ASSERT_TRUE(original.generator->RunRound(original.simulator.get()).ok());
    ASSERT_TRUE(loaded->generator->RunRound(loaded->simulator.get()).ok());
  }
  EXPECT_EQ(CheckpointBytes(*loaded->simulator, *loaded->generator),
            CheckpointBytes(*original.simulator, *original.generator));
}

TEST(CheckpointManagerTest, ListSnapshotsSortsByRound) {
  const SimulationConfig config = TinyConfig();
  CheckpointManager manager(FreshDir("list"));
  ASSERT_TRUE(manager.Init().ok());
  PartialRun run = RunPartway(config, 5);
  for (uint64_t round : {30u, 5u, 100u}) {
    ASSERT_TRUE(
        manager.WriteSnapshot(round, *run.simulator, *run.generator).ok());
  }
  auto rounds = manager.ListSnapshots();
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, (std::vector<uint64_t>{5, 30, 100}));
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToOlder) {
  const SimulationConfig config = TinyConfig();
  CheckpointManager manager(FreshDir("fallback"));
  ASSERT_TRUE(manager.Init().ok());
  PartialRun run = RunPartway(config, 10);
  ASSERT_TRUE(manager.WriteSnapshot(10, *run.simulator, *run.generator).ok());
  ASSERT_TRUE(manager.WriteSnapshot(20, *run.simulator, *run.generator).ok());

  // Flip a payload byte in the newest snapshot: its CRC catches it.
  const std::string newest = manager.SnapshotPath(20);
  {
    std::fstream file(newest,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(200);
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x5a;
    file.seekp(200);
    file.write(&byte, 1);
  }
  EXPECT_EQ(manager.LoadSnapshot(20, config).status().code(),
            StatusCode::kCorruption);

  auto loaded = manager.LoadNewestValid(config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->round, 10u);
}

TEST(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointManager manager(FreshDir("none"));
  ASSERT_TRUE(manager.Init().ok());
  EXPECT_EQ(manager.LoadNewestValid(TinyConfig()).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointManagerTest, SeedAndPolicyMismatchRejected) {
  const SimulationConfig config = TinyConfig();
  CheckpointManager manager(FreshDir("mismatch"));
  ASSERT_TRUE(manager.Init().ok());
  PartialRun run = RunPartway(config, 10);
  ASSERT_TRUE(manager.WriteSnapshot(10, *run.simulator, *run.generator).ok());

  SimulationConfig other_seed = config;
  other_seed.seed = config.seed + 1;
  EXPECT_EQ(manager.LoadSnapshot(10, other_seed).status().code(),
            StatusCode::kCorruption);

  SimulationConfig other_policy = config;
  other_policy.heap.policy = PolicyKind::kRandom;
  EXPECT_EQ(manager.LoadSnapshot(10, other_policy).status().code(),
            StatusCode::kCorruption);
}

TEST(CheckpointManagerTest, TruncatedAndBadHeaderFilesNeverCrash) {
  const SimulationConfig config = TinyConfig();
  CheckpointManager manager(FreshDir("headers"));
  ASSERT_TRUE(manager.Init().ok());
  PartialRun run = RunPartway(config, 10);
  ASSERT_TRUE(manager.WriteSnapshot(7, *run.simulator, *run.generator).ok());

  std::string bytes;
  {
    std::ifstream in(manager.SnapshotPath(7), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Truncations at a sweep of prefixes: always a clean error.
  for (size_t cut : {0ul, 1ul, 4ul, 7ul, 8ul, 15ul, 16ul, 100ul,
                     bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(manager.SnapshotPath(7),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_EQ(manager.LoadSnapshot(7, config).status().code(),
              StatusCode::kCorruption)
        << "cut=" << cut;
  }
  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] ^= 0xff;
    std::ofstream out(manager.SnapshotPath(7),
                      std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_EQ(manager.LoadSnapshot(7, config).status().code(),
            StatusCode::kCorruption);
  // Bad version.
  {
    std::string bad = bytes;
    bad[4] ^= 0xff;
    std::ofstream out(manager.SnapshotPath(7),
                      std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_EQ(manager.LoadSnapshot(7, config).status().code(),
            StatusCode::kCorruption);
}

TEST(CheckpointManagerTest, GarbageCollectKeepsNewestTwoAndTheirWal) {
  const SimulationConfig config = TinyConfig();
  CheckpointManager manager(FreshDir("gc"), /*keep=*/2);
  ASSERT_TRUE(manager.Init().ok());
  PartialRun run = RunPartway(config, 5);
  for (uint64_t round : {10u, 20u, 30u, 40u}) {
    ASSERT_TRUE(
        manager.WriteSnapshot(round, *run.simulator, *run.generator).ok());
    std::ofstream(manager.WalPath(round), std::ios::binary) << "x";
  }
  std::ofstream(manager.WalPath(0), std::ios::binary) << "x";
  std::ofstream(manager.SnapshotPath(99) + ".tmp", std::ios::binary) << "x";

  ASSERT_TRUE(manager.GarbageCollect().ok());

  auto rounds = manager.ListSnapshots();
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, (std::vector<uint64_t>{30, 40}));
  EXPECT_FALSE(std::filesystem::exists(manager.WalPath(0)));
  EXPECT_FALSE(std::filesystem::exists(manager.WalPath(10)));
  EXPECT_FALSE(std::filesystem::exists(manager.WalPath(20)));
  EXPECT_TRUE(std::filesystem::exists(manager.WalPath(30)));
  EXPECT_TRUE(std::filesystem::exists(manager.WalPath(40)));
  EXPECT_FALSE(
      std::filesystem::exists(manager.SnapshotPath(99) + ".tmp"));
}

TEST(CheckpointManagerTest, GarbageCollectWithoutSnapshotsKeepsWalZero) {
  CheckpointManager manager(FreshDir("gc_empty"));
  ASSERT_TRUE(manager.Init().ok());
  std::ofstream(manager.WalPath(0), std::ios::binary) << "x";
  ASSERT_TRUE(manager.GarbageCollect().ok());
  EXPECT_TRUE(std::filesystem::exists(manager.WalPath(0)));
}

// Round-trip across the dense data-plane layout: one configuration per
// serde path that moved from node-based containers onto id-indexed
// arrays — the weight table and weighted policy sums (WeightedPointer),
// the per-partition hint counters (MutatedPartition), the extension
// policies' tables (LeastRecentlyCollected, CostBenefit), and the
// clock/2Q replacement state (intrusive frame lists). A snapshot written
// mid-run must restore to a state that re-serializes to the exact same
// bytes, and must continue to the same bytes afterwards — the layout
// change is invisible to the checkpoint format.
struct DenseLayoutParams {
  const char* name;
  const char* policy_name;
  // LoadSnapshot validates the checkpoint's resolved kind against the
  // config enum, so both identity surfaces must agree here.
  PolicyKind policy;
  ReplacementPolicyKind replacement;
};

class DenseLayoutRoundTrip
    : public ::testing::TestWithParam<DenseLayoutParams> {};

TEST_P(DenseLayoutRoundTrip, SnapshotRestoresBitIdentical) {
  SimulationConfig config = TinyConfig(11);
  config.heap.policy_name = GetParam().policy_name;
  config.heap.policy = GetParam().policy;
  config.heap.replacement = GetParam().replacement;
  CheckpointManager manager(FreshDir(std::string("dense_") +
                                     GetParam().name));
  ASSERT_TRUE(manager.Init().ok());

  PartialRun original = RunPartway(config, 40);
  const uint64_t round = original.generator->rounds_run();
  ASSERT_TRUE(
      manager.WriteSnapshot(round, *original.simulator, *original.generator)
          .ok());

  auto loaded = manager.LoadSnapshot(round, config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(CheckpointBytes(*loaded->simulator, *loaded->generator),
            CheckpointBytes(*original.simulator, *original.generator));

  for (int i = 0; i < 20 && !original.generator->Done(); ++i) {
    ASSERT_TRUE(original.generator->RunRound(original.simulator.get()).ok());
    ASSERT_TRUE(loaded->generator->RunRound(loaded->simulator.get()).ok());
  }
  EXPECT_EQ(CheckpointBytes(*loaded->simulator, *loaded->generator),
            CheckpointBytes(*original.simulator, *original.generator));
}

INSTANTIATE_TEST_SUITE_P(
    DensePaths, DenseLayoutRoundTrip,
    ::testing::Values(
        DenseLayoutParams{"weighted", "WeightedPointer",
                          PolicyKind::kWeightedPointer,
                          ReplacementPolicyKind::kLru},
        DenseLayoutParams{"mutated", "MutatedPartition",
                          PolicyKind::kMutatedPartition,
                          ReplacementPolicyKind::kLru},
        DenseLayoutParams{"lrc", "LeastRecentlyCollected",
                          PolicyKind::kUpdatedPointer,
                          ReplacementPolicyKind::kLru},
        DenseLayoutParams{"costbenefit", "CostBenefit",
                          PolicyKind::kUpdatedPointer,
                          ReplacementPolicyKind::kLru},
        DenseLayoutParams{"clock", "UpdatedPointer",
                          PolicyKind::kUpdatedPointer,
                          ReplacementPolicyKind::kClock},
        DenseLayoutParams{"twoq", "UpdatedPointer",
                          PolicyKind::kUpdatedPointer,
                          ReplacementPolicyKind::kTwoQ}),
    [](const ::testing::TestParamInfo<DenseLayoutParams>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace odbgc
