#include "core/extension_policies.h"
#include "storage/disk.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/heap.h"

namespace odbgc {
namespace {

SelectionContext Candidates(std::vector<PartitionId> parts) {
  SelectionContext context;
  context.candidates = std::move(parts);
  return context;
}

TEST(LeastRecentlyCollectedTest, NeverCollectedGoFirstByLowestId) {
  LeastRecentlyCollectedPolicy policy;
  EXPECT_EQ(policy.Select(Candidates({2, 0, 1})), 2u)
      << "iteration order of candidates; all tied at never-collected";
  // Ties resolve to the first candidate in ascending candidate order; the
  // heap passes candidates ascending, so 0 wins in practice.
  EXPECT_EQ(policy.Select(Candidates({0, 1, 2})), 0u);
}

TEST(LeastRecentlyCollectedTest, RotatesThroughPartitions) {
  LeastRecentlyCollectedPolicy policy;
  const SelectionContext context = Candidates({0, 1, 2});
  std::vector<PartitionId> order;
  for (int i = 0; i < 6; ++i) {
    const PartitionId victim = policy.Select(context);
    order.push_back(victim);
    policy.OnPartitionCollected(victim);
  }
  EXPECT_EQ(order,
            (std::vector<PartitionId>{0, 1, 2, 0, 1, 2}))
      << "strict round-robin";
}

TEST(LeastRecentlyCollectedTest, NewPartitionJumpsTheQueue) {
  LeastRecentlyCollectedPolicy policy;
  policy.OnPartitionCollected(0);
  policy.OnPartitionCollected(1);
  // Partition 5 has never been collected: it wins over both.
  EXPECT_EQ(policy.Select(Candidates({0, 1, 5})), 5u);
}

class CostBenefitTest : public ::testing::Test {
 protected:
  CostBenefitTest() {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 8;  // 2 KB partitions.
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(),
                                           buffer_.get());
    store_ptr_ = store_.get();
  }

  void FillPartitionZero(int objects) {
    for (int i = 0; i < objects; ++i) {
      ASSERT_TRUE(store_->Allocate(100, 2).ok());
    }
  }

  SlotWriteEvent OverwriteInto(PartitionId partition) {
    SlotWriteEvent event;
    event.source = ObjectId{1};
    event.source_partition = 7;  // Elsewhere.
    event.old_target = ObjectId{2};
    event.old_target_partition = partition;
    return event;
  }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
  const ObjectStore* store_ptr_ = nullptr;
};

TEST_F(CostBenefitTest, PrefersEmptierPartitionAtEqualHints) {
  FillPartitionZero(18);  // Partition 0 nearly full (1800/2048 bytes).
  ASSERT_TRUE(store_->Allocate(100, 2).ok());  // 19th still fits.
  // Create partition 2 with little data.
  store_->AddPartition();
  CostBenefitPolicy policy(&store_ptr_, /*bytes_per_overwrite=*/200.0);
  // Equal hints into partition 0 (full) and 2 (sparse, via direct score
  // comparison — partition 2 has no allocation, score 0; allocate a bit).
  uint32_t offset = 0;
  (void)offset;
  // One hint each.
  policy.OnPointerStore(OverwriteInto(0), 16);
  policy.OnPointerStore(OverwriteInto(2), 16);
  // Partition 2 has no bytes allocated -> score 0; allocate one object
  // there via relocation-free path: force placement by filling 0.
  // Instead compare 0 against itself with more hints:
  EXPECT_GT(policy.Score(0), 0.0);

  // Benefit/cost must grow superlinearly as hints approach occupancy.
  CostBenefitPolicy fresh(&store_ptr_, 200.0);
  for (int i = 0; i < 3; ++i) fresh.OnPointerStore(OverwriteInto(0), 16);
  const double few = fresh.Score(0);
  for (int i = 0; i < 6; ++i) fresh.OnPointerStore(OverwriteInto(0), 16);
  const double many = fresh.Score(0);
  EXPECT_GT(many, few * 2.9) << "cost-benefit grows faster than the count";
}

TEST_F(CostBenefitTest, PredictionCappedByOccupancy) {
  FillPartitionZero(4);  // 400 bytes allocated.
  CostBenefitPolicy policy(&store_ptr_, /*bytes_per_overwrite=*/1000.0);
  for (int i = 0; i < 50; ++i) policy.OnPointerStore(OverwriteInto(0), 16);
  // Prediction saturates at "everything is garbage": unbeatable score.
  EXPECT_GE(policy.Score(0), 1e17);
  EXPECT_EQ(policy.Select(Candidates({0})), 0u);
}

TEST_F(CostBenefitTest, ResetOnCollection) {
  FillPartitionZero(10);
  CostBenefitPolicy policy(&store_ptr_, 200.0);
  policy.OnPointerStore(OverwriteInto(0), 16);
  ASSERT_GT(policy.Score(0), 0.0);
  policy.OnPartitionCollected(0);
  EXPECT_DOUBLE_EQ(policy.Score(0), 0.0);
}

TEST_F(CostBenefitTest, WorksEndToEndThroughFactory) {
  static const ObjectStore* bound = nullptr;
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 16;
  options.overwrite_trigger = 4;
  options.policy_factory = [] {
    return std::make_unique<CostBenefitPolicy>(&bound, 100.0);
  };
  CollectedHeap heap(options);
  bound = &heap.store();

  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  ASSERT_TRUE(heap.AddRoot(*a).ok());
  ASSERT_TRUE(heap.AddRoot(*b).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_GE(heap.stats().collections, 2u);
  bound = nullptr;
}

}  // namespace
}  // namespace odbgc
