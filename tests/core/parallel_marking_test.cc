// Parallel marking's contract (ReachabilityAnalyzer::EnableParallelMarking,
// DESIGN.md §15): byte-identical results to the serial marker. Held two
// ways — analyzer-level (census and anatomy field-for-field on randomized
// stores, serial instance vs parallel instance on the same store states)
// and simulation-level (a full generator-driven run with
// parallel_marking_threads=4 equals the same run marked serially, across
// seeds and for both census-hungry and census-light policies).
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/reachability.h"
#include "sim/simulator.h"
#include "storage/disk.h"
#include "util/task_pool.h"

namespace odbgc {
namespace {

void ExpectSameCensus(const GarbageCensus& a, const GarbageCensus& b) {
  EXPECT_EQ(a.garbage_bytes_per_partition, b.garbage_bytes_per_partition);
  EXPECT_EQ(a.garbage_objects_per_partition, b.garbage_objects_per_partition);
  EXPECT_EQ(a.collectable_bytes_per_partition,
            b.collectable_bytes_per_partition);
  EXPECT_EQ(a.total_garbage_bytes, b.total_garbage_bytes);
  EXPECT_EQ(a.total_garbage_objects, b.total_garbage_objects);
  EXPECT_EQ(a.total_collectable_bytes, b.total_collectable_bytes);
  EXPECT_EQ(a.total_live_bytes, b.total_live_bytes);
  EXPECT_EQ(a.total_live_objects, b.total_live_objects);
}

void ExpectSameAnatomy(const GarbageAnatomy& a, const GarbageAnatomy& b) {
  EXPECT_EQ(a.locally_collectable_bytes, b.locally_collectable_bytes);
  EXPECT_EQ(a.nepotism_bytes, b.nepotism_bytes);
  EXPECT_EQ(a.cross_partition_cycle_bytes, b.cross_partition_cycle_bytes);
}

// ---------------------------------------------------------------------------
// Analyzer level: randomized store mutations, serial vs parallel marking
// on the same states. The parallel analyzer shares one TaskPool across
// every wave, exercising claim-array reuse and epoch bumps.

class ParallelMarkingTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ParallelMarkingTest() {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 8;
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(), buffer_.get());
  }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_P(ParallelMarkingTest, CensusAndAnatomyMatchSerialOnRandomizedStores) {
  std::mt19937_64 rng(GetParam());
  auto uniform = [&rng](uint32_t n) {
    return static_cast<uint32_t>(rng() % n);
  };

  TaskPool pool(4);
  ReachabilityAnalyzer serial;
  ReachabilityAnalyzer parallel;
  parallel.EnableParallelMarking(&pool, 4);
  ASSERT_TRUE(parallel.parallel_marking_enabled());
  ASSERT_FALSE(serial.parallel_marking_enabled());

  constexpr uint32_t kSlots = 3;
  std::vector<ObjectId> objects;
  std::vector<ObjectId> roots;

  const auto compare_now = [&](uint64_t step) {
    SCOPED_TRACE("step " + std::to_string(step));
    ExpectSameCensus(parallel.Census(*store_), serial.Census(*store_));
    ExpectSameAnatomy(parallel.Anatomy(*store_), serial.Anatomy(*store_));
  };

  compare_now(0);  // Empty store: parallel path defers to serial (no roots).

  for (uint64_t step = 1; step <= 500; ++step) {
    switch (uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Allocate, sometimes near a random parent.
        const ObjectId parent =
            (!objects.empty() && uniform(2) == 0)
                ? objects[uniform(static_cast<uint32_t>(objects.size()))]
                : kNullObjectId;
        const uint32_t size =
            static_cast<uint32_t>(MinObjectSize(kSlots)) + uniform(120);
        auto id = store_->Allocate(size, kSlots, parent);
        ASSERT_TRUE(id.ok());
        objects.push_back(*id);
        if (roots.empty() || uniform(8) == 0) {
          ASSERT_TRUE(store_->AddRoot(*id).ok());
          roots.push_back(*id);
        }
        break;
      }
      case 4:
      case 5:
      case 6: {  // Random pointer store (links and unlinks alike).
        if (objects.empty()) break;
        const ObjectId source =
            objects[uniform(static_cast<uint32_t>(objects.size()))];
        const ObjectId target =
            uniform(5) == 0
                ? kNullObjectId
                : objects[uniform(static_cast<uint32_t>(objects.size()))];
        ASSERT_TRUE(store_->WriteSlot(source, uniform(kSlots), target).ok());
        break;
      }
      case 7: {  // Remove a root (creates garbage trees).
        if (roots.size() < 2) break;
        const uint32_t at = uniform(static_cast<uint32_t>(roots.size()));
        ASSERT_TRUE(store_->RemoveRoot(roots[at]).ok());
        roots.erase(roots.begin() + at);
        break;
      }
      case 8: {  // Drop a non-root outright: dangling slots elsewhere, and
        // the serial marker's dangling-root tolerance gets exercised when
        // a dropped object's id lingers in another object's slot.
        if (objects.size() < 4) break;
        const uint32_t at = uniform(static_cast<uint32_t>(objects.size()));
        const ObjectId victim = objects[at];
        bool is_root = false;
        for (ObjectId r : roots) is_root = is_root || r == victim;
        if (is_root) break;  // The store refuses to drop roots.
        ASSERT_TRUE(store_->DropObject(victim).ok());
        objects.erase(objects.begin() + at);
        break;
      }
      case 9:
        break;  // Quiet step.
    }
    if (step % 50 == 0) compare_now(step);
  }
  compare_now(501);
  EXPECT_GT(pool.executed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelMarkingTest,
                         ::testing::Values(11u, 42u, 977u, 31337u));

// IsLive answers identically after a parallel mark — the raw surface
// census/anatomy are built on.
TEST(ParallelMarkingLivenessTest, IsLiveMatchesSerialMark) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 8;
  SimulatedDisk disk(options.page_size);
  BufferPool buffer(&disk, 64);
  ObjectStore store(options, &disk, &buffer);

  // A chain hanging off a root plus a detached chain.
  std::vector<ObjectId> chain;
  for (int i = 0; i < 200; ++i) {
    auto id = store.Allocate(64, 1, chain.empty() ? kNullObjectId : chain.back());
    ASSERT_TRUE(id.ok());
    if (!chain.empty()) {
      ASSERT_TRUE(store.WriteSlot(chain.back(), 0, *id).ok());
    }
    chain.push_back(*id);
  }
  ASSERT_TRUE(store.AddRoot(chain.front()).ok());
  std::vector<ObjectId> orphans;
  for (int i = 0; i < 50; ++i) {
    auto id = store.Allocate(64, 1, kNullObjectId);
    ASSERT_TRUE(id.ok());
    orphans.push_back(*id);
  }

  TaskPool pool(3);
  ReachabilityAnalyzer serial;
  ReachabilityAnalyzer parallel;
  parallel.EnableParallelMarking(&pool, 3);
  serial.MarkLiveSet(store);
  parallel.MarkLiveSet(store);
  for (ObjectId id : chain) {
    EXPECT_TRUE(serial.IsLive(id));
    EXPECT_TRUE(parallel.IsLive(id));
  }
  for (ObjectId id : orphans) {
    EXPECT_FALSE(serial.IsLive(id));
    EXPECT_FALSE(parallel.IsLive(id));
  }
}

// ---------------------------------------------------------------------------
// Simulation level: a full generator-driven run is byte-identical with
// parallel marking on. MostGarbage is the census-per-trigger oracle (the
// path parallel marking exists for); UpdatedPointer checks a policy whose
// censuses come only from snapshots and Finish.

class ParallelMarkingSimTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

SimulationConfig SmallSim(const std::string& policy, uint64_t seed,
                          uint32_t marking_threads) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 25;
  config.heap.policy_name = policy;
  config.heap.parallel_marking_threads = marking_threads;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 50;
  config.workload.tree_nodes_max = 150;
  config.workload.large_object_size = 4096;
  config.seed = seed;
  config.snapshot_interval = 500;  // Snapshot censuses run in parallel too.
  return config;
}

TEST_P(ParallelMarkingSimTest, FullRunIsByteIdenticalToSerial) {
  const auto& [policy, seed] = GetParam();
  Simulator serial_sim(SmallSim(policy, seed, /*marking_threads=*/1));
  ASSERT_TRUE(serial_sim.Run().ok());
  SimulationResult serial = serial_sim.Finish();

  Simulator parallel_sim(SmallSim(policy, seed, /*marking_threads=*/4));
  ASSERT_TRUE(parallel_sim.Run().ok());
  SimulationResult parallel = parallel_sim.Finish();

  EXPECT_EQ(serial.app_io, parallel.app_io);
  EXPECT_EQ(serial.gc_io, parallel.gc_io);
  EXPECT_EQ(serial.collections, parallel.collections);
  EXPECT_EQ(serial.garbage_reclaimed_bytes, parallel.garbage_reclaimed_bytes);
  EXPECT_EQ(serial.live_bytes_copied, parallel.live_bytes_copied);
  EXPECT_EQ(serial.unreclaimed_garbage_bytes,
            parallel.unreclaimed_garbage_bytes);
  EXPECT_EQ(serial.final_live_bytes, parallel.final_live_bytes);
  EXPECT_EQ(serial.max_storage_bytes, parallel.max_storage_bytes);
  EXPECT_EQ(serial.bytes_allocated, parallel.bytes_allocated);
  EXPECT_EQ(serial.pointer_overwrites, parallel.pointer_overwrites);
  EXPECT_EQ(serial.estimated_device_time_ms, parallel.estimated_device_time_ms);
  EXPECT_EQ(serial.heap_stats.garbage_bytes_reclaimed,
            parallel.heap_stats.garbage_bytes_reclaimed);
  EXPECT_EQ(serial.buffer_stats.hits, parallel.buffer_stats.hits);
  EXPECT_EQ(serial.buffer_stats.misses, parallel.buffer_stats.misses);
  EXPECT_EQ(serial.disk_stats.page_reads, parallel.disk_stats.page_reads);
  EXPECT_EQ(serial.disk_stats.page_writes, parallel.disk_stats.page_writes);
  // Time series (Figure 4 curves) point for point.
  ASSERT_EQ(serial.unreclaimed_garbage_kb.points().size(),
            parallel.unreclaimed_garbage_kb.points().size());
  for (size_t i = 0; i < serial.unreclaimed_garbage_kb.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.unreclaimed_garbage_kb.points()[i].y,
                     parallel.unreclaimed_garbage_kb.points()[i].y);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ParallelMarkingSimTest,
    ::testing::Combine(::testing::Values(std::string("MostGarbage"),
                                         std::string("UpdatedPointer")),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace odbgc
