#include "core/weights.h"
#include "storage/disk.h"

#include <memory>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

class WeightsTest : public ::testing::Test {
 protected:
  WeightsTest() {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 8;
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(),
                                           buffer_.get());
    weights_ = std::make_unique<WeightTracker>(store_.get(),
                                               /*charge_io=*/false);
  }

  ObjectId Alloc() {
    auto id = store_->Allocate(64, 4);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  // Links a->b through `slot` and updates weights the way the heap does.
  void Link(ObjectId a, ObjectId b, uint32_t slot = 0) {
    ASSERT_TRUE(store_->WriteSlot(a, slot, b).ok());
    ASSERT_TRUE(weights_->OnPointerStored(a, b).ok());
  }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<WeightTracker> weights_;
};

TEST_F(WeightsTest, UnknownObjectsHaveMaxWeight) {
  EXPECT_EQ(weights_->GetWeight(ObjectId{123}), WeightTracker::kMaxWeight);
}

TEST_F(WeightsTest, RootHasWeightOne) {
  const ObjectId r = Alloc();
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  EXPECT_EQ(weights_->GetWeight(r), 1);
}

TEST_F(WeightsTest, ChildIsParentPlusOne) {
  const ObjectId r = Alloc(), a = Alloc(), b = Alloc();
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  Link(r, a);
  Link(a, b);
  EXPECT_EQ(weights_->GetWeight(a), 2);
  EXPECT_EQ(weights_->GetWeight(b), 3);
}

TEST_F(WeightsTest, MinimumOverInEdges) {
  // Paper's Figure 3: the weight is 1 + min over incoming edges.
  const ObjectId r = Alloc(), deep = Alloc(), x = Alloc();
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  Link(r, deep);       // deep = 2
  Link(deep, x);       // x = 3
  EXPECT_EQ(weights_->GetWeight(x), 3);
  Link(r, x, 1);       // A closer edge appears: x = 2.
  EXPECT_EQ(weights_->GetWeight(x), 2);
}

TEST_F(WeightsTest, DecreasePropagatesTransitively) {
  // Chain r -> a -> b -> c built bottom-up, then rooted: the relaxation
  // must ripple down the chain.
  const ObjectId r = Alloc(), a = Alloc(), b = Alloc(), c = Alloc();
  Link(a, b);
  Link(b, c);
  Link(r, a);
  // Nothing is rooted yet: all weights still near max.
  EXPECT_EQ(weights_->GetWeight(c), WeightTracker::kMaxWeight);
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  EXPECT_EQ(weights_->GetWeight(a), 2);
  EXPECT_EQ(weights_->GetWeight(b), 3);
  EXPECT_EQ(weights_->GetWeight(c), 4);
}

TEST_F(WeightsTest, IncreaseIsNotTracked) {
  // One-sided maintenance (as in the paper): removing the cheap edge does
  // not raise the weight back.
  const ObjectId r = Alloc(), x = Alloc();
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  Link(r, x);
  EXPECT_EQ(weights_->GetWeight(x), 2);
  ASSERT_TRUE(store_->WriteSlot(r, 0, kNullObjectId).ok());
  EXPECT_EQ(weights_->GetWeight(x), 2) << "weights only ever decrease";
}

TEST_F(WeightsTest, ClampsAtMax) {
  // A chain longer than kMaxWeight: tail stays at the max.
  ObjectId prev = Alloc();
  ASSERT_TRUE(weights_->OnRootAdded(prev).ok());
  ObjectId tail = prev;
  for (int i = 0; i < 20; ++i) {
    const ObjectId next = Alloc();
    Link(tail, next);
    tail = next;
  }
  EXPECT_EQ(weights_->GetWeight(tail), WeightTracker::kMaxWeight);
}

TEST_F(WeightsTest, CycleTerminates) {
  const ObjectId r = Alloc(), a = Alloc(), b = Alloc();
  Link(a, b);
  Link(b, a, 1);  // Cycle a <-> b.
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  Link(r, a);  // Must terminate despite the cycle.
  EXPECT_EQ(weights_->GetWeight(a), 2);
  EXPECT_EQ(weights_->GetWeight(b), 3);
}

TEST_F(WeightsTest, DeathForgets) {
  const ObjectId r = Alloc();
  ASSERT_TRUE(weights_->OnRootAdded(r).ok());
  EXPECT_EQ(weights_->tracked_count(), 1u);
  weights_->OnObjectDied(r);
  EXPECT_EQ(weights_->tracked_count(), 0u);
  EXPECT_EQ(weights_->GetWeight(r), WeightTracker::kMaxWeight);
}

TEST_F(WeightsTest, ChargedUpdatesDirtyHeaderPage) {
  WeightTracker charged(store_.get(), /*charge_io=*/true);
  const ObjectId r = Alloc();
  ASSERT_TRUE(buffer_->FlushAll().ok());
  ASSERT_TRUE(charged.OnRootAdded(r).ok());
  const auto* info = store_->Lookup(r);
  const PageId header_page =
      store_->partition(info->partition).extent().first_page +
      info->offset / 256;
  EXPECT_TRUE(buffer_->IsDirty(header_page))
      << "a weight change must rewrite the header's page";
}

TEST_F(WeightsTest, NullPointerIgnored) {
  const ObjectId r = Alloc();
  ASSERT_TRUE(weights_->OnPointerStored(r, kNullObjectId).ok());
  EXPECT_EQ(weights_->tracked_count(), 0u);
}

}  // namespace
}  // namespace odbgc
