#include "core/policies.h"

#include <gtest/gtest.h>

#include "core/weights.h"

namespace odbgc {
namespace {

SlotWriteEvent MakeStore(PartitionId source_partition, ObjectId new_target,
                         PartitionId new_partition) {
  SlotWriteEvent e;
  e.source = ObjectId{100};
  e.source_partition = source_partition;
  e.new_target = new_target;
  e.new_target_partition = new_partition;
  return e;
}

SlotWriteEvent MakeOverwrite(PartitionId source_partition,
                             ObjectId old_target,
                             PartitionId old_partition,
                             ObjectId new_target = kNullObjectId,
                             PartitionId new_partition = kInvalidPartition) {
  SlotWriteEvent e = MakeStore(source_partition, new_target, new_partition);
  e.old_target = old_target;
  e.old_target_partition = old_partition;
  return e;
}

SelectionContext Candidates(std::vector<PartitionId> parts) {
  SelectionContext context;
  context.candidates = std::move(parts);
  return context;
}

TEST(PolicyNamesTest, RoundtripAllKinds) {
  for (PolicyKind kind : AllPolicyKinds()) {
    auto parsed = ParsePolicyName(PolicyName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParsePolicyName("NotAPolicy").ok());
  EXPECT_EQ(AllPolicyKinds().size(), 6u);
}

TEST(PolicyFactoryTest, MakesEveryKind) {
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind, 1);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
  }
}

TEST(MutatedPartitionTest, CountsStoresIntoSourcePartition) {
  MutatedPartitionPolicy policy;
  // Two pointer stores into partition 0, one into partition 1.
  policy.OnPointerStore(MakeStore(0, ObjectId{1}, 2), 16);
  policy.OnPointerStore(MakeStore(0, ObjectId{2}, 2), 16);
  policy.OnPointerStore(MakeStore(1, ObjectId{3}, 2), 16);
  EXPECT_EQ(policy.Select(Candidates({0, 1, 2})), 0u);
  EXPECT_DOUBLE_EQ(policy.Score(0), 2.0);
  EXPECT_DOUBLE_EQ(policy.Score(2), 0.0);
}

TEST(MutatedPartitionTest, IgnoresNullStores) {
  MutatedPartitionPolicy policy;
  policy.OnPointerStore(MakeOverwrite(0, ObjectId{1}, 2), 16);  // Write null.
  EXPECT_DOUBLE_EQ(policy.Score(0), 0.0);
}

TEST(MutatedPartitionTest, CountsCreationStores) {
  // The policy's documented weakness: it cannot tell initializing stores
  // from overwrites.
  MutatedPartitionPolicy policy;
  policy.OnPointerStore(MakeStore(3, ObjectId{1}, 3), 16);
  EXPECT_DOUBLE_EQ(policy.Score(3), 1.0);
}

TEST(MutatedPartitionTest, ResetOnCollection) {
  MutatedPartitionPolicy policy;
  policy.OnPointerStore(MakeStore(0, ObjectId{1}, 2), 16);
  policy.OnPartitionCollected(0);
  EXPECT_DOUBLE_EQ(policy.Score(0), 0.0);
}

TEST(UpdatedPointerTest, CountsOverwritesByOldTargetPartition) {
  UpdatedPointerPolicy policy;
  policy.OnPointerStore(MakeOverwrite(0, ObjectId{1}, 5), 16);
  policy.OnPointerStore(MakeOverwrite(1, ObjectId{2}, 5), 16);
  policy.OnPointerStore(MakeOverwrite(2, ObjectId{3}, 4), 16);
  EXPECT_EQ(policy.Select(Candidates({4, 5})), 5u);
  EXPECT_DOUBLE_EQ(policy.Score(5), 2.0);
  EXPECT_DOUBLE_EQ(policy.Score(4), 1.0);
}

TEST(UpdatedPointerTest, IgnoresInitializingStores) {
  UpdatedPointerPolicy policy;
  policy.OnPointerStore(MakeStore(0, ObjectId{1}, 5), 16);
  EXPECT_DOUBLE_EQ(policy.Score(5), 0.0);
  EXPECT_DOUBLE_EQ(policy.Score(0), 0.0);
}

TEST(UpdatedPointerTest, ResetOnCollection) {
  UpdatedPointerPolicy policy;
  policy.OnPointerStore(MakeOverwrite(0, ObjectId{1}, 5), 16);
  policy.OnPartitionCollected(5);
  EXPECT_DOUBLE_EQ(policy.Score(5), 0.0);
}

TEST(WeightedPointerTest, WeightsByExponentialDistance) {
  WeightedPointerPolicy policy;
  // Overwrite of a weight-2 pointer into partition 5 (paper's example:
  // 2^(16-2) = 16384) and of a weight-16 pointer into partition 4.
  policy.OnPointerStore(MakeOverwrite(0, ObjectId{1}, 5), 2);
  policy.OnPointerStore(MakeOverwrite(0, ObjectId{2}, 4), 16);
  EXPECT_DOUBLE_EQ(policy.Score(5), 16384.0);
  EXPECT_DOUBLE_EQ(policy.Score(4), 1.0);
  EXPECT_EQ(policy.Select(Candidates({4, 5})), 5u);
}

TEST(WeightedPointerTest, ManyLeafOverwritesCanBeatOneMidEdge) {
  WeightedPointerPolicy policy;
  policy.OnPointerStore(MakeOverwrite(0, ObjectId{1}, 7), 10);  // 2^6 = 64.
  for (int i = 0; i < 100; ++i) {
    policy.OnPointerStore(MakeOverwrite(0, ObjectId{2}, 8), 16);  // 1 each.
  }
  EXPECT_EQ(policy.Select(Candidates({7, 8})), 8u);
}

TEST(RandomPolicyTest, DeterministicPerSeedAndInRange) {
  RandomPolicy a(99), b(99);
  const SelectionContext context = Candidates({3, 5, 9});
  for (int i = 0; i < 50; ++i) {
    const PartitionId pa = a.Select(context);
    EXPECT_EQ(pa, b.Select(context));
    EXPECT_TRUE(pa == 3 || pa == 5 || pa == 9);
  }
}

TEST(RandomPolicyTest, EmptyCandidatesDecline) {
  RandomPolicy policy(1);
  EXPECT_EQ(policy.Select(Candidates({})), kInvalidPartition);
}

TEST(MostGarbageTest, PicksLargestGarbage) {
  MostGarbagePolicy policy;
  SelectionContext context = Candidates({0, 1, 2});
  context.garbage_bytes_per_partition = {100, 900, 300};
  EXPECT_EQ(policy.Select(context), 1u);
}

TEST(MostGarbageTest, TieBreaksToLowestId) {
  MostGarbagePolicy policy;
  SelectionContext context = Candidates({0, 1, 2});
  context.garbage_bytes_per_partition = {300, 300, 300};
  EXPECT_EQ(policy.Select(context), 0u);
}

TEST(MostGarbageTest, MissingCensusTreatedAsZero) {
  MostGarbagePolicy policy;
  SelectionContext context = Candidates({5, 6});
  context.garbage_bytes_per_partition = {1, 2, 3};  // Shorter than ids.
  EXPECT_EQ(policy.Select(context), 5u);
}

TEST(NoCollectionTest, AlwaysDeclines) {
  NoCollectionPolicy policy;
  EXPECT_EQ(policy.Select(Candidates({0, 1})), kInvalidPartition);
}

}  // namespace
}  // namespace odbgc
