#include "core/heap.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

HeapOptions SmallHeap(PolicyKind policy, uint32_t trigger) {
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 16;
  options.policy = policy;
  options.overwrite_trigger = trigger;
  return options;
}

TEST(HeapTest, TriggerFiresAfterConfiguredOverwrites) {
  CollectedHeap heap(SmallHeap(PolicyKind::kUpdatedPointer, 3));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2, *root);
  auto b = heap.Allocate(100, 2, *root);
  ASSERT_TRUE(a.ok() && b.ok());

  // Initializing stores are not overwrites.
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());
  EXPECT_EQ(heap.stats().collections, 0u);

  // Three overwrites fire the trigger.
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *b).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());
  EXPECT_EQ(heap.stats().collections, 0u);
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *b).ok());
  EXPECT_EQ(heap.stats().collections, 1u);
  EXPECT_EQ(heap.stats().pointer_overwrites, 3u);
  EXPECT_EQ(heap.collection_log().size(), 1u);
}

TEST(HeapTest, TriggerRearmsAfterCollection) {
  CollectedHeap heap(SmallHeap(PolicyKind::kUpdatedPointer, 2));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2, *root);
  auto b = heap.Allocate(100, 2, *root);
  // Keep a and b rooted so the overwritten-away one is never reclaimed.
  ASSERT_TRUE(heap.AddRoot(*a).ok());
  ASSERT_TRUE(heap.AddRoot(*b).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_EQ(heap.stats().collections, 4u);
}

TEST(HeapTest, NoCollectionNeverCollects) {
  CollectedHeap heap(SmallHeap(PolicyKind::kNoCollection, 1));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_EQ(heap.stats().collections, 0u);
  auto result = heap.CollectNow();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(HeapTest, ZeroTriggerMeansManualOnly) {
  CollectedHeap heap(SmallHeap(PolicyKind::kUpdatedPointer, 0));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_EQ(heap.stats().collections, 0u);
  ASSERT_TRUE(heap.CollectNow().ok());
  EXPECT_EQ(heap.stats().collections, 1u);
}

TEST(HeapTest, CandidatesExcludeEmptyAndUnusedPartitions) {
  CollectedHeap heap(SmallHeap(PolicyKind::kUpdatedPointer, 0));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  const auto candidates = heap.CollectionCandidates();
  for (PartitionId p : candidates) {
    EXPECT_NE(p, heap.store().empty_partition());
    EXPECT_GT(heap.store().partition(p).allocated_bytes(), 0u);
  }
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(HeapTest, StatsAccumulate) {
  CollectedHeap heap(SmallHeap(PolicyKind::kUpdatedPointer, 0));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2, *root);
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());       // Store.
  ASSERT_TRUE(heap.WriteSlot(*root, 0, kNullObjectId).ok());  // Overwrite.

  EXPECT_EQ(heap.stats().objects_allocated, 2u);
  EXPECT_EQ(heap.stats().bytes_allocated, 200u);
  EXPECT_EQ(heap.stats().pointer_stores, 1u);
  EXPECT_EQ(heap.stats().pointer_overwrites, 1u);

  ASSERT_TRUE(heap.CollectNow().ok());
  EXPECT_EQ(heap.stats().collections, 1u);
  EXPECT_EQ(heap.stats().garbage_bytes_reclaimed, 100u);
  EXPECT_EQ(heap.stats().live_bytes_copied, 100u);
}

TEST(HeapTest, MaxStorageHighWaterMark) {
  CollectedHeap heap(SmallHeap(PolicyKind::kNoCollection, 0));
  const uint64_t initial = heap.stats().max_total_bytes;
  EXPECT_EQ(initial, heap.store().total_bytes());
  // Allocate past several partitions.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(heap.Allocate(100, 2).ok());
  }
  EXPECT_GT(heap.stats().max_total_bytes, initial);
  EXPECT_EQ(heap.stats().max_total_bytes, heap.store().total_bytes());
  EXPECT_EQ(heap.stats().max_partitions, heap.store().partition_count());
}

TEST(HeapTest, WeightsAutoEnabledOnlyForWeightedPointer) {
  CollectedHeap weighted(SmallHeap(PolicyKind::kWeightedPointer, 0));
  EXPECT_NE(weighted.weights(), nullptr);
  CollectedHeap updated(SmallHeap(PolicyKind::kUpdatedPointer, 0));
  EXPECT_EQ(updated.weights(), nullptr);

  HeapOptions forced = SmallHeap(PolicyKind::kUpdatedPointer, 0);
  forced.weights = WeightMode::kOn;
  CollectedHeap on(forced);
  EXPECT_NE(on.weights(), nullptr);
}

TEST(HeapTest, RootWeightTracked) {
  HeapOptions options = SmallHeap(PolicyKind::kWeightedPointer, 0);
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  ASSERT_NE(heap.weights(), nullptr);
  EXPECT_EQ(heap.weights()->GetWeight(*root), 1);
  auto child = heap.Allocate(100, 2, *root);
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *child).ok());
  EXPECT_EQ(heap.weights()->GetWeight(*child), 2);
}

TEST(HeapTest, MultiPartitionCollection) {
  HeapOptions options = SmallHeap(PolicyKind::kRandom, 2);
  options.partitions_per_collection = 2;
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  // Spread allocations over several partitions.
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(heap.Allocate(100, 2).ok());
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *b).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());
  EXPECT_EQ(heap.stats().collections, 2u)
      << "one trigger collects two partitions";
}

TEST(HeapTest, NewbornSurvivesCollectionUntilLinked) {
  // An object allocated but not yet linked anywhere must survive a
  // collection (allocation-triggered collections fire exactly in that
  // window); once linked and then unlinked, it is ordinary garbage.
  CollectedHeap heap(SmallHeap(PolicyKind::kUpdatedPointer, 0));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto fresh = heap.Allocate(100, 2);
  ASSERT_TRUE(fresh.ok());

  ASSERT_TRUE(heap.CollectPartition(0).ok());
  EXPECT_TRUE(heap.store().Exists(*fresh)) << "unlinked newborn reclaimed";

  // Link it (protection ends), cut it, collect: now it dies.
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *fresh).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, kNullObjectId).ok());
  const PartitionId victim = heap.store().Lookup(*fresh)->partition;
  ASSERT_TRUE(heap.CollectPartition(victim).ok());
  EXPECT_FALSE(heap.store().Exists(*fresh));
}

TEST(HeapTest, PolicyFactoryInstallsCustomPolicy) {
  // A user-supplied policy must receive the write-barrier notifications
  // and drive victim selection.
  struct CountingPolicy : SelectionPolicy {
    int stores = 0;
    int selects = 0;
    PolicyKind kind() const override { return PolicyKind::kUpdatedPointer; }
    void OnPointerStore(const SlotWriteEvent&, uint8_t) override {
      ++stores;
    }
    PartitionId Select(const SelectionContext& context) override {
      ++selects;
      return context.candidates.empty() ? kInvalidPartition
                                        : context.candidates.front();
    }
  };
  auto* counting = new CountingPolicy;  // Owned by the heap via factory.
  HeapOptions options = SmallHeap(PolicyKind::kRandom, 2);
  options.policy_factory = [counting] {
    return std::unique_ptr<SelectionPolicy>(counting);
  };
  CollectedHeap heap(options);
  EXPECT_EQ(heap.policy().kind(), PolicyKind::kUpdatedPointer);
  EXPECT_EQ(heap.options().policy, PolicyKind::kUpdatedPointer)
      << "heap adopts the factory policy's kind";

  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  ASSERT_TRUE(heap.AddRoot(*a).ok());
  ASSERT_TRUE(heap.AddRoot(*b).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_EQ(counting->stores, 6);
  EXPECT_GE(counting->selects, 2);
  EXPECT_EQ(heap.stats().collections,
            static_cast<uint64_t>(counting->selects));
}

TEST(HeapTest, CollectPartitionBypassesPolicy) {
  CollectedHeap heap(SmallHeap(PolicyKind::kNoCollection, 0));
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto result = heap.CollectPartition(0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(heap.stats().collections, 1u);
}

}  // namespace
}  // namespace odbgc
