#include "core/write_barrier.h"

#include <gtest/gtest.h>

#include "core/heap.h"
#include "core/reachability.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

HeapOptions BarrierHeap(BarrierMode mode) {
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 32;
  options.policy = PolicyKind::kUpdatedPointer;
  options.overwrite_trigger = 0;
  options.barrier = mode;
  options.card_size = 128;
  return options;
}

// Creates root (rooted), x, and y with y in a different partition than x,
// fillers kept live under root's slot 2 chain. Returns (x, y).
std::pair<ObjectId, ObjectId> CrossPartitionPair(CollectedHeap& heap) {
  auto root = heap.Allocate(100, 3);
  EXPECT_TRUE(root.ok());
  EXPECT_TRUE(heap.AddRoot(*root).ok());
  ObjectId anchor = *root;
  auto x = heap.Allocate(100, 3);
  EXPECT_TRUE(x.ok());
  const PartitionId part_x = heap.store().Lookup(*x)->partition;
  for (int i = 0; i < 64; ++i) {
    auto o = heap.Allocate(100, 3);
    EXPECT_TRUE(o.ok());
    if (heap.store().Lookup(*o)->partition != part_x) {
      // Displace newborn protection from y so it can become garbage.
      auto sentinel = heap.Allocate(100, 3);
      EXPECT_TRUE(sentinel.ok());
      EXPECT_TRUE(heap.AddRoot(*sentinel).ok());
      return {*x, *o};
    }
    EXPECT_TRUE(heap.WriteSlot(anchor, 2, *o).ok());
    anchor = *o;
  }
  ADD_FAILURE() << "no cross-partition object";
  return {*x, kNullObjectId};
}

TEST(WriteBarrierTest, ModeNames) {
  EXPECT_STREQ(BarrierModeName(BarrierMode::kExact), "exact");
  EXPECT_STREQ(BarrierModeName(BarrierMode::kSequentialStoreBuffer),
               "store-buffer");
  EXPECT_STREQ(BarrierModeName(BarrierMode::kCardMarking), "card-marking");
}

TEST(WriteBarrierTest, ExactModeUpdatesIndexImmediately) {
  CollectedHeap heap(BarrierHeap(BarrierMode::kExact));
  auto [x, y] = CrossPartitionPair(heap);
  ASSERT_TRUE(heap.WriteSlot(y, 0, x).ok());
  EXPECT_TRUE(heap.index().HasExternalReferences(x));
  ASSERT_TRUE(heap.WriteSlot(y, 0, kNullObjectId).ok());
  EXPECT_FALSE(heap.index().HasExternalReferences(x));
}

TEST(WriteBarrierTest, DeferredModesUpdateIndexAtCollection) {
  for (BarrierMode mode : {BarrierMode::kSequentialStoreBuffer,
                           BarrierMode::kCardMarking}) {
    CollectedHeap heap(BarrierHeap(mode));
    auto [x, y] = CrossPartitionPair(heap);
    ASSERT_TRUE(heap.WriteSlot(y, 0, x).ok());
    EXPECT_FALSE(heap.index().HasExternalReferences(x))
        << BarrierModeName(mode) << " must defer index maintenance";
    EXPECT_GT(heap.barrier().pending_work(), 0u);

    // Collecting x's partition must still keep x alive: the barrier
    // catches up before the collector runs.
    const PartitionId victim = heap.store().Lookup(x)->partition;
    ASSERT_TRUE(heap.CollectPartition(victim).ok());
    EXPECT_TRUE(heap.store().Exists(x))
        << BarrierModeName(mode)
        << " lost a remembered-set entry across a collection";
    EXPECT_TRUE(heap.index().HasExternalReferences(x));
  }
}

TEST(WriteBarrierTest, StoreBufferDrainSkipsDeadSources) {
  CollectedHeap heap(BarrierHeap(BarrierMode::kSequentialStoreBuffer));
  auto [x, y] = CrossPartitionPair(heap);
  // y -> x logged; y then becomes garbage and its partition is collected
  // first, so the drain sees a dead source.
  ASSERT_TRUE(heap.WriteSlot(y, 0, x).ok());
  const PartitionId part_y = heap.store().Lookup(y)->partition;
  const PartitionId part_x = heap.store().Lookup(x)->partition;
  ASSERT_TRUE(heap.CollectPartition(part_y).ok());  // Drains: entry y->x.
  ASSERT_TRUE(heap.store().Exists(x));
  // Collect x's partition twice: first keeps x (entry from garbage y —
  // wait, y was live?). y was never rooted: it dies with its partition.
  EXPECT_FALSE(heap.store().Exists(y));
  ASSERT_TRUE(heap.CollectPartition(part_x).ok());
  EXPECT_FALSE(heap.store().Exists(x))
      << "after y died its entry must not survive";
}

TEST(WriteBarrierTest, CardStatsAccumulate) {
  CollectedHeap heap(BarrierHeap(BarrierMode::kCardMarking));
  auto [x, y] = CrossPartitionPair(heap);
  ASSERT_TRUE(heap.WriteSlot(y, 0, x).ok());
  EXPECT_GT(heap.barrier().stats().cards_marked, 0u);
  ASSERT_TRUE(heap.CollectPartition(heap.store().Lookup(x)->partition).ok());
  EXPECT_GT(heap.barrier().stats().cards_scanned, 0u);
  // The card holding y's cross-partition pointer stays dirty.
  EXPECT_GT(heap.barrier().stats().cards_left_dirty, 0u);
}

// All three barrier modes must reclaim exactly the same garbage on the
// same trace (they differ only in *when* the index is brought up to date
// and what I/O that costs).
class BarrierEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BarrierEquivalenceTest, SameReclamationDifferentCost) {
  const uint64_t seed = GetParam();
  SimulationConfig base;
  base.heap.store.page_size = 1024;
  base.heap.store.pages_per_partition = 16;
  base.heap.buffer_pages = 16;
  base.heap.overwrite_trigger = 30;
  base.heap.card_size = 256;
  base.seed = seed;
  base.workload.target_live_bytes = 96ull << 10;
  base.workload.total_alloc_bytes = 240ull << 10;
  base.workload.tree_nodes_min = 60;
  base.workload.tree_nodes_max = 200;
  base.workload.large_object_size = 4096;

  SimulationResult results[3];
  int i = 0;
  for (BarrierMode mode :
       {BarrierMode::kExact, BarrierMode::kSequentialStoreBuffer,
        BarrierMode::kCardMarking}) {
    SimulationConfig config = base;
    config.heap.barrier = mode;
    Simulator simulator(config);
    ASSERT_TRUE(simulator.Run().ok()) << BarrierModeName(mode);
    results[i++] = simulator.Finish();
  }

  for (int m = 1; m < 3; ++m) {
    EXPECT_EQ(results[m].garbage_reclaimed_bytes,
              results[0].garbage_reclaimed_bytes)
        << "mode " << m << " reclaimed differently";
    EXPECT_EQ(results[m].final_live_bytes, results[0].final_live_bytes);
    EXPECT_EQ(results[m].collections, results[0].collections);
  }
  // Deferred modes pay catch-up I/O at collection time.
  EXPECT_GE(results[1].gc_io, results[0].gc_io);
  EXPECT_GE(results[2].gc_io, results[0].gc_io);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierEquivalenceTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace odbgc
