// Pins the ReachabilityAnalyzer's contract: its census and anatomy are
// field-for-field identical to a reference implementation with the
// original set-based structure (unordered containers, per-call
// allocation), across randomized seeded stores. The analyzer's epoch
// reuse is exercised by running many censuses through one instance.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/reachability.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations (the original algorithm shapes).

GarbageCensus ReferenceCensus(const ObjectStore& store) {
  const std::unordered_set<ObjectId> live = ComputeLiveSet(store);

  GarbageCensus census;
  census.garbage_bytes_per_partition.assign(store.partition_count(), 0);
  census.garbage_objects_per_partition.assign(store.partition_count(), 0);
  census.collectable_bytes_per_partition.assign(store.partition_count(), 0);

  struct DeadEntry {
    PartitionId partition;
    uint32_t size;
  };
  std::unordered_map<ObjectId, DeadEntry> dead;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      if (info == nullptr) continue;
      if (live.count(id) > 0) {
        census.total_live_bytes += info->size;
        ++census.total_live_objects;
      } else {
        census.garbage_bytes_per_partition[pid] += info->size;
        ++census.garbage_objects_per_partition[pid];
        census.total_garbage_bytes += info->size;
        ++census.total_garbage_objects;
        dead.emplace(id,
                     DeadEntry{static_cast<PartitionId>(pid), info->size});
      }
    }
  }

  // Kept-but-dead, as a fixpoint: seeds are dead objects with a
  // cross-partition dead in-edge; the closure follows intra-partition
  // dead edges out of kept objects.
  std::unordered_set<ObjectId> kept;
  std::deque<ObjectId> queue;
  for (const auto& [id, entry] : dead) {
    const ObjectStore::ObjectInfo* info = store.Lookup(id);
    for (ObjectId child : info->slots) {
      if (child.is_null()) continue;
      auto dit = dead.find(child);
      if (dit == dead.end() || dit->second.partition == entry.partition) {
        continue;
      }
      if (kept.insert(child).second) queue.push_back(child);
    }
  }
  while (!queue.empty()) {
    const ObjectId id = queue.front();
    queue.pop_front();
    const PartitionId partition = dead.at(id).partition;
    for (ObjectId child : store.Lookup(id)->slots) {
      if (child.is_null()) continue;
      auto dit = dead.find(child);
      if (dit == dead.end() || dit->second.partition != partition) continue;
      if (kept.insert(child).second) queue.push_back(child);
    }
  }

  for (const auto& [id, entry] : dead) {
    if (kept.count(id) > 0) continue;
    census.collectable_bytes_per_partition[entry.partition] += entry.size;
    census.total_collectable_bytes += entry.size;
  }
  return census;
}

GarbageAnatomy ReferenceAnatomy(const ObjectStore& store) {
  const std::unordered_set<ObjectId> live = ComputeLiveSet(store);

  // Dense dead graph via a per-call hash map, as the original did.
  std::vector<ObjectId> ids;
  std::vector<PartitionId> partitions;
  std::vector<uint32_t> sizes;
  std::unordered_map<ObjectId, size_t> index_of;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] : store.partition(pid).objects_by_offset()) {
      if (live.count(id) > 0) continue;
      const ObjectStore::ObjectInfo* info = store.Lookup(id);
      if (info == nullptr) continue;
      index_of.emplace(id, ids.size());
      ids.push_back(id);
      partitions.push_back(static_cast<PartitionId>(pid));
      sizes.push_back(info->size);
    }
  }
  const size_t n = ids.size();
  std::vector<std::vector<size_t>> out(n);
  for (size_t i = 0; i < n; ++i) {
    for (ObjectId child : store.Lookup(ids[i])->slots) {
      if (child.is_null()) continue;
      auto it = index_of.find(child);
      if (it != index_of.end()) out[i].push_back(it->second);
    }
  }

  GarbageAnatomy anatomy;
  if (n == 0) return anatomy;

  // SCCs by mutual reachability (naive O(n * edges) closure — the
  // reference favours obviousness over speed).
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t s = 0; s < n; ++s) {
    std::deque<size_t> queue{s};
    reach[s][s] = true;
    while (!queue.empty()) {
      const size_t v = queue.front();
      queue.pop_front();
      for (size_t w : out[v]) {
        if (!reach[s][w]) {
          reach[s][w] = true;
          queue.push_back(w);
        }
      }
    }
  }
  auto same_scc = [&](size_t a, size_t b) { return reach[a][b] && reach[b][a]; };

  // Stuck: reachable from any vertex of an SCC that contains a
  // cross-partition edge between two of its members.
  std::vector<bool> stuck(n, false);
  for (size_t v = 0; v < n; ++v) {
    for (size_t w : out[v]) {
      if (same_scc(v, w) && partitions[v] != partitions[w]) {
        for (size_t x = 0; x < n; ++x) {
          if (reach[v][x]) stuck[x] = true;
        }
      }
    }
  }

  // Kept: census rule on the dead graph.
  std::vector<bool> kept(n, false);
  std::deque<size_t> queue;
  for (size_t v = 0; v < n; ++v) {
    for (size_t w : out[v]) {
      if (partitions[v] != partitions[w] && !kept[w]) {
        kept[w] = true;
        queue.push_back(w);
      }
    }
  }
  while (!queue.empty()) {
    const size_t v = queue.front();
    queue.pop_front();
    for (size_t w : out[v]) {
      if (partitions[v] == partitions[w] && !kept[w]) {
        kept[w] = true;
        queue.push_back(w);
      }
    }
  }

  for (size_t v = 0; v < n; ++v) {
    if (stuck[v]) {
      anatomy.cross_partition_cycle_bytes += sizes[v];
    } else if (kept[v]) {
      anatomy.nepotism_bytes += sizes[v];
    } else {
      anatomy.locally_collectable_bytes += sizes[v];
    }
  }
  return anatomy;
}

void ExpectSameCensus(const GarbageCensus& a, const GarbageCensus& b) {
  EXPECT_EQ(a.garbage_bytes_per_partition, b.garbage_bytes_per_partition);
  EXPECT_EQ(a.garbage_objects_per_partition, b.garbage_objects_per_partition);
  EXPECT_EQ(a.collectable_bytes_per_partition,
            b.collectable_bytes_per_partition);
  EXPECT_EQ(a.total_garbage_bytes, b.total_garbage_bytes);
  EXPECT_EQ(a.total_garbage_objects, b.total_garbage_objects);
  EXPECT_EQ(a.total_collectable_bytes, b.total_collectable_bytes);
  EXPECT_EQ(a.total_live_bytes, b.total_live_bytes);
  EXPECT_EQ(a.total_live_objects, b.total_live_objects);
}

void ExpectSameAnatomy(const GarbageAnatomy& a, const GarbageAnatomy& b) {
  EXPECT_EQ(a.locally_collectable_bytes, b.locally_collectable_bytes);
  EXPECT_EQ(a.nepotism_bytes, b.nepotism_bytes);
  EXPECT_EQ(a.cross_partition_cycle_bytes, b.cross_partition_cycle_bytes);
}

// ---------------------------------------------------------------------------

class CensusEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  CensusEquivalenceTest() {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 8;
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(), buffer_.get());
  }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_P(CensusEquivalenceTest, RandomizedStoresMatchReference) {
  std::mt19937_64 rng(GetParam());
  auto uniform = [&rng](uint32_t n) {
    return static_cast<uint32_t>(rng() % n);
  };

  constexpr uint32_t kSlots = 3;
  std::vector<ObjectId> objects;
  std::vector<ObjectId> roots;

  // One analyzer across every comparison point: censuses and anatomies
  // interleave on the same instance, exercising epoch reuse and the
  // shared aux-stamp scratch.
  ReachabilityAnalyzer analyzer;

  const auto compare_now = [&](uint64_t step) {
    SCOPED_TRACE("step " + std::to_string(step));
    ExpectSameCensus(analyzer.Census(*store_), ReferenceCensus(*store_));
    ExpectSameAnatomy(analyzer.Anatomy(*store_), ReferenceAnatomy(*store_));
    // The convenience wrappers (transient analyzer) agree too.
    ExpectSameCensus(ComputeGarbageCensus(*store_), ReferenceCensus(*store_));
  };

  compare_now(0);  // Empty store.

  for (uint64_t step = 1; step <= 400; ++step) {
    switch (uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Allocate, sometimes near a random parent.
        const ObjectId parent =
            (!objects.empty() && uniform(2) == 0)
                ? objects[uniform(static_cast<uint32_t>(objects.size()))]
                : kNullObjectId;
        const uint32_t size =
            static_cast<uint32_t>(MinObjectSize(kSlots)) + uniform(120);
        auto id = store_->Allocate(size, kSlots, parent);
        ASSERT_TRUE(id.ok());
        objects.push_back(*id);
        if (roots.empty() || uniform(8) == 0) {
          ASSERT_TRUE(store_->AddRoot(*id).ok());
          roots.push_back(*id);
        }
        break;
      }
      case 4:
      case 5:
      case 6: {  // Random pointer store (links and unlinks alike).
        if (objects.empty()) break;
        const ObjectId source =
            objects[uniform(static_cast<uint32_t>(objects.size()))];
        const ObjectId target =
            uniform(5) == 0
                ? kNullObjectId
                : objects[uniform(static_cast<uint32_t>(objects.size()))];
        ASSERT_TRUE(
            store_->WriteSlot(source, uniform(kSlots), target).ok());
        break;
      }
      case 7: {  // Remove a root (creates garbage trees).
        if (roots.size() < 2) break;
        const uint32_t at = uniform(static_cast<uint32_t>(roots.size()));
        ASSERT_TRUE(store_->RemoveRoot(roots[at]).ok());
        roots.erase(roots.begin() + at);
        break;
      }
      case 8: {  // Drop a non-root outright (dangling slots elsewhere).
        if (objects.size() < 4) break;
        const uint32_t at = uniform(static_cast<uint32_t>(objects.size()));
        const ObjectId victim = objects[at];
        if (std::find(roots.begin(), roots.end(), victim) != roots.end()) {
          break;  // The store refuses to drop roots.
        }
        ASSERT_TRUE(store_->DropObject(victim).ok());
        objects.erase(objects.begin() + at);
        break;
      }
      case 9:
        break;  // Quiet step.
    }
    if (step % 40 == 0) compare_now(step);
  }
  compare_now(401);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CensusEquivalenceTest,
                         ::testing::Values(3u, 17u, 2026u, 80501u));

}  // namespace
}  // namespace odbgc
