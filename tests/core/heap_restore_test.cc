// Checkpoint/restore at the heap level: a restored heap must behave like
// the original — same live graph, rebuilt remembered sets, working
// collections, recomputed weights.

#include <sstream>

#include <gtest/gtest.h>

#include "core/heap.h"
#include "core/reachability.h"
#include "odb/store_image.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(PolicyKind policy) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.policy = policy;
  config.heap.overwrite_trigger = 30;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 200ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

TEST(HeapRestoreTest, RestoredHeapMatchesOriginal) {
  SimulationConfig config = TinyConfig(PolicyKind::kUpdatedPointer);
  Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  CollectedHeap& original = simulator.heap();

  // Checkpoint through the serialized format, not just the in-memory
  // image.
  std::stringstream stream;
  ASSERT_TRUE(WriteStoreImage(original.ExtractImage(), &stream).ok());
  auto image = ReadStoreImage(&stream);
  ASSERT_TRUE(image.ok());

  auto restored = CollectedHeap::FromImage(config.heap, *image);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  CollectedHeap& heap = **restored;

  EXPECT_EQ(heap.store().object_count(), original.store().object_count());
  EXPECT_EQ(heap.store().live_bytes(), original.store().live_bytes());
  EXPECT_EQ(heap.store().roots(), original.store().roots());
  // The rebuilt index is exactly the original's (same entries).
  EXPECT_EQ(heap.index().entry_count(), original.index().entry_count());
  // Measurements start from zero.
  EXPECT_EQ(heap.total_io(), 0u);
  EXPECT_EQ(heap.stats().collections, 0u);

  // The garbage census agrees.
  const GarbageCensus a = ComputeGarbageCensus(original.store());
  const GarbageCensus b = ComputeGarbageCensus(heap.store());
  EXPECT_EQ(a.total_garbage_bytes, b.total_garbage_bytes);
  EXPECT_EQ(a.total_live_bytes, b.total_live_bytes);
}

TEST(HeapRestoreTest, RestoredHeapCollectsCorrectly) {
  SimulationConfig config = TinyConfig(PolicyKind::kUpdatedPointer);
  Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());

  auto restored = CollectedHeap::FromImage(
      config.heap, simulator.heap().ExtractImage());
  ASSERT_TRUE(restored.ok());
  CollectedHeap& heap = **restored;

  const GarbageCensus before = ComputeGarbageCensus(heap.store());
  // Collect every candidate once; live bytes must be preserved exactly.
  for (PartitionId p : heap.CollectionCandidates()) {
    ASSERT_TRUE(heap.CollectPartition(p).ok());
  }
  const GarbageCensus after = ComputeGarbageCensus(heap.store());
  EXPECT_EQ(after.total_live_bytes, before.total_live_bytes);
  EXPECT_LE(after.total_garbage_bytes, before.total_garbage_bytes);
  EXPECT_GT(heap.stats().garbage_bytes_reclaimed, 0u);
}

TEST(HeapRestoreTest, WeightsRecomputedForWeightedPointer) {
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 16;
  options.policy = PolicyKind::kWeightedPointer;
  options.overwrite_trigger = 0;
  CollectedHeap original(options);
  auto root = original.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(original.AddRoot(*root).ok());
  auto child = original.Allocate(100, 2, *root);
  auto grandchild = original.Allocate(100, 2, *child);
  ASSERT_TRUE(original.WriteSlot(*root, 0, *child).ok());
  ASSERT_TRUE(original.WriteSlot(*child, 0, *grandchild).ok());

  auto restored = CollectedHeap::FromImage(options, original.ExtractImage());
  ASSERT_TRUE(restored.ok());
  ASSERT_NE((*restored)->weights(), nullptr);
  EXPECT_EQ((*restored)->weights()->GetWeight(*root), 1);
  EXPECT_EQ((*restored)->weights()->GetWeight(*child), 2);
  EXPECT_EQ((*restored)->weights()->GetWeight(*grandchild), 3);
}

TEST(HeapRestoreTest, ContinuedWorkloadBehavesIdentically) {
  // Run half the workload, checkpoint, restore, and continue feeding the
  // *same* remaining trace to both the original and the restored heap:
  // the logical database must evolve identically. Collections are
  // disabled for this comparison — a checkpoint deliberately omits
  // policy hint state (it is heuristic, not semantic), so automatic
  // victim choices may differ after a restore.
  SimulationConfig config = TinyConfig(PolicyKind::kRandom);
  config.heap.overwrite_trigger = 0;
  VectorTraceSink trace;
  {
    WorkloadGenerator generator(config.workload, config.seed);
    ASSERT_TRUE(generator.Generate(&trace).ok());
  }
  const size_t half = trace.events().size() / 2;

  Simulator a(config);
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(a.Append(trace.events()[i]).ok());
  }
  auto restored = CollectedHeap::FromImage(config.heap,
                                           a.heap().ExtractImage());
  ASSERT_TRUE(restored.ok());
  a.heap().ResetMeasurement();

  // Feed the second half to both heaps through the raw heap API, using
  // the same logical-id mapping the simulator built. Instead of reaching
  // into the simulator, replay by object id equivalence: both heaps have
  // identical object tables, so ids map one-to-one.
  CollectedHeap& b = **restored;
  for (size_t i = half; i < trace.events().size(); ++i) {
    const TraceEvent& event = trace.events()[i];
    for (CollectedHeap* heap : {&a.heap(), &b}) {
      switch (event.kind) {
        case EventKind::kAlloc: {
          auto id = heap->Allocate(event.size, event.num_slots,
                                   ObjectId{event.parent_hint}, event.flags);
          ASSERT_TRUE(id.ok());
          break;
        }
        case EventKind::kWriteSlot:
          ASSERT_TRUE(heap->WriteSlot(ObjectId{event.object}, event.slot,
                                      ObjectId{event.target})
                          .ok());
          break;
        case EventKind::kReadSlot:
          ASSERT_TRUE(
              heap->ReadSlot(ObjectId{event.object}, event.slot).ok());
          break;
        case EventKind::kVisit:
          ASSERT_TRUE(heap->VisitObject(ObjectId{event.object}).ok());
          break;
        case EventKind::kWriteData:
          ASSERT_TRUE(heap->WriteData(ObjectId{event.object}).ok());
          break;
        case EventKind::kAddRoot:
          ASSERT_TRUE(heap->AddRoot(ObjectId{event.object}).ok());
          break;
        case EventKind::kRemoveRoot:
          ASSERT_TRUE(heap->RemoveRoot(ObjectId{event.object}).ok());
          break;
      }
    }
  }
  EXPECT_EQ(a.heap().stats().collections, b.stats().collections);
  EXPECT_EQ(a.heap().stats().garbage_bytes_reclaimed,
            b.stats().garbage_bytes_reclaimed);
  EXPECT_EQ(a.heap().store().live_bytes(), b.store().live_bytes());
}

}  // namespace
}  // namespace odbgc
