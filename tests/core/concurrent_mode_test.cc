// Result-neutrality of the concurrent-mode heap transformations
// (DESIGN.md §14): barrier-event buffering and epoch-deferred table-slot
// reclamation must leave every observable measurement identical to the
// plain serial heap — that is the whole premise the ConcurrentSimulator's
// equivalence contract rests on, checked here at the component level with
// a deterministic mutation script.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/heap.h"
#include "util/epoch.h"
#include "util/random.h"

namespace odbgc {
namespace {

HeapOptions SmallHeap(PolicyKind policy) {
  HeapOptions options;
  options.store.page_size = 512;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 16;
  options.policy = policy;
  options.overwrite_trigger = 10;
  return options;
}

/// Drives `heap` through a deterministic allocate/link/overwrite script.
/// In concurrent mode, ticks the epoch every `tick_every` operations
/// (0 = never tick mid-run), mimicking the pacer's batching.
void RunScript(CollectedHeap* heap, EpochManager* epochs, uint64_t seed,
               uint32_t tick_every) {
  Rng rng(seed);
  std::vector<ObjectId> objects;
  EpochManager::ThreadSlot* slot =
      epochs != nullptr ? epochs->RegisterThread() : nullptr;
  uint32_t since_tick = 0;
  for (int step = 0; step < 600; ++step) {
    if (slot != nullptr) epochs->Pin(slot);
    const uint64_t roll = rng.Next() % 10;
    if (objects.size() < 4 || roll < 3) {
      auto id = heap->Allocate(80 + rng.Next() % 60, 3);
      ASSERT_TRUE(id.ok());
      // Link from a random older object so most objects stay reachable;
      // root it instead when the chosen parent was already collected.
      const ObjectId parent =
          objects.empty() ? kNullObjectId
                          : objects[rng.Next() % objects.size()];
      if (rng.Next() % 4 == 0 || parent.is_null() ||
          !heap->store().Exists(parent)) {
        ASSERT_TRUE(heap->AddRoot(*id).ok());
      } else {
        ASSERT_TRUE(heap->WriteSlot(parent, rng.Next() % 3, *id).ok());
      }
      objects.push_back(*id);
    } else {
      // Overwrite a random edge — drives the trigger and makes garbage.
      const ObjectId source = objects[rng.Next() % objects.size()];
      const ObjectId target = objects[rng.Next() % objects.size()];
      if (heap->store().Exists(source) && heap->store().Exists(target)) {
        ASSERT_TRUE(heap->WriteSlot(source, rng.Next() % 3, target).ok());
      }
    }
    // Objects reclaimed by a triggered collection drop out of the pool.
    if (step % 50 == 49) {
      std::vector<ObjectId> alive;
      for (ObjectId id : objects) {
        if (heap->store().Exists(id)) alive.push_back(id);
      }
      objects.swap(alive);
    }
    if (slot != nullptr) {
      epochs->Unpin(slot);
      if (tick_every != 0 && ++since_tick >= tick_every) {
        since_tick = 0;
        epochs->BumpEpoch();
        heap->core().OnEpochTick();
      }
    }
  }
  if (slot != nullptr) {
    heap->core().OnEpochTick();
    heap->mutable_store().DrainDeferredSlots();
    epochs->UnregisterThread(slot);
  }
}

void ExpectHeapsEquivalent(const CollectedHeap& serial,
                           const CollectedHeap& concurrent) {
  EXPECT_EQ(serial.stats().collections, concurrent.stats().collections);
  EXPECT_EQ(serial.stats().pointer_stores, concurrent.stats().pointer_stores);
  EXPECT_EQ(serial.stats().pointer_overwrites,
            concurrent.stats().pointer_overwrites);
  EXPECT_EQ(serial.stats().objects_allocated,
            concurrent.stats().objects_allocated);
  EXPECT_EQ(serial.stats().bytes_allocated,
            concurrent.stats().bytes_allocated);
  EXPECT_EQ(serial.stats().garbage_bytes_reclaimed,
            concurrent.stats().garbage_bytes_reclaimed);
  EXPECT_EQ(serial.stats().live_bytes_copied,
            concurrent.stats().live_bytes_copied);
  EXPECT_EQ(serial.stats().max_total_bytes,
            concurrent.stats().max_total_bytes);
  EXPECT_EQ(serial.store().object_count(), concurrent.store().object_count());
  EXPECT_EQ(serial.store().live_bytes(), concurrent.store().live_bytes());
  EXPECT_EQ(serial.store().partition_count(),
            concurrent.store().partition_count());
  EXPECT_EQ(serial.index().entry_count(), concurrent.index().entry_count());
  EXPECT_EQ(serial.app_io(), concurrent.app_io());
  EXPECT_EQ(serial.gc_io(), concurrent.gc_io());
}

class ConcurrentModeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentModeTest, BufferedBarrierMatchesSerialHeap) {
  for (PolicyKind policy :
       {PolicyKind::kUpdatedPointer, PolicyKind::kMostGarbage}) {
    CollectedHeap serial(SmallHeap(policy));
    RunScript(&serial, nullptr, GetParam(), 0);

    EpochManager epochs;
    CollectedHeap concurrent(SmallHeap(policy));
    concurrent.core().EnableConcurrentMode(&epochs);
    RunScript(&concurrent, &epochs, GetParam(), 16);

    SCOPED_TRACE("policy " + std::string(PolicyName(policy)));
    ExpectHeapsEquivalent(serial, concurrent);
    EXPECT_EQ(concurrent.core().pending_barrier_events(), 0u);
    EXPECT_EQ(concurrent.store().deferred_slot_count(), 0u);
  }
}

TEST_P(ConcurrentModeTest, NeverTickingMidRunStillMatches) {
  // Extreme batching: all barrier events park until the first collection
  // or the final tick. Flush points alone must keep results identical.
  CollectedHeap serial(SmallHeap(PolicyKind::kUpdatedPointer));
  RunScript(&serial, nullptr, GetParam(), 0);

  EpochManager epochs;
  CollectedHeap concurrent(SmallHeap(PolicyKind::kUpdatedPointer));
  concurrent.core().EnableConcurrentMode(&epochs);
  RunScript(&concurrent, &epochs, GetParam(), 0);

  ExpectHeapsEquivalent(serial, concurrent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentModeTest,
                         ::testing::Values(101, 102, 103, 104));

TEST(ConcurrentModeTest, DeferredSlotsWaitForGracePeriod) {
  EpochManager epochs;
  CollectedHeap heap(SmallHeap(PolicyKind::kNoCollection));
  heap.core().EnableConcurrentMode(&epochs);
  EpochManager::ThreadSlot* mutator = epochs.RegisterThread();
  EpochManager::ThreadSlot* reader = epochs.RegisterThread();

  epochs.Pin(mutator);
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap.AddRoot(*a).ok());
  // A newer allocation takes over birth protection, leaving `b`
  // unreachable; the full collection drops it, retiring its table slot
  // under the current epoch.
  ASSERT_TRUE(heap.Allocate(100, 2, *a).ok());
  epochs.Pin(reader);  // A concurrent reader holds the epoch open.
  ASSERT_TRUE(heap.CollectFullDatabase().ok());
  EXPECT_GT(heap.store().deferred_slot_count(), 0u);
  epochs.Unpin(mutator);

  // Reclaim cannot run while the reader's pin predates the retirement.
  heap.core().OnEpochTick();
  EXPECT_GT(heap.store().deferred_slot_count(), 0u);

  // Once the reader unpins and the epoch advances, the slot frees.
  epochs.Unpin(reader);
  epochs.BumpEpoch();
  heap.core().OnEpochTick();
  EXPECT_EQ(heap.store().deferred_slot_count(), 0u);

  epochs.UnregisterThread(mutator);
  epochs.UnregisterThread(reader);
}

}  // namespace
}  // namespace odbgc
