// Precise I/O accounting properties of the copying collector: it reads
// only the pages live objects occupy (garbage-only pages are never
// touched — the mechanism behind "more garbage = cheaper collection"),
// and the per-collection deltas in the log sum to the heap's collector
// I/O total.

#include <gtest/gtest.h>

#include "core/heap.h"

namespace odbgc {
namespace {

HeapOptions ColdHeap() {
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 16;  // 4 KB partitions.
  options.buffer_pages = 64;
  options.policy = PolicyKind::kUpdatedPointer;
  options.overwrite_trigger = 0;
  return options;
}

TEST(CollectorIoTest, GarbageOnlyPagesNeverRead) {
  CollectedHeap heap(ColdHeap());
  // Layout in partition 0: one live 256-byte object (page 0), then
  // 2048 bytes of garbage (pages 1..8-ish), nothing else. Page-aligned
  // object sizes make the geometry exact.
  auto live = heap.Allocate(256, 2);  // Page 0.
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(heap.AddRoot(*live).ok());
  for (int i = 0; i < 8; ++i) {
    auto junk = heap.Allocate(256, 0);  // Pages 1..8.
    ASSERT_TRUE(junk.ok());
  }
  auto sentinel = heap.Allocate(100, 0);  // Displace newborn protection.
  ASSERT_TRUE(sentinel.ok());
  ASSERT_TRUE(heap.AddRoot(*sentinel).ok());

  ASSERT_TRUE(heap.mutable_buffer().FlushAll().ok());
  heap.mutable_buffer().DiscardExtent(PageExtent{0, heap.disk().num_pages()});

  auto result = heap.CollectPartition(0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->garbage_bytes_reclaimed, 8u * 256u);
  // Reads: the live object's page and the sentinel+live copies' target
  // pages; never the 8 garbage-only pages. Generous bound: under 6 reads
  // (vs 11+ if garbage pages were scanned).
  EXPECT_LE(result->page_reads, 6u);
  EXPECT_GE(result->page_reads, 1u);
}

TEST(CollectorIoTest, AllGarbagePartitionCostsNoPageReads) {
  CollectedHeap heap(ColdHeap());
  // Partition 0 (16 x 256-byte pages) is filled exactly with garbage; the
  // sentinel (rooted) lands in the next allocatable partition. A copying
  // collector reclaims the whole partition by resetting it — without
  // reading a single garbage page.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(heap.Allocate(256, 0).ok());
  }
  auto sentinel = heap.Allocate(100, 0);
  ASSERT_TRUE(sentinel.ok());
  ASSERT_TRUE(heap.AddRoot(*sentinel).ok());
  const PartitionId sentinel_partition =
      heap.store().Lookup(*sentinel)->partition;

  ASSERT_TRUE(heap.mutable_buffer().FlushAll().ok());
  heap.mutable_buffer().DiscardExtent(PageExtent{0, heap.disk().num_pages()});

  // Pick a victim partition that holds only garbage.
  PartitionId victim = kInvalidPartition;
  for (PartitionId p : heap.CollectionCandidates()) {
    if (p != sentinel_partition) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidPartition);
  auto result = heap.CollectPartition(victim);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->garbage_bytes_reclaimed, 0u);
  EXPECT_EQ(result->live_objects_copied, 0u);
  EXPECT_EQ(result->page_reads, 0u)
      << "reclaiming pure garbage must not read its pages";
  EXPECT_EQ(result->page_writes, 0u);
}

TEST(CollectorIoTest, CollectionLogDeltasSumToGcIo) {
  HeapOptions options = ColdHeap();
  options.overwrite_trigger = 5;
  options.buffer_pages = 8;  // Small buffer: real disk traffic.
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());

  // Churn: chains created and cut to force many triggered collections.
  ObjectId chain = *root;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 5; ++i) {
      auto node = heap.Allocate(100, 3, chain);
      ASSERT_TRUE(node.ok());
      ASSERT_TRUE(heap.WriteSlot(chain, 0, *node).ok());
      chain = *node;
    }
    auto cut = heap.ReadSlot(*root, 0);
    ASSERT_TRUE(cut.ok());
    ASSERT_TRUE(heap.WriteSlot(*root, 0, kNullObjectId).ok());
    chain = *root;
  }
  ASSERT_GT(heap.stats().collections, 5u);

  uint64_t log_reads = 0, log_writes = 0;
  for (const CollectionResult& entry : heap.collection_log()) {
    log_reads += entry.page_reads;
    log_writes += entry.page_writes;
  }
  EXPECT_EQ(log_reads, heap.buffer().stats().reads_gc);
  EXPECT_EQ(log_writes, heap.buffer().stats().writes_gc);
  EXPECT_EQ(heap.gc_io(), log_reads + log_writes);
}

TEST(CollectorIoTest, CopyCostTracksLiveBytes) {
  // Two identical partitions except for live fraction: collecting the
  // livelier one must cost more I/O.
  auto measure = [](int live_objects) -> uint64_t {
    CollectedHeap heap(ColdHeap());
    auto root = heap.Allocate(100, 3);
    EXPECT_TRUE(root.ok());
    EXPECT_TRUE(heap.AddRoot(*root).ok());
    ObjectId chain = *root;
    for (int i = 0; i < 12; ++i) {
      auto id = heap.Allocate(256, 3);
      EXPECT_TRUE(id.ok());
      if (i < live_objects) {
        EXPECT_TRUE(heap.WriteSlot(chain, 0, *id).ok());
        chain = *id;
      }
    }
    EXPECT_TRUE(heap.mutable_buffer().FlushAll().ok());
    heap.mutable_buffer().DiscardExtent(
        PageExtent{0, heap.disk().num_pages()});
    auto result = heap.CollectPartition(0);
    EXPECT_TRUE(result.ok());
    return result->page_reads + result->page_writes;
  };
  const uint64_t mostly_garbage = measure(2);
  const uint64_t mostly_live = measure(10);
  EXPECT_LT(mostly_garbage, mostly_live);
}

}  // namespace
}  // namespace odbgc
