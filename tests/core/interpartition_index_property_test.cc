// Model-based equivalence test for the flat InterPartitionIndex: a
// randomized stream of add/remove/move/die operations is applied both to
// the real index and to a deliberately naive reference model (a flat list
// of entries plus an object->partition map, queried by linear scans — the
// semantics of the original unordered_map<PartitionId, std::set<ObjectId>>
// implementation without any of its structure). Every query surface must
// agree at every step.
#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/remembered_set.h"

namespace odbgc {
namespace {

struct ModelEntry {
  ObjectId source;
  uint32_t slot;
  ObjectId target;
};

/// The reference model. Entries keep insertion order (the real index's
/// per-object lists are order-preserving); partitions live in a side map
/// updated by moves, exactly like the record partitions of the real index.
class ReferenceIndex {
 public:
  void AddReference(ObjectId source, PartitionId source_partition,
                    uint32_t slot, ObjectId target,
                    PartitionId target_partition) {
    entries_.push_back({source, slot, target});
    partition_[source] = source_partition;
    partition_[target] = target_partition;
  }

  void RemoveReference(ObjectId source, uint32_t slot, ObjectId target) {
    // The real index is a no-op unless the (source, slot) location is
    // recorded for `target`; the first matching entry is removed.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->source == source && it->slot == slot && it->target == target) {
        entries_.erase(it);
        return;
      }
    }
  }

  void OnObjectMoved(ObjectId object, PartitionId from, PartitionId to) {
    auto it = partition_.find(object);
    if (it != partition_.end() && it->second == from) it->second = to;
  }

  void RemoveOutPointersOf(ObjectId source) {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const ModelEntry& e) {
                                    return e.source == source;
                                  }),
                   entries_.end());
  }

  bool HasExternalReferences(ObjectId target) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const ModelEntry& e) { return e.target == target; });
  }

  size_t entry_count() const { return entries_.size(); }

  std::vector<ObjectId> TargetsInPartition(PartitionId p) const {
    std::vector<ObjectId> ids;
    for (const ModelEntry& e : entries_) {
      if (PartitionOf(e.target) == p) ids.push_back(e.target);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  }

  std::vector<ObjectId> SourcesInPartition(PartitionId p) const {
    std::vector<ObjectId> ids;
    for (const ModelEntry& e : entries_) {
      if (PartitionOf(e.source) == p) ids.push_back(e.source);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  }

  size_t EntryCountForPartition(PartitionId p) const {
    size_t n = 0;
    for (const ModelEntry& e : entries_) {
      if (PartitionOf(e.target) == p) ++n;
    }
    return n;
  }

  std::vector<PointerLocation> EntriesForTarget(ObjectId target) const {
    std::vector<PointerLocation> locations;
    for (const ModelEntry& e : entries_) {
      if (e.target == target) locations.push_back({e.source, e.slot});
    }
    return locations;
  }

  std::vector<std::pair<uint32_t, ObjectId>> OutPointersOfSource(
      ObjectId source) const {
    std::vector<std::pair<uint32_t, ObjectId>> outs;
    for (const ModelEntry& e : entries_) {
      if (e.source == source) outs.emplace_back(e.slot, e.target);
    }
    return outs;
  }

  const std::vector<ModelEntry>& entries() const { return entries_; }

  PartitionId PartitionOf(ObjectId id) const {
    auto it = partition_.find(id);
    return it == partition_.end() ? kInvalidPartition : it->second;
  }

 private:
  std::vector<ModelEntry> entries_;
  std::map<ObjectId, PartitionId> partition_;
};

class IndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

void ExpectSameState(const InterPartitionIndex& index,
                     const ReferenceIndex& model, uint32_t num_objects,
                     uint32_t num_partitions, uint64_t step) {
  SCOPED_TRACE("step " + std::to_string(step));
  EXPECT_EQ(index.entry_count(), model.entry_count());
  for (PartitionId p = 0; p < num_partitions; ++p) {
    EXPECT_EQ(index.ExternalTargetsInPartition(p), model.TargetsInPartition(p))
        << "targets of partition " << p;
    EXPECT_EQ(index.SourcesInPartition(p), model.SourcesInPartition(p))
        << "sources of partition " << p;
    EXPECT_EQ(index.EntryCountForPartition(p), model.EntryCountForPartition(p))
        << "entry count of partition " << p;
    // The zero-copy spans must agree with their copying counterparts.
    const auto targets_view = index.ExternalTargets(p);
    EXPECT_EQ(std::vector<ObjectId>(targets_view.begin(), targets_view.end()),
              index.ExternalTargetsInPartition(p));
    const auto sources_view = index.Sources(p);
    EXPECT_EQ(std::vector<ObjectId>(sources_view.begin(), sources_view.end()),
              index.SourcesInPartition(p));
  }
  for (uint64_t o = 1; o <= num_objects; ++o) {
    const ObjectId id{o};
    EXPECT_EQ(index.HasExternalReferences(id), model.HasExternalReferences(id))
        << "object " << o;
    const auto expected_locations = model.EntriesForTarget(id);
    const auto* locations = index.EntriesForTarget(id);
    if (expected_locations.empty()) {
      EXPECT_EQ(locations, nullptr) << "object " << o;
    } else {
      ASSERT_NE(locations, nullptr) << "object " << o;
      EXPECT_EQ(std::vector<PointerLocation>(locations->begin(),
                                             locations->end()),
                expected_locations)
          << "object " << o;
    }
    const auto expected_outs = model.OutPointersOfSource(id);
    const auto* outs = index.OutPointersOfSource(id);
    if (expected_outs.empty()) {
      EXPECT_EQ(outs, nullptr) << "object " << o;
    } else {
      ASSERT_NE(outs, nullptr) << "object " << o;
      EXPECT_EQ((std::vector<std::pair<uint32_t, ObjectId>>(outs->begin(),
                                                            outs->end())),
                expected_outs)
          << "object " << o;
    }
  }
}

TEST_P(IndexPropertyTest, MatchesReferenceModelOverRandomOperations) {
  constexpr uint32_t kObjects = 48;
  constexpr uint32_t kPartitions = 6;
  constexpr uint32_t kSlots = 4;
  constexpr uint64_t kSteps = 3000;

  std::mt19937_64 rng(GetParam());
  auto uniform = [&rng](uint32_t n) {
    return static_cast<uint32_t>(rng() % n);
  };

  InterPartitionIndex index;
  ReferenceIndex model;
  // Ground-truth object placement, shared by both sides.
  std::vector<PartitionId> part(kObjects + 1);
  for (uint64_t o = 1; o <= kObjects; ++o) {
    part[o] = static_cast<PartitionId>(uniform(kPartitions));
  }

  for (uint64_t step = 0; step < kSteps; ++step) {
    switch (uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Add an inter-partition reference.
        const ObjectId source{1 + uniform(kObjects)};
        const ObjectId target{1 + uniform(kObjects)};
        if (part[source.value] == part[target.value]) break;
        const uint32_t slot = uniform(kSlots);
        index.AddReference(source, part[source.value], slot, target,
                           part[target.value]);
        model.AddReference(source, part[source.value], slot, target,
                           part[target.value]);
        break;
      }
      case 4:
      case 5: {  // Remove one recorded reference.
        if (model.entries().empty()) break;
        const ModelEntry e = model.entries()[uniform(
            static_cast<uint32_t>(model.entries().size()))];
        index.RemoveReference(e.source, e.slot, e.target);
        model.RemoveReference(e.source, e.slot, e.target);
        break;
      }
      case 6: {  // Remove a (mostly) bogus reference: both no-op alike.
        const ObjectId source{1 + uniform(kObjects)};
        const ObjectId target{1 + uniform(kObjects)};
        const uint32_t slot = uniform(kSlots);
        index.RemoveReference(source, slot, target);
        model.RemoveReference(source, slot, target);
        break;
      }
      case 7: {  // Move an object between partitions.
        const ObjectId object{1 + uniform(kObjects)};
        const PartitionId to = static_cast<PartitionId>(uniform(kPartitions));
        const PartitionId from = part[object.value];
        if (from == to) break;
        // Moving an object into a partition it points at (or is pointed
        // at from) would create intra-partition entries; the real heap
        // never does that, so the generator skips those moves.
        bool conflict = false;
        for (const ModelEntry& e : model.entries()) {
          if ((e.source == object && part[e.target.value] == to) ||
              (e.target == object && part[e.source.value] == to)) {
            conflict = true;
            break;
          }
        }
        if (conflict) break;
        part[object.value] = to;
        index.OnObjectMoved(object, from, to);
        model.OnObjectMoved(object, from, to);
        break;
      }
      case 8: {  // An unreferenced object dies.
        const ObjectId object{1 + uniform(kObjects)};
        if (model.HasExternalReferences(object)) break;
        index.OnObjectDied(object, part[object.value]);
        model.RemoveOutPointersOf(object);
        break;
      }
      case 9: {  // Wholesale out-pointer retirement (global collection).
        const ObjectId object{1 + uniform(kObjects)};
        index.RemoveOutPointersOf(object, part[object.value]);
        model.RemoveOutPointersOf(object);
        break;
      }
    }
    if (step % 100 == 0 || step + 1 == kSteps) {
      ExpectSameState(index, model, kObjects, kPartitions, step);
      if (::testing::Test::HasFailure()) return;
    }
  }
  ExpectSameState(index, model, kObjects, kPartitions, kSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace odbgc
