// Property tests over whole heap runs: for every policy and several seeds,
// replay a scaled-down paper workload and check the invariants that define
// a correct partitioned collector — no live object is ever lost, shadow
// state matches the serialized pages, the inter-partition index is exactly
// the set of inter-partition pointers, and physical layouts never overlap.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/reachability.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(PolicyKind policy, uint64_t seed) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;  // 16 KB partitions.
  config.heap.buffer_pages = 16;
  config.heap.policy = policy;
  config.heap.overwrite_trigger = 25;
  config.seed = seed;

  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 256ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  config.workload.large_space_fraction = 0.15;
  return config;
}

struct Params {
  PolicyKind policy;
  uint64_t seed;
};

class HeapPropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(HeapPropertyTest, InvariantsHoldAfterFullRun) {
  const Params params = GetParam();
  Simulator simulator(TinyConfig(params.policy, params.seed));
  ASSERT_TRUE(simulator.Run().ok());

  CollectedHeap& heap = simulator.heap();
  const ObjectStore& store = heap.store();
  if (params.policy != PolicyKind::kNoCollection) {
    ASSERT_GT(heap.stats().collections, 2u) << "workload must trigger GC";
  }

  // --- 1. Reachability closure: every object reachable from the roots
  // exists (nothing live was ever reclaimed). ComputeLiveSet itself
  // asserts existence via Lookup; verify roots exist and are closed.
  const auto live = ComputeLiveSet(store);
  for (ObjectId root : store.roots()) {
    ASSERT_TRUE(store.Exists(root));
  }
  for (ObjectId id : live) {
    const auto* info = store.Lookup(id);
    ASSERT_NE(info, nullptr) << "live object " << id.value << " lost";
    for (ObjectId child : info->slots) {
      if (!child.is_null()) {
        ASSERT_TRUE(store.Exists(child))
            << "live object " << id.value << " points at missing "
            << child.value;
      }
    }
  }

  // --- 2. Physical layout: within each partition, objects are disjoint,
  // in-bounds, and the roster agrees with the object table.
  size_t roster_total = 0;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    const Partition& partition = store.partition(pid);
    uint32_t prev_end = 0;
    for (const auto& [offset, id] : partition.objects_by_offset()) {
      const auto* info = store.Lookup(id);
      ASSERT_NE(info, nullptr);
      ASSERT_EQ(info->partition, pid);
      ASSERT_EQ(info->offset, offset);
      ASSERT_GE(offset, prev_end) << "objects overlap in partition " << pid;
      prev_end = offset + info->size;
      ASSERT_LE(prev_end, partition.allocated_bytes());
      ++roster_total;
    }
  }
  ASSERT_EQ(roster_total, store.object_count());

  // --- 3. Serialized state: a sample of objects decode from their pages
  // with exactly the shadow metadata and slot values.
  size_t checked = 0;
  for (size_t pid = 0; pid < store.partition_count() && checked < 64;
       ++pid) {
    for (const auto& [offset, id] :
         store.partition(pid).objects_by_offset()) {
      const auto* info = store.Lookup(id);
      auto header = heap.mutable_store().ReadHeaderFromPages(id);
      ASSERT_TRUE(header.ok()) << header.status().ToString();
      ASSERT_EQ(header->id, id);
      ASSERT_EQ(header->size, info->size);
      ASSERT_EQ(header->num_slots, info->num_slots);
      for (uint32_t s = 0; s < info->num_slots; ++s) {
        auto slot = heap.mutable_store().ReadSlotFromPages(id, s);
        ASSERT_TRUE(slot.ok());
        ASSERT_EQ(*slot, info->slots[s]) << "shadow/page divergence";
      }
      if (++checked >= 64) break;
    }
  }

  // --- 4. The inter-partition index is exactly the set of cross-partition
  // pointers in the store.
  std::set<std::tuple<uint64_t, uint32_t, uint64_t>> expected;
  for (size_t pid = 0; pid < store.partition_count(); ++pid) {
    for (const auto& [offset, id] :
         store.partition(pid).objects_by_offset()) {
      const auto* info = store.Lookup(id);
      for (uint32_t s = 0; s < info->num_slots; ++s) {
        const ObjectId target = info->slots[s];
        if (target.is_null()) continue;
        const auto* target_info = store.Lookup(target);
        ASSERT_NE(target_info, nullptr);
        if (target_info->partition != info->partition) {
          expected.insert({id.value, s, target.value});
        }
      }
    }
  }
  const InterPartitionIndex& index = heap.index();
  ASSERT_EQ(index.entry_count(), expected.size());
  for (const auto& [source, slot, target] : expected) {
    const auto* entries = index.EntriesForTarget(ObjectId{target});
    ASSERT_NE(entries, nullptr);
    bool found = false;
    for (const auto& loc : *entries) {
      if (loc.source == ObjectId{source} && loc.slot == slot) found = true;
    }
    ASSERT_TRUE(found) << "missing remset entry " << source << "." << slot
                       << " -> " << target;
  }

  // --- 5. Accounting: reclaimed + remaining garbage + live equals
  // everything ever allocated.
  const GarbageCensus census = ComputeGarbageCensus(store);
  EXPECT_EQ(heap.stats().bytes_allocated,
            census.total_live_bytes + census.total_garbage_bytes +
                heap.stats().garbage_bytes_reclaimed);
  EXPECT_EQ(store.live_bytes(),
            census.total_live_bytes + census.total_garbage_bytes);

  // --- 6. The reserved empty partition really is empty.
  const PartitionId empty = store.empty_partition();
  EXPECT_EQ(store.partition(empty).object_count(), 0u);
  EXPECT_EQ(store.partition(empty).allocated_bytes(), 0u);
}

std::vector<Params> AllParams() {
  std::vector<Params> params;
  for (PolicyKind policy : AllPolicyKinds()) {
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      params.push_back({policy, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, HeapPropertyTest, ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::string(PolicyName(info.param.policy)) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace odbgc
