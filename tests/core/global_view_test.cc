// GlobalView (core/selection_policy.h) and the PoolPressure exemplar
// policy: null view == plain UpdatedPointer behaviour (the single-heap
// degradation contract), bound view == pressure-boosted scores with
// unchanged within-heap victim choice.

#include "core/extension_policies.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/selection_policy.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

SlotWriteEvent OverwriteInto(PartitionId old_target_partition) {
  SlotWriteEvent event;
  event.source = ObjectId{1};
  event.source_partition = 0;
  event.old_target = ObjectId{2};
  event.old_target_partition = old_target_partition;
  event.new_target = ObjectId{3};
  event.new_target_partition = 0;
  return event;
}

TEST(GlobalViewTest, FractionsDegradeToZeroWhenUnset) {
  GlobalView view;
  EXPECT_DOUBLE_EQ(view.OccupancyFraction(), 0.0);
  EXPECT_DOUBLE_EQ(view.TenantPressure(), 0.0);
}

TEST(GlobalViewTest, FractionsReflectTheLedger) {
  GlobalView view;
  view.shared_pool_frames = 200;
  view.shared_resident_frames = 150;
  view.tenant_frame_cap = 40;
  view.tenant_resident_frames = 30;
  EXPECT_DOUBLE_EQ(view.OccupancyFraction(), 0.75);
  EXPECT_DOUBLE_EQ(view.TenantPressure(), 0.75);
}

TEST(GlobalViewTest, PolicyContextDefaultsToNoView) {
  PolicyContext context;
  EXPECT_EQ(context.global, nullptr);
}

TEST(PoolPressurePolicyTest, IsRegistered) {
  EXPECT_TRUE(IsPolicyRegistered("PoolPressure"));
  auto policy = MakePolicy("PoolPressure", 1);
  ASSERT_TRUE(policy.status().ok());
  EXPECT_EQ((*policy)->name(), "PoolPressure");
  EXPECT_EQ((*policy)->kind(), PolicyKind::kUpdatedPointer);
}

TEST(PoolPressurePolicyTest, NullViewScoresAreRawOverwriteCounts) {
  PoolPressurePolicy policy(nullptr);
  policy.OnPointerStore(OverwriteInto(3), 0);
  policy.OnPointerStore(OverwriteInto(3), 0);
  policy.OnPointerStore(OverwriteInto(5), 0);
  EXPECT_DOUBLE_EQ(policy.Score(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.Score(5), 1.0);
  EXPECT_DOUBLE_EQ(policy.Score(7), 0.0);

  SelectionContext context;
  context.candidates = {3, 5, 7};
  EXPECT_EQ(policy.Select(context), 3u);
}

TEST(PoolPressurePolicyTest, BoundViewBoostsScoresUniformly) {
  GlobalView view;
  view.shared_pool_frames = 100;
  view.shared_resident_frames = 80;  // occupancy 0.8
  view.tenant_frame_cap = 16;
  view.tenant_resident_frames = 8;  // pressure 0.5

  PoolPressurePolicy policy(&view);
  policy.OnPointerStore(OverwriteInto(3), 0);
  policy.OnPointerStore(OverwriteInto(3), 0);
  policy.OnPointerStore(OverwriteInto(5), 0);

  // score = hits * (1 + 0.8 * 0.5) = hits * 1.4
  EXPECT_DOUBLE_EQ(policy.Score(3), 2.0 * 1.4);
  EXPECT_DOUBLE_EQ(policy.Score(5), 1.0 * 1.4);

  // The boost is a common factor: within-heap victim choice is identical
  // to UpdatedPointer's.
  SelectionContext context;
  context.candidates = {3, 5};
  EXPECT_EQ(policy.Select(context), 3u);

  // The host refreshes the view in place; the policy reads live values.
  view.shared_resident_frames = 0;
  EXPECT_DOUBLE_EQ(policy.Score(3), 2.0);
}

TEST(PoolPressurePolicyTest, CollectionResetsTheCounter) {
  PoolPressurePolicy policy(nullptr);
  policy.OnPointerStore(OverwriteInto(3), 0);
  policy.OnPartitionCollected(3);
  EXPECT_DOUBLE_EQ(policy.Score(3), 0.0);
}

TEST(PoolPressurePolicyTest, NonOverwriteStoresDoNotCount) {
  PoolPressurePolicy policy(nullptr);
  SlotWriteEvent initializing;
  initializing.source = ObjectId{1};
  initializing.source_partition = 0;
  initializing.new_target = ObjectId{2};
  initializing.new_target_partition = 3;
  policy.OnPointerStore(initializing, 0);  // old_target null: not an overwrite.
  EXPECT_DOUBLE_EQ(policy.Score(3), 0.0);
}

// End-to-end degradation: a full simulation under "PoolPressure" with no
// GlobalView bound produces the same trajectory as "UpdatedPointer" —
// every counter equal; only the policy identity differs.
TEST(PoolPressurePolicyTest, UnboundRunMatchesUpdatedPointer) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 25;
  config.workload.target_live_bytes = 64ull << 10;
  config.workload.total_alloc_bytes = 160ull << 10;
  config.workload.tree_nodes_min = 50;
  config.workload.tree_nodes_max = 150;
  config.workload.large_object_size = 4096;
  config.seed = 11;

  config.heap.policy_name = "UpdatedPointer";
  Simulator baseline(config);
  ASSERT_TRUE(baseline.Run().ok());
  const SimulationResult expected = baseline.Finish();

  config.heap.policy_name = "PoolPressure";
  Simulator pressured(config);
  ASSERT_TRUE(pressured.Run().ok());
  const SimulationResult actual = pressured.Finish();

  EXPECT_GT(expected.collections, 0u);
  EXPECT_EQ(actual.app_io, expected.app_io);
  EXPECT_EQ(actual.gc_io, expected.gc_io);
  EXPECT_EQ(actual.collections, expected.collections);
  EXPECT_EQ(actual.garbage_reclaimed_bytes, expected.garbage_reclaimed_bytes);
  EXPECT_EQ(actual.live_bytes_copied, expected.live_bytes_copied);
  EXPECT_EQ(actual.max_storage_bytes, expected.max_storage_bytes);
  EXPECT_EQ(actual.unreclaimed_garbage_bytes,
            expected.unreclaimed_garbage_bytes);
  EXPECT_EQ(actual.final_live_bytes, expected.final_live_bytes);
}

}  // namespace
}  // namespace odbgc
