#include "core/remembered_set.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

constexpr ObjectId A{1}, B{2}, C{3}, D{4};

TEST(InterPartitionIndexTest, AddAndQuery) {
  InterPartitionIndex index;
  index.AddReference(A, /*src_part=*/0, /*slot=*/1, B, /*dst_part=*/2);

  EXPECT_EQ(index.entry_count(), 1u);
  EXPECT_TRUE(index.HasExternalReferences(B));
  EXPECT_FALSE(index.HasExternalReferences(A));

  const auto* entries = index.EntriesForTarget(B);
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].source, A);
  EXPECT_EQ((*entries)[0].slot, 1u);

  EXPECT_EQ(index.ExternalTargetsInPartition(2),
            (std::vector<ObjectId>{B}));
  EXPECT_TRUE(index.ExternalTargetsInPartition(0).empty());
  EXPECT_EQ(index.SourcesInPartition(0), (std::vector<ObjectId>{A}));

  const auto* outs = index.OutPointersOfSource(A);
  ASSERT_NE(outs, nullptr);
  EXPECT_EQ((*outs)[0], (std::pair<uint32_t, ObjectId>{1, B}));
}

TEST(InterPartitionIndexTest, RemoveReference) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, B, 1);
  index.AddReference(C, 2, 0, B, 1);
  index.RemoveReference(A, 0, B);

  EXPECT_EQ(index.entry_count(), 1u);
  EXPECT_TRUE(index.HasExternalReferences(B));
  EXPECT_EQ(index.OutPointersOfSource(A), nullptr);
  EXPECT_TRUE(index.SourcesInPartition(0).empty());

  index.RemoveReference(C, 0, B);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_FALSE(index.HasExternalReferences(B));
  EXPECT_TRUE(index.ExternalTargetsInPartition(1).empty());
}

TEST(InterPartitionIndexTest, RemoveMissingIsNoop) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, B, 1);
  index.RemoveReference(A, 1, B);  // Wrong slot.
  index.RemoveReference(C, 0, B);  // Wrong source.
  index.RemoveReference(A, 0, C);  // Wrong target.
  EXPECT_EQ(index.entry_count(), 1u);
}

TEST(InterPartitionIndexTest, MultipleSlotsSameEdge) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, B, 1);
  index.AddReference(A, 0, 1, B, 1);
  EXPECT_EQ(index.entry_count(), 2u);
  index.RemoveReference(A, 0, B);
  EXPECT_EQ(index.entry_count(), 1u);
  EXPECT_TRUE(index.HasExternalReferences(B));
  const auto* outs = index.OutPointersOfSource(A);
  ASSERT_NE(outs, nullptr);
  EXPECT_EQ(outs->size(), 1u);
}

TEST(InterPartitionIndexTest, TargetsSortedById) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, D, 1);
  index.AddReference(A, 0, 1, B, 1);
  index.AddReference(C, 2, 0, B, 1);
  EXPECT_EQ(index.ExternalTargetsInPartition(1),
            (std::vector<ObjectId>{B, D}));
}

TEST(InterPartitionIndexTest, ObjectMovedRebuckets) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, B, 1);  // B is a target in partition 1.
  index.AddReference(B, 1, 0, C, 2);  // B is a source in partition 1.

  index.OnObjectMoved(B, /*from=*/1, /*to=*/3);
  EXPECT_TRUE(index.ExternalTargetsInPartition(1).empty());
  EXPECT_EQ(index.ExternalTargetsInPartition(3),
            (std::vector<ObjectId>{B}));
  EXPECT_TRUE(index.SourcesInPartition(1).empty());
  EXPECT_EQ(index.SourcesInPartition(3), (std::vector<ObjectId>{B}));
  // Entries themselves survive the move (ObjectIds are stable).
  EXPECT_TRUE(index.HasExternalReferences(B));
  EXPECT_EQ(index.entry_count(), 2u);
}

TEST(InterPartitionIndexTest, ObjectDiedRemovesItsOutPointers) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, B, 1);  // Dead A points at B.
  index.AddReference(A, 0, 1, C, 2);
  index.OnObjectDied(A, 0);

  // Exactly the paper's requirement: B and C must no longer look
  // externally referenced once the garbage holding pointers to them is
  // reclaimed.
  EXPECT_FALSE(index.HasExternalReferences(B));
  EXPECT_FALSE(index.HasExternalReferences(C));
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_TRUE(index.SourcesInPartition(0).empty());
}

TEST(InterPartitionIndexTest, EntryCountForPartition) {
  InterPartitionIndex index;
  index.AddReference(A, 0, 0, B, 1);
  index.AddReference(C, 2, 0, B, 1);
  index.AddReference(C, 2, 1, D, 1);
  EXPECT_EQ(index.EntryCountForPartition(1), 3u);
  EXPECT_EQ(index.EntryCountForPartition(0), 0u);
}

}  // namespace
}  // namespace odbgc
