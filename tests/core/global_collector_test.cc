#include "core/global_collector.h"

#include <gtest/gtest.h>

#include "core/heap.h"
#include "core/reachability.h"

namespace odbgc {
namespace {

HeapOptions SmallHeap() {
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 8;
  options.buffer_pages = 16;
  options.policy = PolicyKind::kUpdatedPointer;
  options.overwrite_trigger = 0;  // Manual collections only.
  return options;
}

// Allocates an object in a partition different from `avoid`, keeping the
// fillers alive under `anchor` (slot 2 chain).
ObjectId AllocElsewhere(CollectedHeap& heap, PartitionId avoid,
                        ObjectId* anchor) {
  for (int i = 0; i < 64; ++i) {
    auto id = heap.Allocate(100, 3);
    EXPECT_TRUE(id.ok());
    if (heap.store().Lookup(*id)->partition != avoid) return *id;
    EXPECT_TRUE(heap.WriteSlot(*anchor, 2, *id).ok());
    *anchor = *id;
  }
  ADD_FAILURE() << "could not escape partition " << avoid;
  return kNullObjectId;
}

TEST(GlobalCollectorTest, ReclaimsCrossPartitionDeadCycle) {
  CollectedHeap heap(SmallHeap());
  auto root = heap.Allocate(100, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  ObjectId anchor = *root;

  // Build x (A) <-> y (B), then cut the rooted edge to x.
  auto x = heap.Allocate(100, 3);
  ASSERT_TRUE(x.ok());
  const PartitionId part_a = heap.store().Lookup(*x)->partition;
  const ObjectId y = AllocElsewhere(heap, part_a, &anchor);
  ASSERT_TRUE(heap.WriteSlot(*x, 0, y).ok());
  ASSERT_TRUE(heap.WriteSlot(y, 0, *x).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *x).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, kNullObjectId).ok());

  // Partition-local collection can never reclaim the cycle: collect every
  // candidate twice and confirm both survive.
  for (int round = 0; round < 2; ++round) {
    for (PartitionId p : heap.CollectionCandidates()) {
      ASSERT_TRUE(heap.CollectPartition(p).ok());
    }
  }
  EXPECT_TRUE(heap.store().Exists(*x));
  EXPECT_TRUE(heap.store().Exists(y));

  // The global pass reclaims it.
  auto result = heap.CollectFullDatabase();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(heap.store().Exists(*x));
  EXPECT_FALSE(heap.store().Exists(y));
  EXPECT_GE(result->garbage_objects_reclaimed, 2u);
  EXPECT_EQ(heap.stats().full_collections, 1u);
  EXPECT_EQ(ComputeGarbageCensus(heap.store()).total_garbage_bytes, 0u);
}

TEST(GlobalCollectorTest, ReclaimsNepotismVictimsInOnePass) {
  CollectedHeap heap(SmallHeap());
  auto root = heap.Allocate(100, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  ObjectId anchor = *root;

  // Dead y (B) -> dead x (A): a single-partition collection of A keeps x.
  auto x = heap.Allocate(100, 3);
  ASSERT_TRUE(x.ok());
  const PartitionId part_a = heap.store().Lookup(*x)->partition;
  const ObjectId y = AllocElsewhere(heap, part_a, &anchor);
  ASSERT_TRUE(heap.WriteSlot(y, 0, *x).ok());
  // Displace newborn protection from y (it must be collectable garbage).
  auto sentinel = heap.Allocate(100, 3);
  ASSERT_TRUE(sentinel.ok());
  ASSERT_TRUE(heap.AddRoot(*sentinel).ok());

  auto result = heap.CollectFullDatabase();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(heap.store().Exists(*x));
  EXPECT_FALSE(heap.store().Exists(y));
  EXPECT_TRUE(heap.store().Exists(*root));
}

TEST(GlobalCollectorTest, PreservesLiveGraphAndCompacts) {
  CollectedHeap heap(SmallHeap());
  auto root = heap.Allocate(100, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  // A rooted chain across partitions plus interleaved garbage.
  ObjectId prev = *root;
  for (int i = 0; i < 60; ++i) {
    auto keep = heap.Allocate(100, 3, prev);
    auto junk = heap.Allocate(100, 3, prev);
    ASSERT_TRUE(keep.ok() && junk.ok());
    ASSERT_TRUE(heap.WriteSlot(prev, 0, *keep).ok());
    prev = *keep;
  }
  // Displace newborn protection from the last junk object.
  auto sentinel = heap.Allocate(100, 3);
  ASSERT_TRUE(sentinel.ok());
  ASSERT_TRUE(heap.AddRoot(*sentinel).ok());
  const uint64_t live_before =
      ComputeGarbageCensus(heap.store()).total_live_bytes;

  auto result = heap.CollectFullDatabase();
  ASSERT_TRUE(result.ok());
  const GarbageCensus after = ComputeGarbageCensus(heap.store());
  EXPECT_EQ(after.total_live_bytes, live_before);
  EXPECT_EQ(after.total_garbage_bytes, 0u);
  EXPECT_EQ(result->garbage_objects_reclaimed, 60u);
  EXPECT_EQ(result->live_objects_copied, 62u);  // Root + 60 keeps + sentinel.

  // Chain still intact.
  ObjectId cursor = *root;
  int length = 0;
  while (true) {
    auto next = heap.ReadSlot(cursor, 0);
    ASSERT_TRUE(next.ok());
    if (next->is_null()) break;
    cursor = *next;
    ++length;
  }
  EXPECT_EQ(length, 60);

  // The heap invariants survive: one reserved empty partition.
  const PartitionId empty = heap.store().empty_partition();
  EXPECT_EQ(heap.store().partition(empty).object_count(), 0u);
}

TEST(GlobalCollectorTest, ChargesCollectorIo) {
  CollectedHeap heap(SmallHeap());
  auto root = heap.Allocate(100, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(heap.Allocate(100, 3).ok());
  ASSERT_TRUE(heap.mutable_buffer().FlushAll().ok());

  const uint64_t gc_before = heap.gc_io();
  auto result = heap.CollectFullDatabase();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(heap.gc_io(), gc_before);
  EXPECT_EQ(result->page_reads + result->page_writes,
            heap.gc_io() - gc_before);
}

TEST(GlobalCollectorTest, PeriodicFullCollectionViaOption) {
  HeapOptions options = SmallHeap();
  options.overwrite_trigger = 4;
  options.full_collection_interval = 2;  // Full GC after every 2nd normal.
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 3);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 3);
  auto b = heap.Allocate(100, 3);
  ASSERT_TRUE(heap.AddRoot(*a).ok());
  ASSERT_TRUE(heap.AddRoot(*b).ok());
  ASSERT_TRUE(heap.WriteSlot(*root, 0, *a).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_GE(heap.stats().collections, 4u);
  EXPECT_EQ(heap.stats().full_collections, heap.stats().collections / 2);
}

TEST(GlobalCollectorTest, EmptyHeapIsFine) {
  CollectedHeap heap(SmallHeap());
  auto result = heap.CollectFullDatabase();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->garbage_objects_reclaimed, 0u);
  EXPECT_EQ(result->live_objects_copied, 0u);
}

}  // namespace
}  // namespace odbgc
