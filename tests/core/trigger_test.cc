// Tests for the when-to-collect alternatives (TriggerKind).

#include <gtest/gtest.h>

#include "core/heap.h"

namespace odbgc {
namespace {

HeapOptions Base() {
  HeapOptions options;
  options.store.page_size = 256;
  options.store.pages_per_partition = 8;  // 2 KB partitions.
  options.buffer_pages = 16;
  options.policy = PolicyKind::kRandom;
  options.overwrite_trigger = 0;
  return options;
}

TEST(TriggerTest, AllocatedBytesTriggerFires) {
  HeapOptions options = Base();
  options.trigger = TriggerKind::kAllocatedBytes;
  options.allocation_trigger_bytes = 1000;
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  // 100-byte objects: the 10th allocation crosses 1000 bytes.
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(heap.Allocate(100, 2).ok());
  EXPECT_EQ(heap.stats().collections, 1u);
  // Counter reset: the next collection needs a full 1000 bytes again.
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(heap.Allocate(100, 2).ok());
  EXPECT_EQ(heap.stats().collections, 1u);
  ASSERT_TRUE(heap.Allocate(100, 2).ok());
  EXPECT_EQ(heap.stats().collections, 2u);
}

TEST(TriggerTest, AllocatedBytesZeroDisables) {
  HeapOptions options = Base();
  options.trigger = TriggerKind::kAllocatedBytes;
  options.allocation_trigger_bytes = 0;
  CollectedHeap heap(options);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(heap.Allocate(100, 2).ok());
  EXPECT_EQ(heap.stats().collections, 0u);
}

TEST(TriggerTest, DatabaseGrowthTriggerFires) {
  HeapOptions options = Base();
  options.trigger = TriggerKind::kDatabaseGrowth;
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  const size_t initial_partitions = heap.store().partition_count();
  // Fill until the store must grow; the growth should be answered by a
  // collection.
  while (heap.store().partition_count() == initial_partitions) {
    ASSERT_TRUE(heap.Allocate(100, 2).ok());
  }
  EXPECT_GE(heap.stats().collections, 1u);
}

TEST(TriggerTest, OverwriteTriggerIgnoresOtherKinds) {
  // With kAllocatedBytes selected, overwrites alone must never trigger.
  HeapOptions options = Base();
  options.trigger = TriggerKind::kAllocatedBytes;
  options.allocation_trigger_bytes = 1 << 30;
  options.overwrite_trigger = 1;  // Would fire constantly if honoured.
  CollectedHeap heap(options);
  auto root = heap.Allocate(100, 2);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(heap.AddRoot(*root).ok());
  auto a = heap.Allocate(100, 2);
  auto b = heap.Allocate(100, 2);
  ASSERT_TRUE(heap.AddRoot(*a).ok());
  ASSERT_TRUE(heap.AddRoot(*b).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap.WriteSlot(*root, 0, i % 2 ? *a : *b).ok());
  }
  EXPECT_EQ(heap.stats().collections, 0u);
}

TEST(TriggerTest, NoCollectionPolicyOverridesAllTriggers) {
  for (TriggerKind kind :
       {TriggerKind::kPointerOverwrites, TriggerKind::kAllocatedBytes,
        TriggerKind::kDatabaseGrowth}) {
    HeapOptions options = Base();
    options.policy = PolicyKind::kNoCollection;
    options.trigger = kind;
    options.overwrite_trigger = 1;
    options.allocation_trigger_bytes = 100;
    CollectedHeap heap(options);
    for (int i = 0; i < 40; ++i) ASSERT_TRUE(heap.Allocate(100, 2).ok());
    EXPECT_EQ(heap.stats().collections, 0u);
  }
}

}  // namespace
}  // namespace odbgc
