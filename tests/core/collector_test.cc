#include "core/copying_collector.h"
#include "storage/disk.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/remembered_set.h"

namespace odbgc {
namespace {

// A hand-wired harness around the collector: a small store, the
// inter-partition index maintained through a write barrier identical to
// the heap's, and direct control over what gets collected.
class CollectorTest : public ::testing::Test, private SlotWriteObserver {
 protected:
  CollectorTest() {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 8;  // 2 KB partitions.
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(),
                                           buffer_.get());
    store_->set_slot_write_observer(this);
    collector_ = std::make_unique<CopyingCollector>(
        store_.get(), buffer_.get(), &index_, nullptr);
  }
  ~CollectorTest() override { store_->set_slot_write_observer(nullptr); }

  void OnSlotWrite(const SlotWriteEvent& e) override {
    if (e.is_overwrite() && e.old_target_partition != kInvalidPartition &&
        e.old_target_partition != e.source_partition) {
      index_.RemoveReference(e.source, e.slot, e.old_target);
    }
    if (!e.new_target.is_null() &&
        e.new_target_partition != e.source_partition) {
      index_.AddReference(e.source, e.source_partition, e.slot,
                          e.new_target, e.new_target_partition);
    }
  }

  // Allocates an object of `size` bytes pinned to partition `p` by
  // filling through a parent hint chain (first object per partition is
  // placed via hint-less allocation into the current partition).
  ObjectId Alloc(uint32_t size = 100, ObjectId parent = kNullObjectId) {
    auto id = store_->Allocate(size, 3, parent);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  void Link(ObjectId from, uint32_t slot, ObjectId to) {
    ASSERT_TRUE(store_->WriteSlot(from, slot, to).ok());
  }

  PartitionId PartOf(ObjectId id) { return store_->Lookup(id)->partition; }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
  InterPartitionIndex index_;
  std::unique_ptr<CopyingCollector> collector_;
};

TEST_F(CollectorTest, ReclaimsUnreachableKeepsRooted) {
  const ObjectId root = Alloc();
  const ObjectId child = Alloc(100, root);
  const ObjectId garbage = Alloc(100, root);
  ASSERT_TRUE(store_->AddRoot(root).ok());
  Link(root, 0, child);

  const PartitionId victim = PartOf(root);
  auto result = collector_->Collect(victim);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->live_objects_copied, 2u);
  EXPECT_EQ(result->garbage_objects_reclaimed, 1u);
  EXPECT_EQ(result->garbage_bytes_reclaimed, 100u);
  EXPECT_TRUE(store_->Exists(root));
  EXPECT_TRUE(store_->Exists(child));
  EXPECT_FALSE(store_->Exists(garbage));
  // Survivors moved to the former empty partition; pointer still intact.
  EXPECT_NE(PartOf(root), victim);
  auto v = store_->ReadSlot(root, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, child);
}

TEST_F(CollectorTest, VictimBecomesEmptyPartition) {
  const ObjectId root = Alloc();
  ASSERT_TRUE(store_->AddRoot(root).ok());
  const PartitionId victim = PartOf(root);
  const PartitionId old_empty = store_->empty_partition();
  auto result = collector_->Collect(victim);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(store_->empty_partition(), victim);
  EXPECT_EQ(result->copy_target, old_empty);
  EXPECT_EQ(store_->partition(victim).allocated_bytes(), 0u);
  EXPECT_EQ(store_->partition(victim).object_count(), 0u);
}

TEST_F(CollectorTest, CompactionEliminatesFragmentation) {
  // root -> a -> b with garbage interleaved between them physically.
  const ObjectId root = Alloc(100);
  const ObjectId g1 = Alloc(300, root);
  const ObjectId a = Alloc(100, root);
  const ObjectId g2 = Alloc(300, root);
  const ObjectId b = Alloc(100, root);
  (void)g1;
  (void)g2;
  ASSERT_TRUE(store_->AddRoot(root).ok());
  Link(root, 0, a);
  Link(a, 0, b);

  const PartitionId victim = PartOf(root);
  ASSERT_EQ(store_->partition(victim).allocated_bytes(), 900u);
  auto result = collector_->Collect(victim);
  ASSERT_TRUE(result.ok());
  // The copy target holds exactly the live 300 bytes, contiguously.
  const PartitionId target = result->copy_target;
  EXPECT_EQ(store_->partition(target).allocated_bytes(), 300u);
  EXPECT_EQ(store_->partition(target).object_count(), 3u);
}

TEST_F(CollectorTest, BreadthFirstCopyOrder) {
  //       root
  //      /    \_
  //     a      b
  //    /
  //   c
  // BFS copy order: root, a, b, c — check physical offsets in the target.
  const ObjectId root = Alloc();
  const ObjectId a = Alloc(100, root);
  const ObjectId b = Alloc(100, root);
  const ObjectId c = Alloc(100, root);
  ASSERT_TRUE(store_->AddRoot(root).ok());
  Link(root, 0, a);
  Link(root, 1, b);
  Link(a, 0, c);

  auto result = collector_->Collect(PartOf(root));
  ASSERT_TRUE(result.ok());
  std::vector<ObjectId> physical_order;
  for (const auto& [offset, id] :
       store_->partition(result->copy_target).objects_by_offset()) {
    physical_order.push_back(id);
  }
  EXPECT_EQ(physical_order, (std::vector<ObjectId>{root, a, b, c}));
}

TEST_F(CollectorTest, DepthFirstCopyOrderDiffers) {
  CopyingCollector dfs(store_.get(), buffer_.get(), &index_, nullptr,
                       TraversalOrder::kDepthFirst);
  const ObjectId root = Alloc();
  const ObjectId a = Alloc(100, root);
  const ObjectId b = Alloc(100, root);
  const ObjectId c = Alloc(100, root);
  ASSERT_TRUE(store_->AddRoot(root).ok());
  Link(root, 0, a);
  Link(root, 1, b);
  Link(a, 0, c);

  auto result = dfs.Collect(PartOf(root));
  ASSERT_TRUE(result.ok());
  std::vector<ObjectId> physical_order;
  for (const auto& [offset, id] :
       store_->partition(result->copy_target).objects_by_offset()) {
    physical_order.push_back(id);
  }
  // Depth-first: root, then a's subtree (c), then b.
  EXPECT_EQ(physical_order, (std::vector<ObjectId>{root, a, c, b}));
}

TEST_F(CollectorTest, RememberedSetEntryActsAsRoot) {
  // External referent: x (partition of root) <- y in another partition.
  // x is unreachable from the database roots, but the remembered-set
  // entry must conservatively keep it (nepotism when y is garbage).
  const ObjectId root = Alloc();
  const ObjectId x = Alloc(100, root);
  ASSERT_TRUE(store_->AddRoot(root).ok());

  // Force y into a different partition by filling the first one.
  ObjectId y = kNullObjectId;
  for (int i = 0; i < 40; ++i) {
    const ObjectId o = Alloc(100);
    if (PartOf(o) != PartOf(x)) {
      y = o;
      break;
    }
  }
  ASSERT_FALSE(y.is_null()) << "need an object in another partition";
  Link(y, 0, x);
  ASSERT_TRUE(index_.HasExternalReferences(x));

  auto result = collector_->Collect(PartOf(x));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(store_->Exists(x)) << "externally referenced objects survive";
  // The entry re-bucketed to x's new partition.
  EXPECT_TRUE(index_.HasExternalReferences(x));
  const auto targets = index_.ExternalTargetsInPartition(PartOf(x));
  EXPECT_EQ(targets, (std::vector<ObjectId>{x}));
}

TEST_F(CollectorTest, DeadSourceEntriesRemovedEnablingLaterReclaim) {
  // y (partition B, garbage) -> x (partition A, garbage).
  // Collecting A first keeps x (nepotism); collecting B kills y and its
  // entry; then collecting A again reclaims x — the exact scenario the
  // out-of-partition sets exist for.
  const ObjectId root = Alloc();
  const ObjectId x = Alloc(100, root);
  ASSERT_TRUE(store_->AddRoot(root).ok());
  ObjectId y = kNullObjectId;
  for (int i = 0; i < 40; ++i) {
    const ObjectId o = Alloc(100);
    if (PartOf(o) != PartOf(x)) {
      y = o;
      break;
    }
  }
  ASSERT_FALSE(y.is_null());
  Link(y, 0, x);
  const PartitionId part_a = PartOf(x);
  const PartitionId part_b = PartOf(y);

  auto first = collector_->Collect(part_a);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(store_->Exists(x)) << "kept alive by garbage y (nepotism)";

  auto second = collector_->Collect(part_b);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(store_->Exists(y));
  EXPECT_FALSE(index_.HasExternalReferences(x))
      << "dead y's entries must be removed";

  auto third = collector_->Collect(PartOf(x));
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(store_->Exists(x)) << "now reclaimable";
}

TEST_F(CollectorTest, PointersLeavingPartitionNotTraversed) {
  // root (A) -> z (B). Collecting A must not copy z.
  const ObjectId root = Alloc();
  ASSERT_TRUE(store_->AddRoot(root).ok());
  ObjectId z = kNullObjectId;
  for (int i = 0; i < 40; ++i) {
    const ObjectId o = Alloc(100);
    if (PartOf(o) != PartOf(root)) {
      z = o;
      break;
    }
  }
  ASSERT_FALSE(z.is_null());
  Link(root, 0, z);
  const PartitionId z_partition = PartOf(z);
  auto result = collector_->Collect(PartOf(root));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PartOf(z), z_partition) << "cross-partition referent not moved";
  // The remembered-set entry's source (root) moved partitions; the entry
  // must still protect z when its partition is collected.
  EXPECT_TRUE(index_.HasExternalReferences(z));
}

TEST_F(CollectorTest, IntraPartitionCycleOfGarbageReclaimed) {
  const ObjectId root = Alloc();
  ASSERT_TRUE(store_->AddRoot(root).ok());
  const ObjectId a = Alloc(100, root);
  const ObjectId b = Alloc(100, root);
  Link(a, 0, b);
  Link(b, 0, a);  // Unreachable 2-cycle within one partition.
  auto result = collector_->Collect(PartOf(a));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(store_->Exists(a));
  EXPECT_FALSE(store_->Exists(b));
  EXPECT_EQ(result->garbage_objects_reclaimed, 2u);
}

TEST_F(CollectorTest, ErrorsOnBadVictim) {
  EXPECT_EQ(collector_->Collect(99).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(collector_->Collect(store_->empty_partition()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CollectorTest, CollectionChargesCollectorPhase) {
  const ObjectId root = Alloc();
  ASSERT_TRUE(store_->AddRoot(root).ok());
  ASSERT_TRUE(buffer_->FlushAll().ok());
  // Evict everything so the collection must do real I/O.
  buffer_->DiscardExtent(PageExtent{0, 100});
  auto result = collector_->Collect(PartOf(root));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->page_reads, 0u);
  EXPECT_EQ(buffer_->stats().reads_gc, result->page_reads);
  EXPECT_EQ(buffer_->phase(), IoPhase::kApplication)
      << "phase must be restored after collection";
}

}  // namespace
}  // namespace odbgc
