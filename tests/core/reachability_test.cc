#include "core/reachability.h"
#include "storage/disk.h"

#include <memory>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

class ReachabilityTest : public ::testing::Test {
 protected:
  ReachabilityTest() {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 8;
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(),
                                           buffer_.get());
  }

  ObjectId Alloc(ObjectId parent = kNullObjectId, uint32_t size = 100) {
    auto id = store_->Allocate(size, 3, parent);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  // Allocates an object guaranteed to live in a different partition than
  // `avoid` by filling space with *live* filler objects (chained to a
  // rooted anchor) until placement moves on. The returned object itself is
  // not linked anywhere.
  ObjectId AllocElsewhere(PartitionId avoid) {
    if (filler_tail_.is_null()) {
      filler_tail_ = Alloc();
      EXPECT_TRUE(store_->AddRoot(filler_tail_).ok());
    }
    for (int i = 0; i < 64; ++i) {
      const ObjectId id = Alloc();
      if (store_->Lookup(id)->partition != avoid) return id;
      // Keep the filler alive: chain it behind the anchor via slot 2.
      EXPECT_TRUE(store_->WriteSlot(filler_tail_, 2, id).ok());
      filler_tail_ = id;
    }
    ADD_FAILURE() << "could not place object outside partition " << avoid;
    return kNullObjectId;
  }

  void Link(ObjectId a, uint32_t slot, ObjectId b) {
    ASSERT_TRUE(store_->WriteSlot(a, slot, b).ok());
  }

  PartitionId PartOf(ObjectId id) { return store_->Lookup(id)->partition; }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
  ObjectId filler_tail_;
};

TEST_F(ReachabilityTest, LiveSetFollowsPointers) {
  const ObjectId root = Alloc();
  const ObjectId a = Alloc(root);
  const ObjectId b = Alloc(root);
  const ObjectId orphan = Alloc(root);
  (void)orphan;
  ASSERT_TRUE(store_->AddRoot(root).ok());
  Link(root, 0, a);
  Link(a, 0, b);

  const auto live = ComputeLiveSet(*store_);
  EXPECT_EQ(live.size(), 3u);
  EXPECT_TRUE(live.count(root));
  EXPECT_TRUE(live.count(a));
  EXPECT_TRUE(live.count(b));
}

TEST_F(ReachabilityTest, CensusCountsPerPartition) {
  const ObjectId root = Alloc();
  ASSERT_TRUE(store_->AddRoot(root).ok());
  const ObjectId garbage = Alloc(root, 120);
  (void)garbage;

  const GarbageCensus census = ComputeGarbageCensus(*store_);
  EXPECT_EQ(census.total_live_objects, 1u);
  EXPECT_EQ(census.total_live_bytes, 100u);
  EXPECT_EQ(census.total_garbage_objects, 1u);
  EXPECT_EQ(census.total_garbage_bytes, 120u);
  const PartitionId p = PartOf(root);
  EXPECT_EQ(census.garbage_bytes_per_partition[p], 120u);
  EXPECT_EQ(census.collectable_bytes_per_partition[p], 120u);
  EXPECT_EQ(census.total_collectable_bytes, 120u);
}

TEST_F(ReachabilityTest, EmptyDatabaseCensus) {
  const GarbageCensus census = ComputeGarbageCensus(*store_);
  EXPECT_EQ(census.total_garbage_bytes, 0u);
  EXPECT_EQ(census.total_live_bytes, 0u);
  const GarbageAnatomy anatomy = ComputeGarbageAnatomy(*store_);
  EXPECT_EQ(anatomy.locally_collectable_bytes, 0u);
  EXPECT_EQ(anatomy.nepotism_bytes, 0u);
  EXPECT_EQ(anatomy.cross_partition_cycle_bytes, 0u);
}

TEST_F(ReachabilityTest, ProtectedGarbageNotCollectable) {
  // Dead y (partition B) -> dead x (partition A): x is garbage but not
  // collectable until B is collected; y itself is collectable.
  const ObjectId x = Alloc();
  const PartitionId part_a = PartOf(x);
  const ObjectId y = AllocElsewhere(part_a);
  Link(y, 0, x);

  const GarbageCensus census = ComputeGarbageCensus(*store_);
  EXPECT_EQ(census.total_garbage_bytes, 200u);
  EXPECT_EQ(census.collectable_bytes_per_partition[part_a], 0u);
  EXPECT_EQ(census.collectable_bytes_per_partition[PartOf(y)], 100u);

  const GarbageAnatomy anatomy = ComputeGarbageAnatomy(*store_);
  EXPECT_EQ(anatomy.locally_collectable_bytes, 100u);  // y.
  EXPECT_EQ(anatomy.nepotism_bytes, 100u);             // x.
  EXPECT_EQ(anatomy.cross_partition_cycle_bytes, 0u);
}

TEST_F(ReachabilityTest, IntraPartitionChainBehindProtectedObject) {
  // y (B) -> x (A) -> z (A, intra edge): both x and z are kept when A is
  // collected, because the collector traverses the kept x.
  const ObjectId x = Alloc();
  const ObjectId z = Alloc(x);
  ASSERT_EQ(PartOf(x), PartOf(z));
  const ObjectId y = AllocElsewhere(PartOf(x));
  Link(y, 0, x);
  Link(x, 0, z);

  const GarbageCensus census = ComputeGarbageCensus(*store_);
  EXPECT_EQ(census.collectable_bytes_per_partition[PartOf(x)], 0u);
  const GarbageAnatomy anatomy = ComputeGarbageAnatomy(*store_);
  EXPECT_EQ(anatomy.nepotism_bytes, 200u);  // x and z.
  EXPECT_EQ(anatomy.locally_collectable_bytes, 100u);  // y.
}

TEST_F(ReachabilityTest, CrossPartitionDeadCycleIsStuck) {
  // x (A) <-> y (B): a dead cross-partition cycle no collection order can
  // reclaim, plus a victim z referenced from the cycle.
  const ObjectId x = Alloc();
  const ObjectId y = AllocElsewhere(PartOf(x));
  const ObjectId z = Alloc(x);
  Link(x, 0, y);
  Link(y, 0, x);
  Link(x, 1, z);

  const GarbageAnatomy anatomy = ComputeGarbageAnatomy(*store_);
  EXPECT_EQ(anatomy.cross_partition_cycle_bytes, 300u);
  EXPECT_EQ(anatomy.locally_collectable_bytes, 0u);
  EXPECT_EQ(anatomy.nepotism_bytes, 0u);
}

TEST_F(ReachabilityTest, IntraPartitionDeadCycleIsCollectable) {
  const ObjectId x = Alloc();
  const ObjectId y = Alloc(x);
  ASSERT_EQ(PartOf(x), PartOf(y));
  Link(x, 0, y);
  Link(y, 0, x);

  const GarbageAnatomy anatomy = ComputeGarbageAnatomy(*store_);
  EXPECT_EQ(anatomy.locally_collectable_bytes, 200u);
  EXPECT_EQ(anatomy.cross_partition_cycle_bytes, 0u);
}

TEST_F(ReachabilityTest, LiveReferencesDoNotProtectGarbage) {
  // A live object pointing across partitions keeps its target LIVE, not
  // garbage; garbage elsewhere stays collectable.
  const ObjectId root = Alloc();
  ASSERT_TRUE(store_->AddRoot(root).ok());
  const ObjectId far = AllocElsewhere(PartOf(root));
  Link(root, 0, far);
  const ObjectId garbage = Alloc();
  (void)garbage;

  // Live: root, far, and the filler chain; garbage: just `garbage`, and
  // all of it is collectable despite the live cross-partition reference.
  const GarbageCensus census = ComputeGarbageCensus(*store_);
  EXPECT_EQ(census.total_garbage_bytes, 100u);
  EXPECT_EQ(census.total_garbage_bytes, census.total_collectable_bytes);
}

}  // namespace
}  // namespace odbgc
