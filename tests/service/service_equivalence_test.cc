// The multi-tenant service's verification contract (service/heap_service.h):
//
//  1. Equivalence — with admission control off, a 1-tenant service run is
//     bitwise identical to a standalone Simulator run of the same config,
//     for all six paper policies. The service adds scheduling, never
//     semantics.
//  2. Thread invariance — a 16-tenant pressured service produces
//     identical per-tenant results and service counters under 1, 2 and 4
//     worker threads: tenants are the determinism units, threads are
//     parallelism only.
//  3. Admission bound — with a watermark armed and no forced admissions,
//     post-round shared-pool occupancy never exceeds
//     watermark + one tenant's allowance.
//  4. Progress — a fleet that can never shed (NoCollection) still runs to
//     completion through forced admissions.

#include "service/heap_service.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/selection_policy.h"
#include "sim/simulator.h"
#include "sim/spec.h"

namespace odbgc {
namespace {

SimulationConfig SmallTenant(const std::string& policy_name, uint64_t seed) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 25;
  config.heap.policy_name = policy_name;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 50;
  config.workload.tree_nodes_max = 150;
  config.workload.large_object_size = 4096;
  config.seed = seed;
  return config;
}

/// Field-for-field equality over the deterministic result surface
/// (everything except `measured`/`run_wall_seconds`, wall-clock by
/// definition) — the concurrent-equivalence comparator.
void ExpectResultsIdentical(const SimulationResult& a,
                            const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.replacement, b.replacement);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  EXPECT_EQ(a.estimated_device_time_ms, b.estimated_device_time_ms);
  EXPECT_EQ(a.heap_stats.collections, b.heap_stats.collections);
  EXPECT_EQ(a.heap_stats.full_collections, b.heap_stats.full_collections);
  EXPECT_EQ(a.heap_stats.pointer_stores, b.heap_stats.pointer_stores);
  EXPECT_EQ(a.heap_stats.objects_allocated, b.heap_stats.objects_allocated);
  EXPECT_EQ(a.heap_stats.garbage_bytes_reclaimed,
            b.heap_stats.garbage_bytes_reclaimed);
  EXPECT_EQ(a.heap_stats.live_bytes_copied, b.heap_stats.live_bytes_copied);
  EXPECT_EQ(a.heap_stats.max_total_bytes, b.heap_stats.max_total_bytes);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
  EXPECT_EQ(a.buffer_stats.reads_app, b.buffer_stats.reads_app);
  EXPECT_EQ(a.buffer_stats.reads_gc, b.buffer_stats.reads_gc);
  EXPECT_EQ(a.buffer_stats.writes_app, b.buffer_stats.writes_app);
  EXPECT_EQ(a.buffer_stats.writes_gc, b.buffer_stats.writes_gc);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name) << "sample " << i;
    EXPECT_EQ(a.metrics[i].application, b.metrics[i].application)
        << a.metrics[i].name;
    EXPECT_EQ(a.metrics[i].collector, b.metrics[i].collector)
        << a.metrics[i].name;
  }
}

class ServiceEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServiceEquivalenceTest, SingleTenantMatchesStandaloneSimulator) {
  const SimulationConfig config = SmallTenant(GetParam(), 7);

  Simulator solo(config);
  ASSERT_TRUE(solo.Run().ok());
  const SimulationResult expected = solo.Finish();

  auto result = RunService(
      ServiceSpec::Hosting({TenantSpec::Base(config).Named("only")}));
  ASSERT_TRUE(result.status().ok()) << result.status().message();

  // Guard against a vacuous pass.
  EXPECT_GT(expected.app_events, 0u);
  ASSERT_EQ(result->tenants.size(), 1u);
  ExpectResultsIdentical(expected, result->tenants[0]);
  // No watermark -> admission control and the cross-tenant scheduler
  // never engage: that is what makes the equivalence hold.
  EXPECT_EQ(result->forced_collections, 0u);
  EXPECT_EQ(result->admission_stalls, 0u);
  EXPECT_EQ(result->forced_admissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, ServiceEquivalenceTest,
                         ::testing::ValuesIn(PaperPolicyNames()));

ServiceSpec PressuredFleet(size_t tenants, uint32_t threads) {
  const std::vector<std::string>& policies = PaperPolicyNames();
  ServiceSpec spec;
  for (size_t i = 0; i < tenants; ++i) {
    // Skip NoCollection (index 0): a shedding-capable fleet, mixed
    // policies, distinct seeds.
    const std::string& policy = policies[1 + i % (policies.size() - 1)];
    spec.tenants.push_back(TenantSpec::Base(SmallTenant(policy, 100 + i))
                               .Named("t" + std::to_string(i)));
  }
  uint64_t cap_sum = 0;
  for (const TenantSpec& tenant : spec.tenants) {
    cap_sum += tenant.config.heap.buffer_pages;
  }
  return std::move(spec)
      .WithThreads(threads)
      .WithFrameBudget(cap_sum * 3 / 4)  // Overcommitted: pressure is real.
      .WithWatermark(0.5);
}

TEST(ServiceInvarianceTest, SixteenTenantsAreThreadCountInvariant) {
  std::vector<ServiceResult> results;
  for (uint32_t threads : {1u, 2u, 4u}) {
    auto result = RunService(PressuredFleet(16, threads));
    ASSERT_TRUE(result.status().ok()) << result.status().message();
    results.push_back(*std::move(result));
  }
  const ServiceResult& base = results.front();
  EXPECT_GT(base.aggregate.app_events, 0u);
  for (size_t r = 1; r < results.size(); ++r) {
    const ServiceResult& other = results[r];
    ASSERT_EQ(base.tenants.size(), other.tenants.size());
    for (size_t t = 0; t < base.tenants.size(); ++t) {
      ExpectResultsIdentical(base.tenants[t], other.tenants[t]);
    }
    ExpectResultsIdentical(base.aggregate, other.aggregate);
    // The service-level schedule is part of the deterministic surface.
    EXPECT_EQ(base.rounds, other.rounds);
    EXPECT_EQ(base.forced_collections, other.forced_collections);
    EXPECT_EQ(base.admission_stalls, other.admission_stalls);
    EXPECT_EQ(base.forced_admissions, other.forced_admissions);
    EXPECT_EQ(base.peak_occupancy_frames, other.peak_occupancy_frames);
  }
}

TEST(ServiceAdmissionTest, OccupancyStaysUnderWatermarkPlusOneAllowance) {
  ServiceSpec spec = PressuredFleet(8, 2);
  uint64_t max_cap = 0;
  for (const TenantSpec& tenant : spec.tenants) {
    max_cap = std::max<uint64_t>(max_cap, tenant.config.heap.buffer_pages);
  }
  auto result = RunService(std::move(spec));
  ASSERT_TRUE(result.status().ok()) << result.status().message();

  // The pressure must have been real for the bound to mean anything.
  EXPECT_GT(result->admission_stalls, 0u);
  EXPECT_GT(result->watermark_frames, 0u);
  // The fleet can shed, so the progress fallback never fired -- which
  // makes the bound below unconditional.
  EXPECT_EQ(result->forced_admissions, 0u);
  EXPECT_LE(result->peak_occupancy_frames,
            result->watermark_frames + max_cap);
  // And the scheduler actually worked for its living.
  EXPECT_GT(result->forced_collections, 0u);
}

TEST(ServiceProgressTest, NoCollectionFleetStillFinishes) {
  // NoCollection tenants can never shed residency; under a watermark the
  // progress fallback must carry the fleet to completion anyway.
  ServiceSpec spec;
  for (size_t i = 0; i < 2; ++i) {
    spec.tenants.push_back(
        TenantSpec::Base(SmallTenant("NoCollection", 40 + i))
            .Named("nc" + std::to_string(i)));
  }
  auto result = RunService(std::move(spec).WithFrameBudget(16).WithWatermark(0.5));
  ASSERT_TRUE(result.status().ok()) << result.status().message();
  EXPECT_EQ(result->tenants.size(), 2u);
  for (const SimulationResult& tenant : result->tenants) {
    EXPECT_GT(tenant.app_events, 0u);
    EXPECT_EQ(tenant.collections, 0u);
  }
  EXPECT_GT(result->forced_admissions, 0u);
}

TEST(ServiceValidationTest, RejectsMisSpecifiedServices) {
  EXPECT_FALSE(RunService(ServiceSpec{}).status().ok());  // No tenants.

  {
    ServiceSpec spec = ServiceSpec::Hosting(
        {TenantSpec::Base(SmallTenant("UpdatedPointer", 1))});
    spec.admission_watermark = 1.5;
    EXPECT_FALSE(RunService(std::move(spec)).status().ok());
  }
  {
    ServiceSpec spec = ServiceSpec::Hosting(
        {TenantSpec::Base(SmallTenant("UpdatedPointer", 1)).Named("dup"),
         TenantSpec::Base(SmallTenant("Random", 2)).Named("dup")});
    EXPECT_FALSE(RunService(std::move(spec)).status().ok());
  }
  {
    SimulationConfig config = SmallTenant("UpdatedPointer", 1);
    config.heap.policy_name = "NoSuchPolicy";
    EXPECT_FALSE(
        RunService(ServiceSpec::Hosting({TenantSpec::Base(config)}))
            .status()
            .ok());
  }
  {
    // The service is the concurrency layer; nested concurrent tenants are
    // a specification error.
    SimulationConfig config = SmallTenant("UpdatedPointer", 1);
    config.mutator_threads = 2;
    config.trace_shards = 2;
    EXPECT_FALSE(
        RunService(ServiceSpec::Hosting({TenantSpec::Base(config)}))
            .status()
            .ok());
  }
}

}  // namespace
}  // namespace odbgc
