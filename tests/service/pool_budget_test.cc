#include "service/pool_budget.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(PoolBudgetTest, ConfigureArmsWatermarkAndZeroesLedger) {
  SharedPoolBudget budget;
  budget.Configure(100, 0.75, 3);
  EXPECT_EQ(budget.total_frames(), 100u);
  EXPECT_EQ(budget.watermark_frames(), 75u);
  EXPECT_TRUE(budget.enabled());
  EXPECT_EQ(budget.occupancy(), 0u);
  EXPECT_EQ(budget.peak_occupancy(), 0u);
  EXPECT_EQ(budget.tenant_count(), 3u);
  EXPECT_FALSE(budget.OverWatermark());
}

TEST(PoolBudgetTest, ZeroWatermarkDisablesAdmission) {
  SharedPoolBudget budget;
  budget.Configure(100, 0.0, 2);
  EXPECT_FALSE(budget.enabled());
  budget.Update(0, 100, 100);
  EXPECT_FALSE(budget.OverWatermark());
}

TEST(PoolBudgetTest, UpdateTracksOccupancyIncrementally) {
  SharedPoolBudget budget;
  budget.Configure(64, 0.5, 2);
  budget.Update(0, 10, 16);
  budget.Update(1, 20, 48);
  EXPECT_EQ(budget.occupancy(), 30u);
  // Re-updating a tenant replaces its slice, not accumulates it.
  budget.Update(1, 5, 48);
  EXPECT_EQ(budget.occupancy(), 15u);
  EXPECT_EQ(budget.resident(0), 10u);
  EXPECT_EQ(budget.resident(1), 5u);
  EXPECT_EQ(budget.cap(1), 48u);
}

TEST(PoolBudgetTest, PeakOnlyMovesAtNotePeak) {
  SharedPoolBudget budget;
  budget.Configure(64, 0.5, 1);
  budget.Update(0, 40, 64);
  EXPECT_EQ(budget.peak_occupancy(), 0u);  // Not yet noted.
  budget.NotePeak();
  EXPECT_EQ(budget.peak_occupancy(), 40u);
  budget.Update(0, 10, 64);
  budget.NotePeak();
  EXPECT_EQ(budget.peak_occupancy(), 40u);  // Monotone.
}

TEST(PoolBudgetTest, AllowanceAndPressure) {
  SharedPoolBudget budget;
  budget.Configure(64, 0.5, 2);
  budget.Update(0, 12, 16);
  EXPECT_EQ(budget.Allowance(0), 4u);
  EXPECT_DOUBLE_EQ(budget.TenantPressure(0), 0.75);
  // Unsized tenant: no allowance, no pressure (never a division by zero).
  EXPECT_EQ(budget.Allowance(1), 0u);
  EXPECT_DOUBLE_EQ(budget.TenantPressure(1), 0.0);
}

TEST(PoolBudgetTest, OverWatermarkAtExactBoundary) {
  SharedPoolBudget budget;
  budget.Configure(100, 0.5, 1);
  budget.Update(0, 49, 100);
  EXPECT_FALSE(budget.OverWatermark());
  budget.Update(0, 50, 100);
  EXPECT_TRUE(budget.OverWatermark());  // At the watermark counts as over.
}

}  // namespace
}  // namespace odbgc
