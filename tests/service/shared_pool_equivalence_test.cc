// The shared-arena determinism contract (DESIGN.md §17):
//
//  1. Byte-identity — at threads == 1 with the arena never exhausted, a
//     fleet over one physically shared BufferPool arena produces
//     per-tenant results bitwise identical to the same fleet over private
//     per-tenant pools, for all six paper policies. Physical sharing is
//     invisible to the simulation.
//  2. K-step batching (ServiceSpec::steps_per_round) amortizes barrier
//     overhead without changing any unpressured tenant result.
//  3. Arrival/departure — tenants may join and leave mid-run; a dormant
//     tenant holds no frames and a departed one gives its frames back.
//  4. Squeeze — a fleet whose quotas overcommit a tiny arena still
//     completes, shedding via under-quota (squeezed) evictions.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/selection_policy.h"
#include "service/heap_service.h"
#include "sim/spec.h"

namespace odbgc {
namespace {

SimulationConfig SmallTenant(const std::string& policy_name, uint64_t seed) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 25;
  config.heap.policy_name = policy_name;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 50;
  config.workload.tree_nodes_max = 150;
  config.workload.large_object_size = 4096;
  config.seed = seed;
  return config;
}

/// The same deterministic-surface comparator the service equivalence
/// suite uses: every field except wall-clock measurements.
void ExpectResultsIdentical(const SimulationResult& a,
                            const SimulationResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.app_events, b.app_events);
  EXPECT_EQ(a.app_io, b.app_io);
  EXPECT_EQ(a.gc_io, b.gc_io);
  EXPECT_EQ(a.max_storage_bytes, b.max_storage_bytes);
  EXPECT_EQ(a.max_partitions, b.max_partitions);
  EXPECT_EQ(a.final_partitions, b.final_partitions);
  EXPECT_EQ(a.collections, b.collections);
  EXPECT_EQ(a.garbage_reclaimed_bytes, b.garbage_reclaimed_bytes);
  EXPECT_EQ(a.live_bytes_copied, b.live_bytes_copied);
  EXPECT_EQ(a.unreclaimed_garbage_bytes, b.unreclaimed_garbage_bytes);
  EXPECT_EQ(a.final_live_bytes, b.final_live_bytes);
  EXPECT_EQ(a.remset_entries, b.remset_entries);
  EXPECT_EQ(a.bytes_allocated, b.bytes_allocated);
  EXPECT_EQ(a.pointer_overwrites, b.pointer_overwrites);
  EXPECT_EQ(a.estimated_device_time_ms, b.estimated_device_time_ms);
  EXPECT_EQ(a.buffer_stats.hits, b.buffer_stats.hits);
  EXPECT_EQ(a.buffer_stats.misses, b.buffer_stats.misses);
  EXPECT_EQ(a.buffer_stats.reads_app, b.buffer_stats.reads_app);
  EXPECT_EQ(a.buffer_stats.reads_gc, b.buffer_stats.reads_gc);
  EXPECT_EQ(a.buffer_stats.writes_app, b.buffer_stats.writes_app);
  EXPECT_EQ(a.buffer_stats.writes_gc, b.buffer_stats.writes_gc);
  EXPECT_EQ(a.disk_stats.page_reads, b.disk_stats.page_reads);
  EXPECT_EQ(a.disk_stats.page_writes, b.disk_stats.page_writes);
  EXPECT_EQ(a.disk_stats.sequential_transfers,
            b.disk_stats.sequential_transfers);
  EXPECT_EQ(a.disk_stats.random_transfers, b.disk_stats.random_transfers);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name) << "sample " << i;
    EXPECT_EQ(a.metrics[i].application, b.metrics[i].application)
        << a.metrics[i].name;
    EXPECT_EQ(a.metrics[i].collector, b.metrics[i].collector)
        << a.metrics[i].name;
  }
}

/// A 4-tenant single-policy fleet with distinct seeds and no watermark.
ServiceSpec SmallFleet(const std::string& policy, bool shared) {
  ServiceSpec spec;
  for (size_t i = 0; i < 4; ++i) {
    spec.tenants.push_back(TenantSpec::Base(SmallTenant(policy, 20 + i))
                               .Named("t" + std::to_string(i)));
  }
  return std::move(spec).WithSharedPool(shared);
}

class SharedPoolIdentityTest : public ::testing::TestWithParam<std::string> {};

// The tentpole identity: shared arena vs private pools, threads == 1,
// bitwise-equal per-tenant results for every paper policy.
TEST_P(SharedPoolIdentityTest, SharedArenaMatchesPrivatePoolsByteForByte) {
  auto shared = RunService(SmallFleet(GetParam(), /*shared=*/true));
  auto isolated = RunService(SmallFleet(GetParam(), /*shared=*/false));
  ASSERT_TRUE(shared.status().ok()) << shared.status().message();
  ASSERT_TRUE(isolated.status().ok()) << isolated.status().message();

  EXPECT_TRUE(shared->shared_pool);
  EXPECT_FALSE(isolated->shared_pool);
  EXPECT_GT(shared->aggregate.app_events, 0u);  // Not a vacuous pass.
  ASSERT_EQ(shared->tenants.size(), isolated->tenants.size());
  for (size_t t = 0; t < shared->tenants.size(); ++t) {
    ExpectResultsIdentical(shared->tenants[t], isolated->tenants[t]);
  }
  ExpectResultsIdentical(shared->aggregate, isolated->aggregate);
  // No watermark and an uncapped budget: no squeezes, so the identity
  // held unconditionally rather than by luck.
  EXPECT_EQ(shared->squeezed_evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, SharedPoolIdentityTest,
                         ::testing::ValuesIn(PaperPolicyNames()));

ServiceSpec PressuredFleet(size_t tenants, uint32_t threads, bool shared,
                           uint64_t steps_per_round = 1) {
  const std::vector<std::string>& policies = PaperPolicyNames();
  ServiceSpec spec;
  for (size_t i = 0; i < tenants; ++i) {
    const std::string& policy = policies[1 + i % (policies.size() - 1)];
    spec.tenants.push_back(TenantSpec::Base(SmallTenant(policy, 100 + i))
                               .Named("t" + std::to_string(i)));
  }
  uint64_t cap_sum = 0;
  for (const TenantSpec& tenant : spec.tenants) {
    cap_sum += tenant.config.heap.buffer_pages;
  }
  // Overcommitted aggregate budget, but budget >= watermark + max cap, so
  // the arena itself never runs dry (squeeze-free regime).
  return std::move(spec)
      .WithThreads(threads)
      .WithFrameBudget(cap_sum * 3 / 4)
      .WithWatermark(0.5)
      .WithSharedPool(shared)
      .WithStepsPerRound(steps_per_round);
}

// Admission control on: pressure engages (stalls, forced collections) and
// the shared arena still changes nothing observable.
TEST(SharedPoolPressureTest, PressuredFleetIdenticalToPrivatePools) {
  auto shared = RunService(PressuredFleet(8, 1, /*shared=*/true));
  auto isolated = RunService(PressuredFleet(8, 1, /*shared=*/false));
  ASSERT_TRUE(shared.status().ok()) << shared.status().message();
  ASSERT_TRUE(isolated.status().ok()) << isolated.status().message();

  EXPECT_GT(shared->admission_stalls, 0u);
  EXPECT_EQ(shared->squeezed_evictions, 0u);
  ASSERT_EQ(shared->tenants.size(), isolated->tenants.size());
  for (size_t t = 0; t < shared->tenants.size(); ++t) {
    ExpectResultsIdentical(shared->tenants[t], isolated->tenants[t]);
  }
  EXPECT_EQ(shared->rounds, isolated->rounds);
  EXPECT_EQ(shared->forced_collections, isolated->forced_collections);
  EXPECT_EQ(shared->admission_stalls, isolated->admission_stalls);
  EXPECT_EQ(shared->peak_occupancy_frames, isolated->peak_occupancy_frames);
  // The per-tenant telemetry agrees with the service-level totals.
  uint64_t stall_sum = 0, peak_max = 0;
  ASSERT_EQ(shared->tenant_admission_stalls.size(), shared->tenants.size());
  ASSERT_EQ(shared->tenant_peak_resident_frames.size(),
            shared->tenants.size());
  for (size_t t = 0; t < shared->tenants.size(); ++t) {
    stall_sum += shared->tenant_admission_stalls[t];
    peak_max =
        std::max<uint64_t>(peak_max, shared->tenant_peak_resident_frames[t]);
    // No tenant's peak exceeds its own quota (buffer_pages = 16).
    EXPECT_LE(shared->tenant_peak_resident_frames[t], 16u);
  }
  EXPECT_EQ(stall_sum, shared->admission_stalls);
  EXPECT_GT(peak_max, 0u);
  EXPECT_LE(peak_max, shared->peak_occupancy_frames);
}

// A pressured shared-arena fleet stays thread-count invariant: the
// striped table is physically concurrent but observationally serial.
TEST(SharedPoolPressureTest, SharedArenaFleetIsThreadCountInvariant) {
  std::vector<ServiceResult> results;
  for (uint32_t threads : {1u, 2u, 4u}) {
    auto result = RunService(PressuredFleet(8, threads, /*shared=*/true));
    ASSERT_TRUE(result.status().ok()) << result.status().message();
    EXPECT_EQ(result->squeezed_evictions, 0u);
    results.push_back(*std::move(result));
  }
  const ServiceResult& base = results.front();
  EXPECT_GT(base.aggregate.app_events, 0u);
  for (size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(base.tenants.size(), results[r].tenants.size());
    for (size_t t = 0; t < base.tenants.size(); ++t) {
      ExpectResultsIdentical(base.tenants[t], results[r].tenants[t]);
    }
    EXPECT_EQ(base.rounds, results[r].rounds);
    EXPECT_EQ(base.forced_collections, results[r].forced_collections);
    EXPECT_EQ(base.admission_stalls, results[r].admission_stalls);
    EXPECT_EQ(base.peak_occupancy_frames, results[r].peak_occupancy_frames);
  }
}

// steps_per_round batches K sim steps into one worker dispatch. Without a
// watermark the barrier does no scheduling, so batching must be invisible
// in every tenant result.
TEST(SharedPoolBatchingTest, StepBatchingPreservesUnpressuredResults) {
  auto one = RunService(
      SmallFleet("UpdatedPointer", true).WithStepsPerRound(1));
  auto eight = RunService(
      SmallFleet("UpdatedPointer", true).WithStepsPerRound(8));
  ASSERT_TRUE(one.status().ok()) << one.status().message();
  ASSERT_TRUE(eight.status().ok()) << eight.status().message();
  ASSERT_EQ(one->tenants.size(), eight->tenants.size());
  for (size_t t = 0; t < one->tenants.size(); ++t) {
    ExpectResultsIdentical(one->tenants[t], eight->tenants[t]);
  }
  // Batching's entire point: the same work in ~K fewer barriers.
  EXPECT_LT(eight->rounds, one->rounds);
  EXPECT_GE(one->rounds, eight->rounds * 7);
}

// Pressured + batched + multi-threaded: the invariance gate still holds
// (rounds differ from K=1, but not across thread counts).
TEST(SharedPoolBatchingTest, BatchedPressuredFleetIsThreadInvariant) {
  std::vector<ServiceResult> results;
  for (uint32_t threads : {1u, 4u}) {
    auto result = RunService(
        PressuredFleet(8, threads, /*shared=*/true, /*steps_per_round=*/4));
    ASSERT_TRUE(result.status().ok()) << result.status().message();
    results.push_back(*std::move(result));
  }
  ASSERT_EQ(results[0].tenants.size(), results[1].tenants.size());
  for (size_t t = 0; t < results[0].tenants.size(); ++t) {
    ExpectResultsIdentical(results[0].tenants[t], results[1].tenants[t]);
  }
  EXPECT_EQ(results[0].rounds, results[1].rounds);
  EXPECT_EQ(results[0].admission_stalls, results[1].admission_stalls);
}

// -- Arrival / departure -----------------------------------------------------

TEST(SharedPoolFleetTest, LateArrivalRunsToCompletionUnchanged) {
  // A tenant that arrives at round 50 must produce the same result as one
  // that was there from the start: arrival delays, it never perturbs.
  ServiceSpec spec = SmallFleet("UpdatedPointer", true);
  spec.tenants.push_back(TenantSpec::Base(SmallTenant("WeightedPointer", 99))
                             .Named("late")
                             .ArrivingAtRound(50));
  auto staggered = RunService(std::move(spec));
  ASSERT_TRUE(staggered.status().ok()) << staggered.status().message();

  ServiceSpec punctual_spec = SmallFleet("UpdatedPointer", true);
  punctual_spec.tenants.push_back(
      TenantSpec::Base(SmallTenant("WeightedPointer", 99)).Named("late"));
  auto punctual = RunService(std::move(punctual_spec));
  ASSERT_TRUE(punctual.status().ok()) << punctual.status().message();

  ASSERT_EQ(staggered->tenants.size(), 5u);
  EXPECT_GT(staggered->tenants[4].app_events, 0u);
  ExpectResultsIdentical(staggered->tenants[4], punctual->tenants[4]);
  // The late tenant cost at least its head start in extra rounds.
  EXPECT_GT(staggered->rounds, 50u);
}

TEST(SharedPoolFleetTest, DepartureRetiresTheTenantAndCountsIt) {
  ServiceSpec spec = SmallFleet("UpdatedPointer", true);
  spec.tenants.push_back(TenantSpec::Base(SmallTenant("WeightedPointer", 7))
                             .Named("brief")
                             .ArrivingAtRound(2)
                             .DepartingAtRound(6));
  auto result = RunService(std::move(spec));
  ASSERT_TRUE(result.status().ok()) << result.status().message();

  EXPECT_EQ(result->departures, 1u);
  ASSERT_EQ(result->tenants.size(), 5u);
  // The departed tenant ran 4 rounds' worth of events, not its whole
  // stream; the permanent tenants are unaffected.
  const SimulationResult& brief = result->tenants[4];
  EXPECT_LT(brief.app_events, result->tenants[0].app_events);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_GT(result->tenants[t].app_events, 0u);
  }
}

TEST(SharedPoolFleetTest, ArrivalPastFleetEndStillRetiresCleanly) {
  // A tenant arriving long after everyone else finished gets exactly one
  // round before its immediate departure: the round clock keeps ticking
  // through idle rounds, the retirement finalizes a barely-started run,
  // and the service terminates rather than wedging on the straggler.
  ServiceSpec spec = SmallFleet("UpdatedPointer", true);
  spec.tenants.push_back(TenantSpec::Base(SmallTenant("WeightedPointer", 7))
                             .Named("straggler")
                             .ArrivingAtRound(10000)
                             .DepartingAtRound(10001));
  auto result = RunService(std::move(spec));
  ASSERT_TRUE(result.status().ok()) << result.status().message();
  EXPECT_EQ(result->departures, 1u);
  EXPECT_GE(result->rounds, 10001u);
  // One admitted round, not the whole stream.
  EXPECT_LT(result->tenants[4].app_events, result->tenants[0].app_events);
}

TEST(SharedPoolFleetTest, RejectsDepartureNotAfterArrival) {
  ServiceSpec spec = SmallFleet("UpdatedPointer", true);
  spec.tenants.push_back(TenantSpec::Base(SmallTenant("WeightedPointer", 7))
                             .Named("bad")
                             .ArrivingAtRound(5)
                             .DepartingAtRound(5));
  EXPECT_FALSE(RunService(std::move(spec)).status().ok());
}

// -- Squeeze -----------------------------------------------------------------

TEST(SharedPoolSqueezeTest, OvercommittedArenaCompletesViaSqueezes) {
  // Four tenants, quota 16 each, over a 49-frame arena and no watermark:
  // the fleet wants 64 frames, so exhaustion is guaranteed, but any one
  // tenant can always keep at least one frame ((tenants-1)*quota + 1) —
  // the squeeze path carries the run to completion rather than an error.
  // (Budgets small enough to leave a tenant empty-handed are the
  // documented ResourceExhausted regime; see SqueezeBelowFloorErrs.)
  ServiceSpec spec = SmallFleet("UpdatedPointer", true);
  auto result = RunService(std::move(spec).WithFrameBudget(49));
  ASSERT_TRUE(result.status().ok()) << result.status().message();
  EXPECT_GT(result->squeezed_evictions, 0u);
  for (const SimulationResult& tenant : result->tenants) {
    EXPECT_GT(tenant.app_events, 0u);
  }
  // Physical occupancy never exceeded the arena.
  EXPECT_LE(result->peak_occupancy_frames, 49u);
}

TEST(SharedPoolSqueezeTest, SqueezeBelowFloorErrs) {
  // A budget so small a tenant can be left holding nothing fails loudly
  // with ResourceExhausted rather than stealing another tenant's frame
  // (the error message tells the operator to raise the budget or arm
  // the watermark).
  ServiceSpec spec = SmallFleet("UpdatedPointer", true);
  auto result = RunService(std::move(spec).WithFrameBudget(8));
  ASSERT_FALSE(result.status().ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace odbgc
