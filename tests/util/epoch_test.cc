#include "util/epoch.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace odbgc {
namespace {

TEST(EpochManagerTest, StartsAtEpochOneAllQuiescent) {
  EpochManager manager;
  EXPECT_EQ(manager.current_epoch(), 1u);
  EXPECT_EQ(manager.registered_threads(), 0u);
  EXPECT_TRUE(manager.AllQuiescent());
  EXPECT_EQ(manager.SafeEpoch(), 1u);
}

TEST(EpochManagerTest, PinPublishesCurrentEpoch) {
  EpochManager manager;
  EpochManager::ThreadSlot* slot = manager.RegisterThread();
  ASSERT_NE(slot, nullptr);

  EXPECT_FALSE(manager.IsPinned(slot));
  manager.Pin(slot);
  EXPECT_TRUE(manager.IsPinned(slot));
  // A thread pinned in epoch 1 blocks reclamation of everything retired in
  // epoch >= 1, so nothing is safe yet.
  EXPECT_EQ(manager.SafeEpoch(), 0u);
  EXPECT_FALSE(manager.AllQuiescent());

  manager.BumpEpoch();
  manager.BumpEpoch();
  EXPECT_EQ(manager.current_epoch(), 3u);
  // Still pinned in 1: safe bound stays 0.
  EXPECT_EQ(manager.SafeEpoch(), 0u);

  manager.Unpin(slot);
  EXPECT_FALSE(manager.IsPinned(slot));
  EXPECT_EQ(manager.SafeEpoch(), 3u);
  EXPECT_TRUE(manager.AllQuiescent());

  manager.UnregisterThread(slot);
  EXPECT_EQ(manager.registered_threads(), 0u);
}

TEST(EpochManagerTest, SafeEpochIsMinOverPinnedThreads) {
  EpochManager manager;
  EpochManager::ThreadSlot* a = manager.RegisterThread();
  EpochManager::ThreadSlot* b = manager.RegisterThread();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(manager.registered_threads(), 2u);

  manager.Pin(a);  // a @ 1
  manager.BumpEpoch();
  manager.Pin(b);  // b @ 2
  EXPECT_EQ(manager.SafeEpoch(), 0u);

  manager.Unpin(a);
  EXPECT_EQ(manager.SafeEpoch(), 1u);  // min pinned = b @ 2 → safe 1.

  manager.Unpin(b);
  EXPECT_EQ(manager.SafeEpoch(), 2u);

  manager.UnregisterThread(a);
  manager.UnregisterThread(b);
}

TEST(EpochManagerTest, SlotsAreRecycledAfterUnregister) {
  EpochManager manager;
  std::vector<EpochManager::ThreadSlot*> slots;
  for (size_t i = 0; i < EpochManager::kMaxThreads; ++i) {
    EpochManager::ThreadSlot* slot = manager.RegisterThread();
    ASSERT_NE(slot, nullptr);
    slots.push_back(slot);
  }
  EXPECT_EQ(manager.RegisterThread(), nullptr);  // Full.
  manager.UnregisterThread(slots[17]);
  EpochManager::ThreadSlot* again = manager.RegisterThread();
  EXPECT_EQ(again, slots[17]);
  for (EpochManager::ThreadSlot* slot : slots) manager.UnregisterThread(slot);
}

// ---------------------------------------------------------------------------
// Model check: drive one EpochManager with a randomized serial schedule of
// pin/unpin/bump operations over several simulated threads, mirroring every
// operation into a plain serial model. SafeEpoch()/AllQuiescent() must match
// the model at every step. Four seeds, per the suite convention.
// ---------------------------------------------------------------------------

struct SerialEpochModel {
  uint64_t epoch = 1;
  std::vector<uint64_t> pinned;  // kQuiescent (0) when not pinned.

  uint64_t SafeEpoch() const {
    uint64_t safe = epoch;
    for (uint64_t local : pinned) {
      if (local != 0) safe = std::min(safe, local - 1);
    }
    return safe;
  }
};

class EpochModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpochModelTest, RandomScheduleMatchesSerialModel) {
  constexpr size_t kThreads = 6;
  constexpr int kSteps = 4000;

  EpochManager manager;
  SerialEpochModel model;
  model.pinned.assign(kThreads, 0);

  std::vector<EpochManager::ThreadSlot*> slots;
  for (size_t i = 0; i < kThreads; ++i) {
    EpochManager::ThreadSlot* slot = manager.RegisterThread();
    ASSERT_NE(slot, nullptr);
    slots.push_back(slot);
  }

  Rng rng(GetParam());
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t op = rng.UniformInt(10);
    if (op < 4) {  // Pin a random thread (re-pin allowed: refreshes epoch).
      const size_t t = rng.UniformInt(kThreads);
      manager.Pin(slots[t]);
      model.pinned[t] = model.epoch;
    } else if (op < 8) {  // Unpin a random thread (idempotent).
      const size_t t = rng.UniformInt(kThreads);
      manager.Unpin(slots[t]);
      model.pinned[t] = 0;
    } else {  // Advance the epoch.
      manager.BumpEpoch();
      model.epoch += 1;
    }

    ASSERT_EQ(manager.current_epoch(), model.epoch) << "step " << step;
    ASSERT_EQ(manager.SafeEpoch(), model.SafeEpoch()) << "step " << step;
    ASSERT_EQ(manager.AllQuiescent(), model.SafeEpoch() == model.epoch)
        << "step " << step;
    for (size_t t = 0; t < kThreads; ++t) {
      ASSERT_EQ(manager.IsPinned(slots[t]), model.pinned[t] != 0)
          << "step " << step << " thread " << t;
    }
  }

  for (EpochManager::ThreadSlot* slot : slots) manager.UnregisterThread(slot);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochModelTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// Concurrent stress: mutator threads pin/unpin in a loop while a reclaimer
// thread bumps epochs and checks the safety bound. The invariant a
// concurrent observer can check is that SafeEpoch never exceeds the global
// epoch and never goes backwards from its own prior observation (the bound
// is monotonic for a single observer because pins only protect newer
// epochs over time).
// ---------------------------------------------------------------------------

class EpochStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EpochStressTest, SafeEpochMonotonicUnderConcurrentPins) {
  constexpr size_t kMutators = 4;
  constexpr int kIterations = 2000;

  EpochManager manager;
  std::atomic<bool> stop{false};

  std::vector<std::thread> mutators;
  for (size_t t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&manager, &stop, t, seed = GetParam()] {
      EpochManager::ThreadSlot* slot = manager.RegisterThread();
      ASSERT_NE(slot, nullptr);
      Rng rng(seed * 1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(&manager, slot);
        // Simulated critical section of random length.
        volatile uint64_t sink = 0;
        const uint64_t spin = rng.UniformInt(64);
        for (uint64_t i = 0; i < spin; ++i) sink = sink + i;
      }
      manager.UnregisterThread(slot);
    });
  }

  uint64_t last_safe = 0;
  for (int i = 0; i < kIterations; ++i) {
    const uint64_t bumped = manager.BumpEpoch();
    const uint64_t safe = manager.SafeEpoch();
    ASSERT_LE(safe, manager.current_epoch());
    ASSERT_GE(safe, last_safe) << "safety bound went backwards";
    last_safe = safe;
    // Progress: a pin taken before the bump cannot hold the bound below
    // bumped-2 forever; we only assert the cheap invariant here and the
    // eventual one below.
    (void)bumped;
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& thread : mutators) thread.join();

  // All threads unregistered: everything retired so far is reclaimable.
  EXPECT_EQ(manager.registered_threads(), 0u);
  EXPECT_TRUE(manager.AllQuiescent());
  EXPECT_EQ(manager.SafeEpoch(), manager.current_epoch());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochStressTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

}  // namespace
}  // namespace odbgc
