#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Name", "Count"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "12345"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Name       Count"), std::string::npos);
  EXPECT_NE(out.find("a              1"), std::string::npos);
  EXPECT_NE(out.find("long-name  12345"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

TEST(TablePrinterTest, LongRowsTruncated) {
  TablePrinter t({"A"});
  t.AddRow({"x", "overflow"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str().find("overflow"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter t({"A"});
  t.AddRow({"above"});
  t.AddSeparator();
  t.AddRow({"below"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header rule plus the explicit separator: at least two dashed lines.
  size_t dashes = 0, at = 0;
  while ((at = out.find("-----", at)) != std::string::npos) {
    ++dashes;
    at = out.find('\n', at);
  }
  EXPECT_GE(dashes, 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"Policy", "IO"});
  t.AddRow({"Random", "123"});
  t.AddSeparator();
  t.AddRow({"MostGarbage", "99"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "Policy,IO\nRandom,123\nMostGarbage,99\n");
}

TEST(TablePrinterTest, NumRowsCountsSeparators) {
  TablePrinter t({"A"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"x"});
  t.AddSeparator();
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.23456, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(FormatCount(1234.4), "1234");
  EXPECT_EQ(FormatCount(1234.6), "1235");
  EXPECT_EQ(FormatCount(0.0), "0");
}

}  // namespace
}  // namespace odbgc
