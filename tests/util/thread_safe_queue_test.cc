#include "util/thread_safe_queue.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include <gtest/gtest.h>

#include "util/random.h"

namespace odbgc {
namespace {

TEST(ThreadSafeQueueTest, FifoSingleThread) {
  ThreadSafeQueue<int> queue;
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_EQ(queue.WaitPop(), 2);
  EXPECT_EQ(queue.TryPop(), 3);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(ThreadSafeQueueTest, CloseRejectsPushButDrainsQueued) {
  ThreadSafeQueue<int> queue;
  EXPECT_TRUE(queue.Push(7));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(8));  // Dropped.
  EXPECT_EQ(queue.WaitPop(), 7);
  EXPECT_EQ(queue.WaitPop(), std::nullopt);  // Closed and drained.
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ThreadSafeQueueTest, CloseWakesBlockedConsumer) {
  ThreadSafeQueue<int> queue;
  std::thread consumer([&queue] {
    // Blocks until Close; must return empty, not hang.
    EXPECT_EQ(queue.WaitPop(), std::nullopt);
  });
  // Give the consumer a chance to block (not required for correctness).
  std::this_thread::yield();
  queue.Close();
  consumer.join();
}

// The blocking-audit contract (see the class comment): WaitPop parks on
// the condition variable, so a consumer waiting on an empty open queue
// consumes (almost) no CPU — wall time passes, process CPU time does not.
// A spin-wait implementation would burn CPU roughly equal to wall here.
TEST(ThreadSafeQueueTest, ParkedConsumerBurnsNoCpu) {
  ThreadSafeQueue<int> queue;
  std::thread consumer([&queue] { EXPECT_EQ(queue.WaitPop(), 99); });

  const auto wall_start = std::chrono::steady_clock::now();
  struct rusage before;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &before), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  struct rusage after;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &after), 0);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  queue.Push(99);
  consumer.join();

  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  const double cpu = (seconds(after.ru_utime) + seconds(after.ru_stime)) -
                     (seconds(before.ru_utime) + seconds(before.ru_stime));
  EXPECT_GE(wall, 0.1);
  // Parked means well under the ~100ms a spinner would burn; allow slack
  // for the main thread's own bookkeeping and a noisy scheduler.
  EXPECT_LT(cpu, wall * 0.5) << "consumer appears to busy-wait";
}

TEST(ThreadSafeQueueTest, MoveOnlyElements) {
  ThreadSafeQueue<std::unique_ptr<int>> queue;
  queue.Push(std::make_unique<int>(42));
  std::optional<std::unique_ptr<int>> popped = queue.TryPop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 42);
}

// ---------------------------------------------------------------------------
// MPMC stress: P producers each push a tagged ascending sequence, C
// consumers drain with WaitPop. Checked against the serial reference
// semantics of a FIFO bag:
//   (1) every pushed element is popped exactly once (no loss, no dup);
//   (2) elements from one producer are popped in push order when observed
//       by a single consumer... which is NOT guaranteed across consumers —
//       the checkable per-producer invariant is that the multiset matches
//       and each producer's items appear in globally increasing push order
//       per consumer stream.
// Four seeds vary the thread counts and per-item jitter.
// ---------------------------------------------------------------------------

struct Item {
  uint32_t producer;
  uint32_t sequence;
};

class QueueStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueueStressTest, MpmcNoLossNoDuplication) {
  Rng seed_rng(GetParam());
  const size_t producers = 2 + seed_rng.UniformInt(3);  // 2..4
  const size_t consumers = 2 + seed_rng.UniformInt(3);  // 2..4
  const uint32_t items_per_producer = 2000;

  ThreadSafeQueue<Item> queue;

  std::vector<std::thread> producer_threads;
  for (size_t p = 0; p < producers; ++p) {
    producer_threads.emplace_back([&queue, p, items_per_producer,
                                   seed = GetParam()] {
      Rng rng(seed * 100 + p);
      for (uint32_t i = 0; i < items_per_producer; ++i) {
        ASSERT_TRUE(queue.Push(Item{static_cast<uint32_t>(p), i}));
        if (rng.UniformInt(16) == 0) std::this_thread::yield();
      }
    });
  }

  // Each consumer records its own stream; merged afterwards.
  std::vector<std::vector<Item>> streams(consumers);
  std::vector<std::thread> consumer_threads;
  for (size_t c = 0; c < consumers; ++c) {
    consumer_threads.emplace_back([&queue, &streams, c] {
      while (std::optional<Item> item = queue.WaitPop()) {
        streams[c].push_back(*item);
      }
    });
  }

  for (std::thread& thread : producer_threads) thread.join();
  queue.Close();
  for (std::thread& thread : consumer_threads) thread.join();

  // (1) No loss, no duplication: per-producer sequence sets are exactly
  // {0, ..., items_per_producer-1}.
  std::map<uint32_t, std::vector<uint32_t>> by_producer;
  size_t total = 0;
  for (const std::vector<Item>& stream : streams) {
    total += stream.size();
    for (const Item& item : stream) {
      by_producer[item.producer].push_back(item.sequence);
    }
  }
  EXPECT_EQ(total, producers * items_per_producer);
  ASSERT_EQ(by_producer.size(), producers);
  for (auto& [producer, sequences] : by_producer) {
    ASSERT_EQ(sequences.size(), items_per_producer) << "producer " << producer;
    std::sort(sequences.begin(), sequences.end());
    for (uint32_t i = 0; i < items_per_producer; ++i) {
      ASSERT_EQ(sequences[i], i) << "producer " << producer;
    }
  }

  // (2) Per-consumer streams preserve each producer's push order (FIFO
  // through the single queue ⇒ any one consumer sees any one producer's
  // items in increasing sequence order).
  for (size_t c = 0; c < consumers; ++c) {
    std::map<uint32_t, uint32_t> last_seen;
    for (const Item& item : streams[c]) {
      auto it = last_seen.find(item.producer);
      if (it != last_seen.end()) {
        ASSERT_LT(it->second, item.sequence)
            << "consumer " << c << " saw producer " << item.producer
            << " out of order";
      }
      last_seen[item.producer] = item.sequence;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueStressTest,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace odbgc
