#include "util/metrics_registry.h"

#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(MetricsRegistryTest, RegisterIsIdempotentAndStable) {
  MetricsRegistry registry;
  MetricCounter* a = registry.Register("device.page_reads");
  MetricCounter* b = registry.Register("device.page_reads");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);

  // Pointers stay valid as more counters are registered (node-based map).
  registry.Register("aaa");
  registry.Register("zzz");
  a->Add(MetricPhase::kApplication, 3);
  EXPECT_EQ(registry.Find("device.page_reads")->total(), 3u);
}

TEST(MetricsRegistryTest, FindUnknownReturnsNull) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Find("nope"), nullptr);
}

TEST(MetricsRegistryTest, CountChargesCurrentPhase) {
  MetricsRegistry registry;
  MetricCounter* c = registry.Register("io");
  registry.Count(c);
  registry.set_phase(MetricPhase::kCollector);
  registry.Count(c, 5);
  registry.set_phase(MetricPhase::kApplication);
  registry.Count(c);

  EXPECT_EQ(c->value(MetricPhase::kApplication), 2u);
  EXPECT_EQ(c->value(MetricPhase::kCollector), 5u);
  EXPECT_EQ(c->total(), 7u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.Register("zeta")->Add(MetricPhase::kApplication, 1);
  registry.Register("alpha")->Add(MetricPhase::kCollector, 2);
  registry.Register("mid")->Add(MetricPhase::kApplication, 3);

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[0].collector, 2u);
  EXPECT_EQ(snapshot[1].name, "mid");
  EXPECT_EQ(snapshot[2].name, "zeta");
  EXPECT_EQ(snapshot[2].total(), 1u);
}

TEST(MetricsRegistryTest, ResetCountersKeepsHandles) {
  MetricsRegistry registry;
  MetricCounter* c = registry.Register("io");
  c->Add(MetricPhase::kApplication, 9);
  registry.ResetCounters();
  EXPECT_EQ(c->total(), 0u);
  EXPECT_EQ(registry.size(), 1u);
  c->Add(MetricPhase::kCollector, 1);
  EXPECT_EQ(registry.Find("io")->total(), 1u);
}

TEST(MetricsRegistryTest, SaveLoadRoundTrip) {
  MetricsRegistry registry;
  registry.Register("buffer.hits")->Add(MetricPhase::kApplication, 10);
  registry.Register("buffer.hits")->Add(MetricPhase::kCollector, 4);
  registry.Register("device.page_reads")->Add(MetricPhase::kCollector, 7);

  std::stringstream stream;
  registry.Save(stream);

  MetricsRegistry restored;
  ASSERT_TRUE(restored.Load(stream).ok());
  ASSERT_NE(restored.Find("buffer.hits"), nullptr);
  EXPECT_EQ(restored.Find("buffer.hits")->value(MetricPhase::kApplication),
            10u);
  EXPECT_EQ(restored.Find("buffer.hits")->value(MetricPhase::kCollector), 4u);
  EXPECT_EQ(restored.Find("device.page_reads")->total(), 7u);
}

TEST(MetricsRegistryTest, LoadZeroesCountersAbsentFromStream) {
  MetricsRegistry source;
  source.Register("a")->Add(MetricPhase::kApplication, 1);
  std::stringstream stream;
  source.Save(stream);

  // The destination has an extra counter with live state; after Load it
  // must reflect exactly the checkpointed registry (extra counter zeroed).
  MetricsRegistry dest;
  MetricCounter* extra = dest.Register("extra");
  extra->Add(MetricPhase::kCollector, 99);
  ASSERT_TRUE(dest.Load(stream).ok());
  EXPECT_EQ(dest.Find("a")->total(), 1u);
  EXPECT_EQ(extra->total(), 0u);
}

TEST(MetricsRegistryTest, LoadRejectsTruncatedStream) {
  MetricsRegistry source;
  source.Register("counter")->Add(MetricPhase::kApplication, 1);
  std::stringstream stream;
  source.Save(stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);

  std::stringstream truncated(bytes);
  MetricsRegistry dest;
  EXPECT_FALSE(dest.Load(truncated).ok());
}

TEST(MergeMetricSamplesTest, SumsByNameAcrossParts) {
  const std::vector<std::vector<MetricSample>> parts = {
      {{"buffer.hits", 10, 2}, {"disk.reads", 5, 1}},
      {{"disk.reads", 3, 4}, {"ssd.erases", 0, 7}},
  };
  const auto merged = MergeMetricSamples(parts);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].name, "buffer.hits");
  EXPECT_EQ(merged[0].application, 10u);
  EXPECT_EQ(merged[1].name, "disk.reads");
  EXPECT_EQ(merged[1].application, 8u);
  EXPECT_EQ(merged[1].collector, 5u);
  EXPECT_EQ(merged[2].name, "ssd.erases");
  EXPECT_EQ(merged[2].collector, 7u);
}

TEST(MergeMetricSamplesTest, OrderOfPartsIsIrrelevant) {
  // The concurrent simulator merges shard registries in whatever order
  // workers finish; determinism of the aggregate depends on this.
  const std::vector<MetricSample> a = {{"x", 1, 2}, {"y", 3, 0}};
  const std::vector<MetricSample> b = {{"y", 10, 1}, {"z", 0, 5}};
  const std::vector<MetricSample> c = {{"x", 7, 7}};
  const auto forward = MergeMetricSamples({a, b, c});
  const auto backward = MergeMetricSamples({c, b, a});
  ASSERT_EQ(forward.size(), backward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].name, backward[i].name);
    EXPECT_EQ(forward[i].application, backward[i].application);
    EXPECT_EQ(forward[i].collector, backward[i].collector);
  }
}

TEST(MergeMetricSamplesTest, EmptyAndSingleton) {
  EXPECT_TRUE(MergeMetricSamples({}).empty());
  const auto one = MergeMetricSamples({{{"only", 4, 2}}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].name, "only");
  EXPECT_EQ(one[0].total(), 6u);
}

}  // namespace
}  // namespace odbgc
