#include "util/metrics_registry.h"

#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(MetricsRegistryTest, RegisterIsIdempotentAndStable) {
  MetricsRegistry registry;
  MetricCounter* a = registry.Register("device.page_reads");
  MetricCounter* b = registry.Register("device.page_reads");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);

  // Pointers stay valid as more counters are registered (node-based map).
  registry.Register("aaa");
  registry.Register("zzz");
  a->Add(MetricPhase::kApplication, 3);
  EXPECT_EQ(registry.Find("device.page_reads")->total(), 3u);
}

TEST(MetricsRegistryTest, FindUnknownReturnsNull) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Find("nope"), nullptr);
}

TEST(MetricsRegistryTest, CountChargesCurrentPhase) {
  MetricsRegistry registry;
  MetricCounter* c = registry.Register("io");
  registry.Count(c);
  registry.set_phase(MetricPhase::kCollector);
  registry.Count(c, 5);
  registry.set_phase(MetricPhase::kApplication);
  registry.Count(c);

  EXPECT_EQ(c->value(MetricPhase::kApplication), 2u);
  EXPECT_EQ(c->value(MetricPhase::kCollector), 5u);
  EXPECT_EQ(c->total(), 7u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.Register("zeta")->Add(MetricPhase::kApplication, 1);
  registry.Register("alpha")->Add(MetricPhase::kCollector, 2);
  registry.Register("mid")->Add(MetricPhase::kApplication, 3);

  const std::vector<MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[0].collector, 2u);
  EXPECT_EQ(snapshot[1].name, "mid");
  EXPECT_EQ(snapshot[2].name, "zeta");
  EXPECT_EQ(snapshot[2].total(), 1u);
}

TEST(MetricsRegistryTest, ResetCountersKeepsHandles) {
  MetricsRegistry registry;
  MetricCounter* c = registry.Register("io");
  c->Add(MetricPhase::kApplication, 9);
  registry.ResetCounters();
  EXPECT_EQ(c->total(), 0u);
  EXPECT_EQ(registry.size(), 1u);
  c->Add(MetricPhase::kCollector, 1);
  EXPECT_EQ(registry.Find("io")->total(), 1u);
}

TEST(MetricsRegistryTest, SaveLoadRoundTrip) {
  MetricsRegistry registry;
  registry.Register("buffer.hits")->Add(MetricPhase::kApplication, 10);
  registry.Register("buffer.hits")->Add(MetricPhase::kCollector, 4);
  registry.Register("device.page_reads")->Add(MetricPhase::kCollector, 7);

  std::stringstream stream;
  registry.Save(stream);

  MetricsRegistry restored;
  ASSERT_TRUE(restored.Load(stream).ok());
  ASSERT_NE(restored.Find("buffer.hits"), nullptr);
  EXPECT_EQ(restored.Find("buffer.hits")->value(MetricPhase::kApplication),
            10u);
  EXPECT_EQ(restored.Find("buffer.hits")->value(MetricPhase::kCollector), 4u);
  EXPECT_EQ(restored.Find("device.page_reads")->total(), 7u);
}

TEST(MetricsRegistryTest, LoadZeroesCountersAbsentFromStream) {
  MetricsRegistry source;
  source.Register("a")->Add(MetricPhase::kApplication, 1);
  std::stringstream stream;
  source.Save(stream);

  // The destination has an extra counter with live state; after Load it
  // must reflect exactly the checkpointed registry (extra counter zeroed).
  MetricsRegistry dest;
  MetricCounter* extra = dest.Register("extra");
  extra->Add(MetricPhase::kCollector, 99);
  ASSERT_TRUE(dest.Load(stream).ok());
  EXPECT_EQ(dest.Find("a")->total(), 1u);
  EXPECT_EQ(extra->total(), 0u);
}

TEST(MetricsRegistryTest, LoadRejectsTruncatedStream) {
  MetricsRegistry source;
  source.Register("counter")->Add(MetricPhase::kApplication, 1);
  std::stringstream stream;
  source.Save(stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);

  std::stringstream truncated(bytes);
  MetricsRegistry dest;
  EXPECT_FALSE(dest.Load(truncated).ok());
}

}  // namespace
}  // namespace odbgc
