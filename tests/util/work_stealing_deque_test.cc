#include "util/work_stealing_deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace odbgc {
namespace {

TEST(WorkStealingDequeTest, OwnerLifoOrder) {
  WorkStealingDeque<int> deque;
  deque.PushBottom(1);
  deque.PushBottom(2);
  deque.PushBottom(3);
  EXPECT_EQ(deque.PopBottom(), 3);
  EXPECT_EQ(deque.PopBottom(), 2);
  EXPECT_EQ(deque.PopBottom(), 1);
  EXPECT_EQ(deque.PopBottom(), std::nullopt);
}

TEST(WorkStealingDequeTest, StealTakesOldestFirst) {
  WorkStealingDeque<int> deque;
  deque.PushBottom(1);
  deque.PushBottom(2);
  deque.PushBottom(3);
  EXPECT_EQ(deque.StealTop(), 1);
  EXPECT_EQ(deque.StealTop(), 2);
  // Owner and thief converge on the last element; exactly one gets it.
  EXPECT_EQ(deque.PopBottom(), 3);
  EXPECT_EQ(deque.StealTop(), std::nullopt);
}

TEST(WorkStealingDequeTest, EmptyFromTheStart) {
  WorkStealingDeque<uint64_t> deque;
  EXPECT_TRUE(deque.Empty());
  EXPECT_EQ(deque.PopBottom(), std::nullopt);
  EXPECT_EQ(deque.StealTop(), std::nullopt);
}

TEST(WorkStealingDequeTest, GrowsPastInitialCapacity) {
  WorkStealingDeque<int> deque(/*initial_capacity=*/4);
  const uint64_t before = deque.Capacity();
  for (int i = 0; i < 1000; ++i) deque.PushBottom(i);
  EXPECT_GT(deque.Capacity(), before);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(deque.PopBottom(), i);
  EXPECT_EQ(deque.PopBottom(), std::nullopt);
}

TEST(WorkStealingDequeTest, GrowthPreservesOrderForThieves) {
  WorkStealingDeque<int> deque(/*initial_capacity=*/4);
  for (int i = 0; i < 64; ++i) deque.PushBottom(i);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(deque.StealTop(), i);
}

// The contended contract: with one owner pushing/popping and several
// thieves stealing, every pushed element is consumed exactly once —
// checked by summing (each value appears once, so the sums match) and by
// counting.
TEST(WorkStealingDequeStressTest, EveryElementConsumedExactlyOnce) {
  constexpr int kThieves = 3;
  constexpr uint64_t kItems = 100000;
  WorkStealingDeque<uint64_t> deque(/*initial_capacity=*/8);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> stolen_sum{0};
  std::atomic<uint64_t> stolen_count{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      uint64_t sum = 0, count = 0;
      while (!done.load(std::memory_order_acquire) || !deque.Empty()) {
        if (auto v = deque.StealTop()) {
          sum += *v;
          ++count;
        }
      }
      stolen_sum.fetch_add(sum);
      stolen_count.fetch_add(count);
    });
  }

  uint64_t popped_sum = 0, popped_count = 0;
  for (uint64_t i = 1; i <= kItems; ++i) {
    deque.PushBottom(i);
    // Interleave pops so the owner races the thieves on a short deque.
    if (i % 3 == 0) {
      if (auto v = deque.PopBottom()) {
        popped_sum += *v;
        ++popped_count;
      }
    }
  }
  while (auto v = deque.PopBottom()) {
    popped_sum += *v;
    ++popped_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Late arrivals: thieves may have quit between the owner's last pop and
  // done; drain the rest.
  while (auto v = deque.PopBottom()) {
    popped_sum += *v;
    ++popped_count;
  }

  EXPECT_EQ(popped_count + stolen_count.load(), kItems);
  EXPECT_EQ(popped_sum + stolen_sum.load(), kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace odbgc
