#include "util/status.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad page");
  EXPECT_EQ(s.ToString(), "Corruption: bad page");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusCodeTest, Names) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace {
Status FailsThrough() {
  ODBGC_RETURN_IF_ERROR(Status::IoError("inner"));
  return Status::Ok();
}
Status Succeeds() {
  ODBGC_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached end");
}
}  // namespace

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kIoError);
  EXPECT_EQ(Succeeds().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace odbgc
