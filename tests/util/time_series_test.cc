#include "util/time_series.h"

#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TimeSeries Ramp(const std::string& name, int n) {
  TimeSeries s(name);
  for (int i = 0; i < n; ++i) s.Add(i, i * 2.0);
  return s;
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries s("x");
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.MaxY(), 0.0);
  EXPECT_DOUBLE_EQ(s.LastY(), 0.0);
  s.Add(1, 10);
  s.Add(2, 5);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.MaxY(), 10.0);
  EXPECT_DOUBLE_EQ(s.LastY(), 5.0);
  EXPECT_EQ(s.name(), "x");
}

TEST(TimeSeriesTest, DownsampleKeepsEndpoints) {
  TimeSeries s = Ramp("r", 1000);
  TimeSeries d = s.Downsample(50);
  ASSERT_LE(d.points().size(), 50u);
  EXPECT_DOUBLE_EQ(d.points().front().x, 0.0);
  EXPECT_DOUBLE_EQ(d.points().back().x, 999.0);
}

TEST(TimeSeriesTest, DownsampleNoOpWhenSmall) {
  TimeSeries s = Ramp("r", 10);
  TimeSeries d = s.Downsample(50);
  EXPECT_EQ(d.points().size(), 10u);
}

TEST(TimeSeriesTest, GnuplotFormat) {
  std::ostringstream os;
  WriteGnuplot({Ramp("a", 2), Ramp("b", 2)}, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# a"), std::string::npos);
  EXPECT_NE(out.find("# b"), std::string::npos);
  EXPECT_NE(out.find("1 2"), std::string::npos);
  // Series separated by a blank line (gnuplot "index" convention).
  EXPECT_NE(out.find("\n\n"), std::string::npos);
}

TEST(TimeSeriesTest, CsvMergesByX) {
  TimeSeries a("a"), b("b");
  a.Add(1, 10);
  a.Add(2, 20);
  b.Add(2, 200);
  b.Add(3, 300);
  std::ostringstream os;
  WriteCsv({a, b}, os);
  EXPECT_EQ(os.str(), "x,a,b\n1,10,\n2,20,200\n3,,300\n");
}

TEST(TimeSeriesTest, AsciiRenderSmoke) {
  std::ostringstream os;
  RenderAscii({Ramp("r", 100)}, os, 40, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("r"), std::string::npos);
}

TEST(TimeSeriesTest, AsciiRenderEmpty) {
  std::ostringstream os;
  RenderAscii({}, os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace odbgc
