#include "util/epoch_garbage_list.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/epoch.h"
#include "util/random.h"

namespace odbgc {
namespace {

TEST(EpochGarbageListTest, ReclaimsOnlyUpToSafeEpoch) {
  EpochGarbageList<int> list;
  list.Retire(10, /*epoch=*/1);
  list.Retire(11, /*epoch=*/2);
  list.Retire(12, /*epoch=*/4);
  EXPECT_EQ(list.size(), 3u);

  std::vector<int> reclaimed;
  EXPECT_EQ(list.ReclaimUpTo(0, [&](int v) { reclaimed.push_back(v); }), 0u);
  EXPECT_TRUE(reclaimed.empty());

  EXPECT_EQ(list.ReclaimUpTo(2, [&](int v) { reclaimed.push_back(v); }), 2u);
  EXPECT_EQ(reclaimed, (std::vector<int>{10, 11}));  // Retire order.
  EXPECT_EQ(list.size(), 1u);

  EXPECT_EQ(list.ReclaimUpTo(3, [&](int v) { reclaimed.push_back(v); }), 0u);
  EXPECT_EQ(list.DrainAll([&](int v) { reclaimed.push_back(v); }), 1u);
  EXPECT_EQ(reclaimed, (std::vector<int>{10, 11, 12}));
  EXPECT_TRUE(list.empty());
}

// ---------------------------------------------------------------------------
// Model check (serial, seeds ×4): random retire/bump/reclaim schedule over
// an EpochManager with simulated pinned threads, mirrored into a reference
// model. The invariant: ReclaimUpTo(SafeEpoch()) never yields an item whose
// retire epoch is still protected by any pin — i.e. every reclaimed item's
// epoch <= min(pinned)-1 at reclaim time — and items are reclaimed exactly
// once, in retire order.
// ---------------------------------------------------------------------------

class GarbageListModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GarbageListModelTest, NoReclaimBeforeGracePeriod) {
  constexpr size_t kThreads = 4;
  constexpr int kSteps = 4000;

  EpochManager manager;
  EpochGarbageList<uint64_t> list;

  std::vector<EpochManager::ThreadSlot*> slots;
  std::vector<uint64_t> pinned_at(kThreads, 0);  // Model: 0 = unpinned.
  for (size_t i = 0; i < kThreads; ++i) {
    slots.push_back(manager.RegisterThread());
    ASSERT_NE(slots.back(), nullptr);
  }

  // Model state: item -> retire epoch, plus expected FIFO order.
  std::deque<std::pair<uint64_t, uint64_t>> model_pending;  // (item, epoch)
  std::set<uint64_t> reclaimed_items;
  uint64_t next_item = 0;

  Rng rng(GetParam());
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t op = rng.UniformInt(10);
    if (op < 3) {  // Retire an item under the current epoch.
      const uint64_t epoch = manager.current_epoch();
      list.Retire(next_item, epoch);
      model_pending.emplace_back(next_item, epoch);
      ++next_item;
    } else if (op < 5) {  // Pin a random thread.
      const size_t t = rng.UniformInt(kThreads);
      manager.Pin(slots[t]);
      pinned_at[t] = manager.current_epoch();
    } else if (op < 7) {  // Unpin.
      const size_t t = rng.UniformInt(kThreads);
      manager.Unpin(slots[t]);
      pinned_at[t] = 0;
    } else if (op < 8) {  // Bump.
      manager.BumpEpoch();
    } else {  // Reclaim at the manager's safety bound.
      const uint64_t safe = manager.SafeEpoch();
      // Grace-period invariant, checked against the model's pin state: no
      // pinned thread may still be inside an epoch <= safe.
      for (size_t t = 0; t < kThreads; ++t) {
        if (pinned_at[t] != 0) {
          ASSERT_GT(pinned_at[t], safe)
              << "SafeEpoch() " << safe << " overlaps thread " << t
              << " pinned at " << pinned_at[t];
        }
      }
      std::vector<uint64_t> got;
      list.ReclaimUpTo(safe, [&](uint64_t item) { got.push_back(item); });
      // The model reclaims the same FIFO prefix.
      for (uint64_t item : got) {
        ASSERT_FALSE(model_pending.empty());
        ASSERT_EQ(model_pending.front().first, item) << "order violated";
        ASSERT_LE(model_pending.front().second, safe)
            << "item reclaimed before its grace period";
        ASSERT_TRUE(reclaimed_items.insert(item).second)
            << "item reclaimed twice";
        model_pending.pop_front();
      }
      // Nothing reclaimable was left behind.
      if (!model_pending.empty()) {
        ASSERT_GT(model_pending.front().second, safe);
      }
      ASSERT_EQ(list.size(), model_pending.size());
    }
  }

  // Drain at shutdown: every retired item is reclaimed exactly once.
  for (EpochManager::ThreadSlot* slot : slots) manager.UnregisterThread(slot);
  list.DrainAll([&](uint64_t item) {
    ASSERT_TRUE(reclaimed_items.insert(item).second);
  });
  EXPECT_EQ(reclaimed_items.size(), next_item);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageListModelTest,
                         ::testing::Values(31u, 32u, 33u, 34u));

// ---------------------------------------------------------------------------
// Concurrent stress: each mutator round pins, retires a fresh unique token
// under the pinned epoch, and keeps that token "in use" until it unpins; a
// reclaimer thread reclaims at SafeEpoch(). The reclaimer asserts it never
// receives a token whose owning critical section is still open — exactly
// the use-after-free the grace period must prevent.
// ---------------------------------------------------------------------------

class GarbageListStressTest : public ::testing::TestWithParam<uint64_t> {};

constexpr uint64_t kNoToken = UINT64_MAX;

TEST_P(GarbageListStressTest, ReclaimNeverSeesInUseToken) {
  constexpr size_t kMutators = 3;
  constexpr uint64_t kRounds = 1500;

  EpochManager manager;
  EpochGarbageList<uint64_t> list;
  // in_use[t] holds the token mutator t is using inside its current pin
  // (kNoToken outside a critical section). Tokens are globally unique:
  // token = t * kRounds + round.
  std::atomic<uint64_t> in_use[kMutators];
  for (std::atomic<uint64_t>& slot : in_use) slot.store(kNoToken);
  std::atomic<size_t> mutators_done{0};

  std::vector<std::thread> mutators;
  for (size_t t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&, t] {
      EpochManager::ThreadSlot* slot = manager.RegisterThread();
      ASSERT_NE(slot, nullptr);
      Rng rng(GetParam() * 100 + t);
      for (uint64_t round = 0; round < kRounds; ++round) {
        const uint64_t token = t * kRounds + round;
        {
          EpochGuard guard(&manager, slot);
          // Retire under the pinned epoch, then keep using the token —
          // the reclaimer must not free it until we unpin.
          in_use[t].store(token, std::memory_order_seq_cst);
          list.Retire(token, manager.current_epoch());
          volatile uint64_t sink = 0;
          const uint64_t spin = rng.UniformInt(32);
          for (uint64_t i = 0; i < spin; ++i) sink = sink + i;
          in_use[t].store(kNoToken, std::memory_order_seq_cst);
        }
        if (rng.UniformInt(8) == 0) std::this_thread::yield();
      }
      manager.UnregisterThread(slot);
      mutators_done.fetch_add(1, std::memory_order_release);
    });
  }

  size_t reclaimed = 0;
  std::atomic<bool> violation{false};
  auto check_token = [&](uint64_t token) {
    const size_t owner = static_cast<size_t>(token / kRounds);
    if (in_use[owner].load(std::memory_order_seq_cst) == token) {
      violation.store(true);
    }
  };
  while (mutators_done.load(std::memory_order_acquire) < kMutators) {
    manager.BumpEpoch();
    reclaimed += list.ReclaimUpTo(manager.SafeEpoch(), check_token);
    std::this_thread::yield();
  }
  for (std::thread& thread : mutators) thread.join();

  reclaimed += list.DrainAll(check_token);
  EXPECT_FALSE(violation.load()) << "reclaimed a token still in use";
  EXPECT_EQ(reclaimed, kMutators * kRounds);
  EXPECT_TRUE(list.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageListStressTest,
                         ::testing::Values(41u, 42u, 43u, 44u));

}  // namespace
}  // namespace odbgc
