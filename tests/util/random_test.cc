#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next()) << "diverged at draw " << i;
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Next());
  EXPECT_GT(seen.size(), 95u) << "seed 0 must not collapse the state";
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRangeSingleton) {
  Rng rng(15);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.UniformRange(5, 5), 5);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(31);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(33), b(33);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.Next(), fb.Next());
}

}  // namespace
}  // namespace odbgc
