#include "util/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace odbgc {
namespace {

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  TaskPool pool(4);
  TaskPool::TaskGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit(&group, [&](TaskPool::Context&) { ran.fetch_add(1); });
  }
  pool.Wait(&group);
  EXPECT_EQ(ran.load(), 100);
  EXPECT_GE(pool.executed(), 100u);
}

TEST(TaskPoolTest, SingleWorkerPoolStillCompletes) {
  TaskPool pool(1);
  TaskPool::TaskGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit(&group, [&](TaskPool::Context&) { ran.fetch_add(1); });
  }
  pool.Wait(&group);
  EXPECT_EQ(ran.load(), 10);
}

TEST(TaskPoolTest, WorkerIndicesAreInRange) {
  TaskPool pool(3);
  TaskPool::TaskGroup group;
  std::atomic<uint32_t> bad{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit(&group, [&](TaskPool::Context& ctx) {
      if (ctx.pool == nullptr || ctx.worker_index >= 3) bad.fetch_add(1);
      if (!ctx.pool->OnWorkerThread()) bad.fetch_add(1);
    });
  }
  pool.Wait(&group);
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_FALSE(pool.OnWorkerThread());
}

// Tasks spawning subtasks into the same group: Wait must cover the
// transitive wave, not just the initial submissions.
TEST(TaskPoolTest, NestedSpawnsAreWaitedFor) {
  TaskPool pool(4);
  TaskPool::TaskGroup group;
  std::atomic<int> leaves{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&group, [&group, &leaves](TaskPool::Context& ctx) {
      for (int j = 0; j < 8; ++j) {
        ctx.pool->Submit(&group, [&leaves](TaskPool::Context&) {
          leaves.fetch_add(1);
        });
      }
    });
  }
  pool.Wait(&group);
  EXPECT_EQ(leaves.load(), 64);
}

// A worker that Waits on a subgroup must help (execute other tasks)
// rather than deadlock — the shape of a shard task blocking on its
// marking wave.
TEST(TaskPoolTest, WorkerWaitHelpsInsteadOfDeadlocking) {
  TaskPool pool(2);
  TaskPool::TaskGroup outer;
  std::atomic<int> inner_ran{0};
  std::atomic<int> outer_done{0};
  // More outer tasks than workers: if Wait parked the worker instead of
  // helping, the fan-out below could starve.
  for (int i = 0; i < 6; ++i) {
    pool.Submit(&outer, [&](TaskPool::Context& ctx) {
      TaskPool::TaskGroup inner;
      for (int j = 0; j < 16; ++j) {
        ctx.pool->Submit(&inner, [&inner_ran](TaskPool::Context&) {
          inner_ran.fetch_add(1);
        });
      }
      ctx.pool->Wait(&inner);  // Helping wait on a worker thread.
      outer_done.fetch_add(1);
    });
  }
  pool.Wait(&outer);
  EXPECT_EQ(outer_done.load(), 6);
  EXPECT_EQ(inner_ran.load(), 6 * 16);
}

TEST(TaskPoolTest, GroupIsReusableAcrossWaves) {
  TaskPool pool(2);
  TaskPool::TaskGroup group;
  std::atomic<int> ran{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit(&group, [&](TaskPool::Context&) { ran.fetch_add(1); });
    }
    pool.Wait(&group);
    EXPECT_EQ(ran.load(), (wave + 1) * 20);
  }
}

TEST(TaskPoolTest, DestructorDrainsUnwaitedTasks) {
  std::atomic<int> ran{0};
  TaskPool::TaskGroup group;
  {
    TaskPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit(&group, [&](TaskPool::Context&) { ran.fetch_add(1); });
    }
    // No Wait: the destructor must complete (not drop) the queue.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(TaskPoolTest, BusySecondsCoversEveryWorkerSlot) {
  TaskPool pool(3);
  TaskPool::TaskGroup group;
  std::atomic<uint64_t> sink{0};
  for (int i = 0; i < 300; ++i) {
    pool.Submit(&group, [&](TaskPool::Context&) {
      uint64_t x = 1;
      for (int k = 0; k < 10000; ++k) x = x * 2862933555777941757ull + 3037;
      sink.fetch_add(x, std::memory_order_relaxed);
    });
  }
  pool.Wait(&group);
  const std::vector<double> busy = pool.BusySeconds();
  ASSERT_EQ(busy.size(), 3u);
  double total = 0;
  for (double b : busy) {
    EXPECT_GE(b, 0.0);
    total += b;
  }
  EXPECT_GT(total, 0.0);
}

// Stealing is the load-balancing mechanism: a single external submitter
// whose tasks spawn locally must end up spread over the workers.
TEST(TaskPoolStressTest, SkewedSpawnLoadIsStolen) {
  TaskPool pool(4);
  TaskPool::TaskGroup group;
  std::atomic<uint64_t> ran{0};
  // One root task fans out 2000 locally-spawned tasks; without stealing
  // they would all run on the root's worker.
  pool.Submit(&group, [&](TaskPool::Context& ctx) {
    for (int i = 0; i < 2000; ++i) {
      ctx.pool->Submit(&group, [&ran](TaskPool::Context&) {
        uint64_t x = 1;
        for (int k = 0; k < 2000; ++k) x = x * 6364136223846793005ull + 1;
        ran.fetch_add(x != 0 ? 1 : 0, std::memory_order_relaxed);
      });
    }
  });
  pool.Wait(&group);
  EXPECT_EQ(ran.load(), 2000u);
  EXPECT_GT(pool.steals(), 0u);
}

}  // namespace
}  // namespace odbgc
