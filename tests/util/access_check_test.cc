#include "util/access_check.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(AccessCheckTest, SameThreadEntersAndNests) {
  ExclusiveAccessCheck check;
  ASSERT_TRUE(check.TryEnter());
  // Re-entry by the holder nests instead of tripping.
  ASSERT_TRUE(check.TryEnter());
  check.Exit();
  check.Exit();
  // Fully exited: entering again succeeds.
  ASSERT_TRUE(check.TryEnter());
  check.Exit();
}

TEST(AccessCheckTest, SecondThreadIsRejectedWhileHeld) {
  ExclusiveAccessCheck check;
  ASSERT_TRUE(check.TryEnter());
  bool other_entered = true;
  std::thread other([&] { other_entered = check.TryEnter(); });
  other.join();
  EXPECT_FALSE(other_entered);
  check.Exit();
}

TEST(AccessCheckTest, IdleHandoffBetweenThreadsIsAllowed) {
  // The batch schedulers migrate a quiescent heap (and its pool) across
  // workers with a happens-before edge; the check must permit that.
  ExclusiveAccessCheck check;
  ASSERT_TRUE(check.TryEnter());
  check.Exit();
  bool entered = false;
  std::thread other([&] {
    entered = check.TryEnter();
    if (entered) check.Exit();
  });
  other.join();
  EXPECT_TRUE(entered);
  // And back to this thread again.
  ASSERT_TRUE(check.TryEnter());
  check.Exit();
}

TEST(AccessCheckTest, ManySequentialHandoffsNeverTrip) {
  ExclusiveAccessCheck check;
  std::atomic<int> failures{0};
  for (int i = 0; i < 64; ++i) {
    std::thread worker([&] {
      if (!check.TryEnter()) {
        failures.fetch_add(1);
        return;
      }
      check.Exit();
    });
    worker.join();  // Join is the happens-before edge between owners.
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(AccessCheckTest, SelfIdIsNonZeroAndStable) {
  const uint64_t a = ExclusiveAccessCheck::SelfId();
  const uint64_t b = ExclusiveAccessCheck::SelfId();
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace odbgc
