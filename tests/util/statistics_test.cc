#include "util/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStatTest, KnownValues) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample stddev sqrt(32/7).
  RunningStat s;
  for (double x : {2, 4, 4, 4, 5, 5, 7, 9}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, NegativeValues) {
  RunningStat s;
  for (double x : {-1.0, -5.0, 3.0}) s.Add(x);
  EXPECT_NEAR(s.mean(), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 57; ++i) {
    const double x = std::sin(i) * 10;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  const double mean = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  RunningStat b;
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(StatisticsTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(StdDev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(RunningStatTest, LargeStreamStable) {
  // Welford must not lose precision on an offset stream.
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.stddev(), 0.5, 1e-3);
}

}  // namespace
}  // namespace odbgc
