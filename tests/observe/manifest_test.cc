// Run manifests: schema validity for every registered policy, canonical
// byte-stability, digest semantics, file round-trips, the runner's
// manifest emission, and the acceptance property — a crash/resumed run's
// manifest is byte-identical to an uninterrupted run's.

#include "observe/manifest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "recovery/recover.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

SimulationConfig TinyConfig(uint64_t seed = 1) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.snapshot_interval = 2000;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "odbgc_manifest_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

SimulationResult RunOnce(SimulationConfig config) {
  Simulator simulator(config);
  EXPECT_TRUE(simulator.Run().ok());
  return simulator.Finish();
}

TEST(ManifestTest, EveryRegisteredPolicyProducesAValidManifest) {
  for (const std::string& name : RegisteredPolicyNames()) {
    SimulationConfig config = TinyConfig();
    config.heap.policy_name = name;
    const SimulationResult result = RunOnce(config);
    EXPECT_EQ(result.policy_name, name);

    const Json manifest = BuildManifest(config, result);
    const Status valid = ValidateManifest(manifest);
    EXPECT_TRUE(valid.ok()) << name << ": " << valid.ToString();
    EXPECT_EQ(manifest.Get("policy")->string_value(), name);
    EXPECT_EQ(manifest.Get("seed")->uint_value(), config.seed);
  }
}

TEST(ManifestTest, EmitParseReEmitIsByteIdentical) {
  SimulationConfig config = TinyConfig();
  config.heap.policy_name = "UpdatedPointer";
  const Json manifest = BuildManifest(config, RunOnce(config));

  const std::string first = manifest.Dump();
  auto parsed = Json::Parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), first);
}

TEST(ManifestTest, DigestIgnoresExperimentAxesAndDurabilityKnobs) {
  SimulationConfig config = TinyConfig();
  const uint32_t digest = ConfigDigest(config);

  // Seed and policy are the experiment's axes; durability and profiling
  // knobs do not change what a run computes. None may move the digest.
  SimulationConfig variant = config;
  variant.seed = 99;
  variant.heap.policy_name = "Random";
  variant.heap.policy = PolicyKind::kRandom;
  variant.wal_dir = "/tmp/somewhere";
  variant.checkpoint_every_rounds = 5;
  variant.heap.profile_hot_paths = true;
  EXPECT_EQ(ConfigDigest(variant), digest);

  SimulationConfig changed = config;
  changed.heap.overwrite_trigger += 1;
  EXPECT_NE(ConfigDigest(changed), digest);
}

TEST(ManifestTest, FileRoundTripPreservesBytes) {
  SimulationConfig config = TinyConfig();
  config.heap.policy_name = "Random";
  const Json manifest = BuildManifest(config, RunOnce(config));

  const std::string dir = FreshDir("roundtrip");
  const std::string path = dir + "/" + ManifestFileName("Random", 1);
  EXPECT_EQ(ManifestFileName("Random", 1), "Random-s1.json");

  ASSERT_TRUE(WriteManifestFile(path, manifest).ok());
  auto loaded = LoadManifestFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Dump(), manifest.Dump());
}

TEST(ManifestTest, ValidateRejectsBrokenDocuments) {
  SimulationConfig config = TinyConfig();
  config.heap.policy_name = "Random";
  Json manifest = BuildManifest(config, RunOnce(config));

  Json wrong_version = manifest;
  wrong_version.Set("schema_version", Json::UInt(kManifestSchemaVersion + 1));
  EXPECT_EQ(ValidateManifest(wrong_version).code(),
            StatusCode::kInvalidArgument);

  Json missing_field = manifest;
  missing_field.object().erase("result");
  EXPECT_FALSE(ValidateManifest(missing_field).ok());

  Json mismatched = manifest;
  mismatched.Set("policy", Json::Str("MostGarbage"));
  EXPECT_FALSE(ValidateManifest(mismatched).ok());

  EXPECT_FALSE(ValidateManifest(Json::Arr()).ok());
}

TEST(ManifestTest, RunnerEmitsOneManifestPerRun) {
  const std::string dir = FreshDir("runner");
  ExperimentSpec spec;
  spec.base = TinyConfig();
  spec.policies = {"UpdatedPointer", "Random"};
  spec.num_seeds = 2;
  spec.manifest_dir = dir;

  auto experiment = RunExperiment(spec);
  ASSERT_TRUE(experiment.ok()) << experiment.status().ToString();

  for (const std::string& policy : spec.policies) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      const std::string path = dir + "/" + ManifestFileName(policy, seed);
      auto manifest = LoadManifestFile(path);
      ASSERT_TRUE(manifest.ok()) << path << ": "
                                 << manifest.status().ToString();
      EXPECT_EQ(manifest->Get("policy")->string_value(), policy);
      EXPECT_EQ(manifest->Get("seed")->uint_value(), seed);
    }
  }

  // The emitted manifest is exactly BuildManifest of the run: rebuild one
  // from the returned results and compare bytes.
  SimulationConfig config = spec.base;
  config.heap.policy_name = "Random";
  config.seed = 2;
  const PolicyRuns* set = experiment->Find(std::string("Random"));
  ASSERT_NE(set, nullptr);
  const Json rebuilt = BuildManifest(config, set->runs[1]);
  auto emitted = LoadManifestFile(dir + "/" + ManifestFileName("Random", 2));
  ASSERT_TRUE(emitted.ok());
  EXPECT_EQ(emitted->Dump(), rebuilt.Dump());
}

// The acceptance property: kill a durable run mid-flight with an injected
// I/O fault, resume it, and the resumed run's manifest must be
// byte-identical to the manifest of an uninterrupted plain run — wal_dir
// and checkpoint cadence are excluded from the document by construction.
TEST(ManifestTest, CrashResumeManifestIsByteIdenticalToUninterrupted) {
  SimulationConfig plain = TinyConfig(3);
  plain.heap.policy_name = "UpdatedPointer";
  const SimulationResult reference = RunOnce(plain);
  const std::string reference_bytes = BuildManifest(plain, reference).Dump();

  SimulationConfig durable_config = plain;
  durable_config.wal_dir = FreshDir("crash_resume");
  durable_config.checkpoint_every_rounds = 20;

  // First attempt dies mid-run.
  {
    auto engine = DurableSimulation::Open(durable_config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    FaultPlan plan;
    plan.fail_after_writes = reference.disk_stats.page_writes / 2;
    (*engine)->simulator().heap().mutable_disk().InjectFaults(plan);
    ASSERT_FALSE((*engine)->Run().ok());
  }

  // Resume completes; its manifest matches the uninterrupted run's bytes.
  auto engine = DurableSimulation::Open(durable_config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE((*engine)->Run().ok());
  const SimulationResult resumed = (*engine)->Finish();
  EXPECT_EQ(BuildManifest(durable_config, resumed).Dump(), reference_bytes);
}

}  // namespace
}  // namespace odbgc
