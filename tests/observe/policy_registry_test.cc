// The string-named policy registry: the open-world identity surface that
// HeapOptions::policy_name, ExperimentSpec and the run manifests key on.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/policies.h"
#include "core/selection_policy.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace odbgc {
namespace {

TEST(PolicyRegistryTest, BuiltinsArePreRegistered) {
  const std::vector<std::string> names = RegisteredPolicyNames();
  for (const std::string& paper : PaperPolicyNames()) {
    EXPECT_TRUE(IsPolicyRegistered(paper)) << paper;
    EXPECT_NE(std::find(names.begin(), names.end(), paper), names.end());
  }
  EXPECT_TRUE(IsPolicyRegistered("LeastRecentlyCollected"));
  EXPECT_TRUE(IsPolicyRegistered("CostBenefit"));
  EXPECT_FALSE(IsPolicyRegistered("NoSuchPolicy"));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistryTest, PaperNamesMatchKindNames) {
  ASSERT_EQ(PaperPolicyNames().size(), AllPolicyKinds().size());
  for (size_t i = 0; i < AllPolicyKinds().size(); ++i) {
    EXPECT_EQ(PaperPolicyNames()[i], PolicyName(AllPolicyKinds()[i]));
  }
}

TEST(PolicyRegistryTest, MakePolicyByNameMatchesKindFactory) {
  for (PolicyKind kind : AllPolicyKinds()) {
    auto by_name = MakePolicy(std::string(PolicyName(kind)), /*seed=*/7);
    ASSERT_TRUE(by_name.ok()) << PolicyName(kind);
    EXPECT_EQ((*by_name)->kind(), kind);
    EXPECT_EQ((*by_name)->name(), PolicyName(kind));
    EXPECT_EQ(MakePolicy(kind, 7)->name(), (*by_name)->name());
  }
}

TEST(PolicyRegistryTest, UnknownNameIsInvalidArgumentListingRegistry) {
  auto policy = MakePolicy(std::string("Bogus"), /*seed=*/1);
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
  // The error teaches the caller what is available.
  EXPECT_NE(policy.status().message().find("UpdatedPointer"),
            std::string::npos)
      << policy.status().ToString();
}

TEST(PolicyRegistryTest, DuplicateRegistrationIsAlreadyExists) {
  auto factory = [](const PolicyContext& context) {
    return MakePolicy(PolicyKind::kRandom, context.seed);
  };
  ASSERT_TRUE(RegisterPolicy("RegistryTestDupe", factory).ok());
  const Status again = RegisterPolicy("RegistryTestDupe", factory);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  // Builtins are protected the same way.
  EXPECT_EQ(RegisterPolicy("Random", factory).code(),
            StatusCode::kAlreadyExists);
}

TEST(PolicyRegistryTest, HeapResolvesPolicyNameAndReflectsIt) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.workload.target_live_bytes = 32ull << 10;
  config.workload.total_alloc_bytes = 80ull << 10;
  config.workload.tree_nodes_min = 40;
  config.workload.tree_nodes_max = 120;
  config.workload.large_object_size = 4096;
  // kind() precedence is irrelevant once a name is given: the name wins.
  config.heap.policy = PolicyKind::kNoCollection;
  config.heap.policy_name = "Random";

  Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());
  EXPECT_EQ(simulator.heap().options().policy, PolicyKind::kRandom);
  EXPECT_EQ(simulator.heap().options().policy_name, "Random");
  EXPECT_EQ(simulator.Finish().policy_name, "Random");
}

TEST(PolicyRegistryTest, RegisteredCustomPolicyRunsByName) {
  // A renamed Random: distinct identity, same behaviour class.
  const Status registered = RegisterPolicy(
      "RegistryTestRandomAlias", [](const PolicyContext& context) {
        class Alias : public SelectionPolicy {
         public:
          explicit Alias(uint64_t seed)
              : inner_(MakePolicy(PolicyKind::kRandom, seed)) {}
          PolicyKind kind() const override { return inner_->kind(); }
          std::string name() const override {
            return "RegistryTestRandomAlias";
          }
          PartitionId Select(const SelectionContext& context) override {
            return inner_->Select(context);
          }

         private:
          std::unique_ptr<SelectionPolicy> inner_;
        };
        return std::make_unique<Alias>(context.seed);
      });
  ASSERT_TRUE(registered.ok()) << registered.ToString();

  auto policy = MakePolicy(std::string("RegistryTestRandomAlias"), 3);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->name(), "RegistryTestRandomAlias");
  EXPECT_EQ((*policy)->kind(), PolicyKind::kRandom);
}

}  // namespace
}  // namespace odbgc
