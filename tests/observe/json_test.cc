// The canonical-JSON model underpinning run manifests. The property that
// matters is byte-stability: Dump() of equal documents is identical, and
// emit -> parse -> re-emit is a fixed point.

#include "observe/json.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(JsonTest, DumpSortsKeysAndUsesFixedLayout) {
  Json doc = Json::Obj();
  doc.Set("zebra", Json::UInt(1));
  doc.Set("alpha", Json::Bool(true));
  Json inner = Json::Arr();
  inner.Push(Json::Str("x"));
  inner.Push(Json::Double(0.5));
  doc.Set("mid", std::move(inner));

  EXPECT_EQ(doc.Dump(),
            "{\n"
            "  \"alpha\": true,\n"
            "  \"mid\": [\n"
            "    \"x\",\n"
            "    0.5\n"
            "  ],\n"
            "  \"zebra\": 1\n"
            "}\n");
}

TEST(JsonTest, EmptyContainersAndScalars) {
  EXPECT_EQ(Json::Obj().Dump(), "{}\n");
  EXPECT_EQ(Json::Arr().Dump(), "[]\n");
  EXPECT_EQ(Json::Null().Dump(), "null\n");
  EXPECT_EQ(Json::Int(-3).Dump(), "-3\n");
  EXPECT_EQ(Json::UInt(18446744073709551615ull).Dump(),
            "18446744073709551615\n");
}

TEST(JsonTest, CanonicalDoubles) {
  EXPECT_EQ(CanonicalDoubleString(0.0), "0");
  EXPECT_EQ(CanonicalDoubleString(-0.0), "-0");
  EXPECT_EQ(CanonicalDoubleString(2.0), "2");
  EXPECT_EQ(CanonicalDoubleString(0.1), "0.1");
  EXPECT_EQ(CanonicalDoubleString(1.0 / 3.0), "0.3333333333333333");
  // Shortest form that round-trips, not a fixed precision.
  const double tricky = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(CanonicalDoubleString(tricky).c_str(), nullptr),
            tricky);
}

TEST(JsonTest, ParseDumpFixedPoint) {
  Json doc = Json::Obj();
  doc.Set("counts", [] {
    Json a = Json::Arr();
    a.Push(Json::UInt(0));
    a.Push(Json::UInt(42));
    return a;
  }());
  doc.Set("name", Json::Str("UpdatedPointer"));
  doc.Set("negative", Json::Int(-7));
  doc.Set("ratio", Json::Double(1.058));
  doc.Set("escaped", Json::Str("line\nbreak \"quoted\" \\slash\x01"));

  const std::string first = doc.Dump();
  auto parsed = Json::Parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), first);
  EXPECT_EQ(*parsed, doc);
}

TEST(JsonTest, IntegralDoubleTypeFlipIsByteInvisible) {
  // Double(2) prints "2"; re-parsing yields a kUInt. The flip must not
  // change bytes on the next emission — that is the manifest contract.
  Json doc = Json::Obj();
  doc.Set("x", Json::Double(2.0));
  const std::string first = doc.Dump();
  auto parsed = Json::Parse(first);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("x")->kind(), Json::Kind::kUInt);
  EXPECT_EQ(parsed->Dump(), first);
}

TEST(JsonTest, NumericEqualityAcrossKinds) {
  EXPECT_EQ(Json::UInt(2), Json::Double(2.0));
  EXPECT_EQ(Json::Int(-1), Json::Double(-1.0));
  EXPECT_NE(Json::UInt(2), Json::UInt(3));
  EXPECT_NE(Json::Int(-1), Json::UInt(1));
  EXPECT_NE(Json::UInt(1), Json::Str("1"));
}

TEST(JsonTest, ParseAcceptsOrdinaryJsonFreedoms) {
  auto parsed = Json::Parse("  { \"b\" : [1, -2, 3.5],\r\n \"a\": null }  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("b")->array()[1], Json::Int(-2));
  EXPECT_TRUE(parsed->Get("a")->is_null());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
  EXPECT_FALSE(Json::Parse("{\"a\": 1, \"a\": 2}").ok());  // Duplicate key.
  EXPECT_FALSE(Json::Parse("{\"a\": }").ok());
  EXPECT_FALSE(Json::Parse("[1, 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1e999").ok());  // Non-finite.
  EXPECT_FALSE(Json::Parse("nul").ok());
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  auto parsed = Json::Parse("\"a\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "aA\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonTest, ControlCharactersEscapeOnDump) {
  Json doc = Json::Str(std::string("\x01\t"));
  EXPECT_EQ(doc.Dump(), "\"\\u0001\\t\"\n");
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, doc);
}

}  // namespace
}  // namespace odbgc
