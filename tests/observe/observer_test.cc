// SimObserver: every layer publishes into the per-run sink, and the
// event sequence (minus wall-clock payloads) is a deterministic function
// of (config, seed) — identical across repeated runs and across runner
// thread counts.

#include "observe/observer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "recovery/recover.h"
#include "sim/runner.h"
#include "sim/simulator.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

/// Formats every event into a line, excluding wall_ns (the one
/// nondeterministic payload) so streams can be compared with ==.
class RecordingObserver : public SimObserver {
 public:
  explicit RecordingObserver(std::vector<std::string>* sink)
      : sink_(sink) {}

  void OnRunStarted(const RunStartedEvent& event) override {
    sink_->push_back("run_started " + event.policy + " s" +
                     std::to_string(event.seed));
  }
  void OnRunFinished(const RunFinishedEvent& event) override {
    sink_->push_back("run_finished " + event.policy + " s" +
                     std::to_string(event.seed) + " events=" +
                     std::to_string(event.app_events) + " app_io=" +
                     std::to_string(event.app_io) + " gc_io=" +
                     std::to_string(event.gc_io) + " reclaimed=" +
                     std::to_string(event.garbage_reclaimed_bytes));
  }
  void OnCollection(const CollectionEvent& event) override {
    collections.push_back(event);
    sink_->push_back(
        "collection #" + std::to_string(event.ordinal) + " victim=" +
        std::to_string(event.victim) + " target=" +
        std::to_string(event.copy_target) + " reclaimed=" +
        std::to_string(event.garbage_reclaimed_bytes) + " copied=" +
        std::to_string(event.live_bytes_copied) + " io=" +
        std::to_string(event.page_reads) + "/" +
        std::to_string(event.page_writes));
  }
  void OnCheckpoint(const CheckpointEvent& event) override {
    sink_->push_back("checkpoint @" + std::to_string(event.round));
  }
  void OnFault(const FaultEvent& event) override {
    sink_->push_back(std::string("fault ") +
                     (event.is_write ? "write" : "read") + " #" +
                     std::to_string(event.ordinal));
  }
  void OnPhase(const PhaseEvent& event) override {
    sink_->push_back(std::string("phase ") + event.phase);
  }

  std::vector<CollectionEvent> collections;

 private:
  std::vector<std::string>* sink_;
};

SimulationConfig TinyConfig(uint64_t seed = 1) {
  SimulationConfig config;
  config.heap.store.page_size = 1024;
  config.heap.store.pages_per_partition = 16;
  config.heap.buffer_pages = 16;
  config.heap.overwrite_trigger = 30;
  config.seed = seed;
  config.snapshot_interval = 2000;
  config.workload.target_live_bytes = 96ull << 10;
  config.workload.total_alloc_bytes = 240ull << 10;
  config.workload.tree_nodes_min = 60;
  config.workload.tree_nodes_max = 200;
  config.workload.large_object_size = 4096;
  return config;
}

std::vector<std::string> ObservedRun(const SimulationConfig& base,
                                     std::vector<CollectionEvent>* collections
                                     = nullptr,
                                     const CollectedHeap** heap_out
                                     = nullptr) {
  std::vector<std::string> lines;
  RecordingObserver observer(&lines);
  SimulationConfig config = base;
  config.heap.observer = &observer;
  Simulator simulator(config);
  EXPECT_TRUE(simulator.Run().ok());
  simulator.Finish();
  if (collections != nullptr) *collections = observer.collections;
  if (heap_out != nullptr) *heap_out = &simulator.heap();
  return lines;
}

TEST(ObserverTest, LifecycleEventsBracketTheRun) {
  SimulationConfig config = TinyConfig();
  config.heap.policy_name = "UpdatedPointer";
  const std::vector<std::string> lines = ObservedRun(config);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.front(), "run_started UpdatedPointer s1");
  EXPECT_EQ(lines.back().rfind("run_finished UpdatedPointer s1", 0), 0u)
      << lines.back();
  // The trigger fires during this workload: collections were published.
  size_t collections = 0, phases = 0;
  for (const std::string& line : lines) {
    collections += line.rfind("collection ", 0) == 0;
    phases += line.rfind("phase ", 0) == 0;
  }
  EXPECT_GT(collections, 0u);
  EXPECT_GT(phases, 0u);
}

TEST(ObserverTest, CollectionEventsMirrorTheCollectionLog) {
  SimulationConfig base = TinyConfig();
  base.heap.policy_name = "UpdatedPointer";

  std::vector<CollectionEvent> events;
  std::vector<std::string> lines;
  RecordingObserver observer(&lines);
  SimulationConfig config = base;
  config.heap.observer = &observer;
  Simulator simulator(config);
  ASSERT_TRUE(simulator.Run().ok());

  const auto& log = simulator.heap().collection_log();
  ASSERT_EQ(observer.collections.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(observer.collections[i].ordinal, i + 1);
    EXPECT_EQ(observer.collections[i].victim, log[i].collected);
    EXPECT_EQ(observer.collections[i].copy_target, log[i].copy_target);
    EXPECT_EQ(observer.collections[i].garbage_reclaimed_bytes,
              log[i].garbage_bytes_reclaimed);
    EXPECT_EQ(observer.collections[i].live_bytes_copied,
              log[i].live_bytes_copied);
    EXPECT_EQ(observer.collections[i].page_reads, log[i].page_reads);
    EXPECT_EQ(observer.collections[i].page_writes, log[i].page_writes);
  }
}

TEST(ObserverTest, EventSequenceIsDeterministicAcrossRepeatedRuns) {
  SimulationConfig config = TinyConfig(5);
  config.heap.policy_name = "Random";  // Seeded: still deterministic.
  EXPECT_EQ(ObservedRun(config), ObservedRun(config));
}

TEST(ObserverTest, RunnerStreamsAreIdenticalAcrossThreadCounts) {
  // Each run records into externally owned storage keyed by (policy,
  // seed), so the streams survive the runner's observer teardown.
  struct Streams {
    std::mutex mutex;
    std::map<std::string, std::vector<std::string>> by_run;
  };

  auto run_with_threads = [](int threads) {
    auto streams = std::make_shared<Streams>();
    ExperimentSpec spec;
    spec.base = TinyConfig();
    spec.policies = {"UpdatedPointer", "Random", "MostGarbage"};
    spec.num_seeds = 2;
    spec.threads = threads;
    spec.observer_factory =
        [streams](const std::string& policy,
                  uint64_t seed) -> std::unique_ptr<SimObserver> {
      std::lock_guard<std::mutex> lock(streams->mutex);
      auto& sink = streams->by_run[policy + "-s" + std::to_string(seed)];
      return std::make_unique<RecordingObserver>(&sink);
    };
    auto experiment = RunExperiment(spec);
    EXPECT_TRUE(experiment.ok()) << experiment.status().ToString();
    return streams->by_run;
  };

  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(4);
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (const auto& [key, lines] : serial) {
    ASSERT_NE(parallel.find(key), parallel.end()) << key;
    EXPECT_EQ(parallel.at(key), lines) << key;
  }
}

TEST(ObserverTest, FaultEventsPublishOnInjectedFailures) {
  std::vector<std::string> lines;
  RecordingObserver observer(&lines);
  SimulationConfig config = TinyConfig();
  config.heap.observer = &observer;

  Simulator simulator(config);
  FaultPlan plan;
  plan.fail_after_writes = 1;
  simulator.heap().mutable_disk().InjectFaults(plan);
  ASSERT_FALSE(simulator.Run().ok());

  ASSERT_EQ(simulator.heap().mutable_disk().faults_fired(), 1u);
  bool saw_fault = false;
  for (const std::string& line : lines) {
    saw_fault = saw_fault || line == "fault write #1";
  }
  EXPECT_TRUE(saw_fault);
}

TEST(ObserverTest, CheckpointEventsPublishFromTheDurableEngine) {
  std::vector<std::string> lines;
  RecordingObserver observer(&lines);
  SimulationConfig config = TinyConfig();
  config.heap.observer = &observer;
  config.wal_dir =
      ::testing::TempDir() + "odbgc_observer_test/checkpoints";
  std::filesystem::remove_all(config.wal_dir);
  config.checkpoint_every_rounds = 25;

  auto result = RunDurableSimulation(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  uint64_t last_round = 0;
  size_t checkpoints = 0;
  for (const std::string& line : lines) {
    if (line.rfind("checkpoint @", 0) != 0) continue;
    const uint64_t round = std::stoull(line.substr(12));
    EXPECT_GT(round, last_round);  // Strictly increasing rounds.
    last_round = round;
    ++checkpoints;
  }
  EXPECT_GT(checkpoints, 0u);
}

}  // namespace
}  // namespace odbgc
