// Equivalence property test for the slot-addressed object table: a
// reference model built on the node-based containers the table replaced
// (per-id hash map, offset-sorted map rosters, swap-with-last root
// vector) is driven through the same randomized alloc / free / move /
// collect / root / slot-write sequences as the real store, and every
// observable — lookup results for every id ever issued, the exact root
// vector, and per-partition occupancy — must agree at every step. This
// pins the dense layout (id directory, slot recycling, root_pos,
// vector rosters) to the old semantics independently of the
// byte-identity harness.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "odb/object_layout.h"
#include "odb/object_store.h"
#include "storage/disk.h"
#include "util/random.h"

namespace odbgc {
namespace {

/// The old map-based object table, reduced to its observable behavior.
/// Placement (which partition, which offset) is the store's decision and
/// is recorded at allocation time; everything after that — bump
/// pointers, rosters, liveness, roots, shadow slots — the model evolves
/// on its own and must stay in lockstep with the dense implementation.
class MapModel {
 public:
  struct Object {
    PartitionId partition = kInvalidPartition;
    uint32_t offset = 0;
    uint32_t size = 0;
    uint32_t num_slots = 0;
    std::vector<ObjectId> slots;
  };

  explicit MapModel(size_t partition_bytes)
      : partition_bytes_(partition_bytes) {}

  void OnPartitionAdded() {
    alloc_offsets_.push_back(0);
    rosters_.emplace_back();
  }

  void OnAllocate(ObjectId id, PartitionId partition, uint32_t offset,
                  uint32_t size, uint32_t num_slots) {
    Object object;
    object.partition = partition;
    object.offset = offset;
    object.size = size;
    object.num_slots = num_slots;
    object.slots.assign(num_slots, kNullObjectId);
    ASSERT_TRUE(table_.emplace(id.value, std::move(object)).second);
    ASSERT_EQ(alloc_offsets_[partition], offset)
        << "store bump pointer diverged from the model";
    alloc_offsets_[partition] += size;
    rosters_[partition][offset] = id;
  }

  void OnDrop(ObjectId id) {
    auto it = table_.find(id.value);
    ASSERT_NE(it, table_.end());
    rosters_[it->second.partition].erase(it->second.offset);
    table_.erase(it);
  }

  /// Returns the offset the relocation must land at (the target's bump
  /// pointer, exactly as the store computes it).
  uint32_t OnRelocate(ObjectId id, PartitionId target) {
    Object& object = table_.at(id.value);
    const uint32_t new_offset = alloc_offsets_[target];
    alloc_offsets_[target] += object.size;
    rosters_[object.partition].erase(object.offset);
    object.partition = target;
    object.offset = new_offset;
    rosters_[target][new_offset] = id;
    return new_offset;
  }

  void OnSwapEmpty(PartitionId partition) {
    ASSERT_TRUE(rosters_[partition].empty());
    alloc_offsets_[partition] = 0;
  }

  void OnAddRoot(ObjectId id) {
    for (ObjectId root : roots_) {
      if (root == id) return;  // Idempotent, like the store.
    }
    roots_.push_back(id);
  }

  void OnRemoveRoot(ObjectId id) {
    for (size_t i = 0; i < roots_.size(); ++i) {
      if (roots_[i] == id) {
        // Same swap-with-last the store's root_pos machinery performs.
        roots_[i] = roots_.back();
        roots_.pop_back();
        return;
      }
    }
    FAIL() << "model asked to remove a non-root";
  }

  void OnWriteSlot(ObjectId source, uint32_t slot, ObjectId target) {
    table_.at(source.value).slots[slot] = target;
  }

  bool Alive(ObjectId id) const { return table_.count(id.value) > 0; }
  const Object& at(ObjectId id) const { return table_.at(id.value); }
  const std::vector<ObjectId>& roots() const { return roots_; }
  bool IsRoot(ObjectId id) const {
    for (ObjectId root : roots_) {
      if (root == id) return true;
    }
    return false;
  }
  size_t live_count() const { return table_.size(); }
  uint32_t free_bytes(PartitionId partition) const {
    return static_cast<uint32_t>(partition_bytes_) - alloc_offsets_[partition];
  }
  const std::map<uint32_t, ObjectId>& roster(PartitionId partition) const {
    return rosters_[partition];
  }
  size_t partition_count() const { return alloc_offsets_.size(); }

 private:
  const size_t partition_bytes_;
  std::unordered_map<uint64_t, Object> table_;
  std::vector<ObjectId> roots_;
  std::vector<uint32_t> alloc_offsets_;
  std::vector<std::map<uint32_t, ObjectId>> rosters_;
};

class DenseTablePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Tiny partitions (1 KB) so allocation pressure grows the database and
  // collections happen often.
  DenseTablePropertyTest() {
    options_.page_size = 256;
    options_.pages_per_partition = 4;
    disk_ = std::make_unique<SimulatedDisk>(options_.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options_, disk_.get(),
                                           buffer_.get());
    model_ = std::make_unique<MapModel>(store_->partition_bytes());
    SyncPartitions();
  }

  void SyncPartitions() {
    while (model_->partition_count() < store_->partition_count()) {
      model_->OnPartitionAdded();
    }
  }

  /// Full-state comparison: every id ever issued, the root vector, and
  /// every partition's roster and bump pointer.
  void CheckAgreement() {
    ASSERT_EQ(store_->object_count(), model_->live_count());
    for (uint64_t raw = 1; raw < store_->id_limit(); ++raw) {
      const ObjectId id{raw};
      const ObjectStore::ObjectInfo* info = store_->Lookup(id);
      ASSERT_EQ(info != nullptr, model_->Alive(id)) << "id " << raw;
      if (info == nullptr) continue;
      const MapModel::Object& expected = model_->at(id);
      ASSERT_EQ(info->partition, expected.partition) << "id " << raw;
      ASSERT_EQ(info->offset, expected.offset) << "id " << raw;
      ASSERT_EQ(info->size, expected.size) << "id " << raw;
      ASSERT_EQ(info->num_slots, expected.num_slots) << "id " << raw;
      ASSERT_EQ(info->slots, expected.slots) << "id " << raw;
      ASSERT_EQ(store_->IsRoot(id), model_->IsRoot(id)) << "id " << raw;
    }
    ASSERT_EQ(store_->roots(), model_->roots());
    for (PartitionId p = 0; p < store_->partition_count(); ++p) {
      const Partition& partition = store_->partition(p);
      const auto& expected = model_->roster(p);
      ASSERT_EQ(partition.object_count(), expected.size()) << "partition " << p;
      auto it = expected.begin();
      for (const auto& [offset, id] : partition.objects_by_offset()) {
        ASSERT_EQ(offset, it->first) << "partition " << p;
        ASSERT_EQ(id, it->second) << "partition " << p;
        ++it;
      }
      ASSERT_EQ(partition.allocated_bytes(),
                partition.capacity_bytes() - model_->free_bytes(p))
          << "partition " << p;
    }
  }

  StoreOptions options_;
  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<MapModel> model_;
};

TEST_P(DenseTablePropertyTest, MatchesMapModelUnderRandomOperations) {
  constexpr int kSteps = 2000;
  Rng rng(GetParam());
  std::vector<ObjectId> issued;  // Every id ever returned by Allocate.

  auto random_live = [&]() -> ObjectId {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const ObjectId id = issued[rng.UniformInt(issued.size())];
      if (model_->Alive(id)) return id;
    }
    return kNullObjectId;
  };

  for (int step = 0; step < kSteps; ++step) {
    const uint32_t op = static_cast<uint32_t>(rng.UniformInt(100));
    if (op < 40 || issued.empty()) {
      // Allocate: small objects with a few slots, sometimes parented.
      const uint32_t num_slots = static_cast<uint32_t>(rng.UniformInt(4));
      const uint32_t size = static_cast<uint32_t>(
          MinObjectSize(num_slots) + rng.UniformInt(48));
      ObjectId parent = kNullObjectId;
      if (!issued.empty() && rng.Bernoulli(0.5)) parent = random_live();
      auto id = store_->Allocate(size, num_slots, parent);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      SyncPartitions();  // Allocation may have grown the database.
      const ObjectStore::ObjectInfo* info = store_->Lookup(*id);
      ASSERT_NE(info, nullptr);
      model_->OnAllocate(*id, info->partition, info->offset, size, num_slots);
      issued.push_back(*id);
    } else if (op < 55) {
      // Drop a live non-root (roots must be unrooted first, as in the
      // real collector).
      const ObjectId id = random_live();
      if (id.is_null()) continue;
      if (model_->IsRoot(id)) {
        ASSERT_EQ(store_->DropObject(id).code(),
                  StatusCode::kFailedPrecondition);
        continue;
      }
      ASSERT_TRUE(store_->DropObject(id).ok());
      model_->OnDrop(id);
    } else if (op < 70) {
      // Move: relocate a live object into any partition with room,
      // like the copying collector does.
      const ObjectId id = random_live();
      if (id.is_null()) continue;
      const PartitionId target =
          static_cast<PartitionId>(rng.UniformInt(store_->partition_count()));
      if (model_->free_bytes(target) < model_->at(id).size) continue;
      const Status moved = store_->RelocateObject(id, target);
      ASSERT_TRUE(moved.ok()) << moved.ToString();
      const uint32_t new_offset = model_->OnRelocate(id, target);
      ASSERT_EQ(store_->Lookup(id)->offset, new_offset);
    } else if (op < 80) {
      const ObjectId id = random_live();
      if (id.is_null()) continue;
      ASSERT_TRUE(store_->AddRoot(id).ok());
      model_->OnAddRoot(id);
    } else if (op < 85) {
      if (model_->roots().empty()) continue;
      const ObjectId id =
          model_->roots()[rng.UniformInt(model_->roots().size())];
      ASSERT_TRUE(store_->RemoveRoot(id).ok());
      model_->OnRemoveRoot(id);
    } else if (op < 95) {
      // Slot write: random edge between live objects (or a clear).
      const ObjectId source = random_live();
      if (source.is_null() || model_->at(source).num_slots == 0) continue;
      const uint32_t slot = static_cast<uint32_t>(
          rng.UniformInt(model_->at(source).num_slots));
      const ObjectId target = rng.Bernoulli(0.2) ? kNullObjectId
                                                 : random_live();
      ASSERT_TRUE(store_->WriteSlot(source, slot, target).ok());
      model_->OnWriteSlot(source, slot, target);
    } else {
      // Collect: evacuate one partition into the reserved empty one,
      // then swap — the copying collector's partition reset.
      const PartitionId victim =
          static_cast<PartitionId>(rng.UniformInt(store_->partition_count()));
      const PartitionId empty = store_->empty_partition();
      if (victim == empty) continue;
      // Evacuate in physical (offset) order, like the collector.
      std::vector<ObjectId> residents;
      for (const auto& [offset, id] : model_->roster(victim)) {
        residents.push_back(id);
      }
      bool fits = true;
      uint32_t needed = 0;
      for (ObjectId id : residents) needed += model_->at(id).size;
      if (needed > model_->free_bytes(empty)) fits = false;
      if (!fits) continue;
      for (ObjectId id : residents) {
        ASSERT_TRUE(store_->RelocateObject(id, empty).ok());
        model_->OnRelocate(id, empty);
      }
      ASSERT_TRUE(store_->SwapEmptyPartition(victim).ok());
      model_->OnSwapEmpty(victim);
    }

    if (step % 50 == 0) CheckAgreement();
  }
  CheckAgreement();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseTablePropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace odbgc
