// Verifies the I/O charging model: which operations touch which pages,
// with what access mode, through the buffer pool.

#include <memory>

#include <gtest/gtest.h>

#include "odb/object_store.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

class StoreIoTest : public ::testing::Test {
 protected:
  // 256-byte pages, 4 pages per partition, deliberately tiny buffer so
  // misses are observable.
  void Init(size_t buffer_frames) {
    options_.page_size = 256;
    options_.pages_per_partition = 4;
    disk_ = std::make_unique<SimulatedDisk>(options_.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), buffer_frames);
    store_ = std::make_unique<ObjectStore>(options_, disk_.get(),
                                           buffer_.get());
  }

  StoreOptions options_;
  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(StoreIoTest, AllocationTouchesAllObjectPages) {
  Init(16);
  // A 600-byte object spans pages 0..2 of its partition.
  auto id = store_->Allocate(600, 2);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(buffer_->IsResident(0));
  EXPECT_TRUE(buffer_->IsResident(1));
  EXPECT_TRUE(buffer_->IsResident(2));
  EXPECT_FALSE(buffer_->IsResident(3));
  EXPECT_TRUE(buffer_->IsDirty(0));
  EXPECT_TRUE(buffer_->IsDirty(2));
}

TEST_F(StoreIoTest, SlotWriteTouchesOneSlotPage) {
  Init(16);
  auto a = store_->Allocate(100, 2);
  auto b = store_->Allocate(100, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(buffer_->FlushAll().ok());
  const uint64_t misses_before = buffer_->stats().misses;
  const uint64_t hits_before = buffer_->stats().hits;
  ASSERT_TRUE(store_->WriteSlot(*a, 0, *b).ok());
  // Both objects live on page 0 (offsets 0 and 100): exactly one access.
  EXPECT_EQ(buffer_->stats().misses - misses_before +
                buffer_->stats().hits - hits_before,
            1u);
  EXPECT_TRUE(buffer_->IsDirty(0));
}

TEST_F(StoreIoTest, ReadSlotIsReadAccess) {
  Init(16);
  auto a = store_->Allocate(100, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(buffer_->FlushAll().ok());
  ASSERT_TRUE(store_->ReadSlot(*a, 0).ok());
  EXPECT_FALSE(buffer_->IsDirty(0)) << "a slot read must not dirty the page";
}

TEST_F(StoreIoTest, VisitReadsHeaderAndSlotsOnly) {
  Init(4);
  // Large object: 800 bytes spanning pages 0..3; header+slots are tiny and
  // sit on page 0 only.
  auto big = store_->Allocate(800, 2, kNullObjectId, kFlagLarge);
  ASSERT_TRUE(big.ok());
  // Flush and evict everything so the visit starts cold.
  ASSERT_TRUE(buffer_->FlushAll().ok());
  buffer_->DiscardExtent(PageExtent{0, 8});
  const uint64_t misses_before = buffer_->stats().misses;
  ASSERT_TRUE(store_->VisitObject(*big).ok());
  EXPECT_EQ(buffer_->stats().misses - misses_before, 1u)
      << "visiting must touch only the header/slots page, not the payload";
}

TEST_F(StoreIoTest, WriteDataDirtiesPayloadPage) {
  Init(16);
  auto big = store_->Allocate(600, 2);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(buffer_->FlushAll().ok());
  ASSERT_TRUE(store_->WriteData(*big).ok());
  // Payload starts at byte 36 (header 20 + 2 slots) -> page 0.
  EXPECT_TRUE(buffer_->IsDirty(0));
}

TEST_F(StoreIoTest, ColdReadsMissAndCount) {
  Init(2);  // Buffer much smaller than the database.
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = store_->Allocate(200, 2);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const uint64_t reads_before = disk_->stats().page_reads;
  // Visit everything twice; with only 2 frames most visits miss.
  for (int round = 0; round < 2; ++round) {
    for (ObjectId id : ids) ASSERT_TRUE(store_->VisitObject(id).ok());
  }
  EXPECT_GT(disk_->stats().page_reads, reads_before);
}

TEST_F(StoreIoTest, ObjectSpanningPagesReadsBothOnStraddlingSlot) {
  Init(16);
  // First object 240 bytes: second object starts at offset 240 and its
  // header straddles the page-0/page-1 boundary.
  auto filler = store_->Allocate(240, 0);
  auto strad = store_->Allocate(100, 2);
  ASSERT_TRUE(filler.ok() && strad.ok());
  ASSERT_TRUE(buffer_->FlushAll().ok());
  buffer_->DiscardExtent(PageExtent{0, 8});
  ASSERT_TRUE(store_->VisitObject(*strad).ok());
  // Header spans 240..260: pages 0 and 1 both read.
  EXPECT_TRUE(buffer_->IsResident(0));
  EXPECT_TRUE(buffer_->IsResident(1));
}

TEST_F(StoreIoTest, RelocationChargesReadsAndWrites) {
  Init(32);
  auto id = store_->Allocate(600, 2);  // Spans 3 pages.
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(buffer_->FlushAll().ok());
  buffer_->DiscardExtent(PageExtent{0, 8});
  const BufferStats before = buffer_->stats();
  {
    PhaseScope scope(buffer_.get(), IoPhase::kCollector);
    ASSERT_TRUE(
        store_->RelocateObject(*id, store_->empty_partition()).ok());
  }
  const BufferStats after = buffer_->stats();
  // 3 source pages read + 3 destination pages read-on-miss; all charged to
  // the collector phase.
  EXPECT_GE(after.reads_gc - before.reads_gc, 3u);
  EXPECT_EQ(after.reads_app, before.reads_app);
}

}  // namespace
}  // namespace odbgc
