// Corruption hardening for the StoreImage binary format: a damaged
// checkpoint must always surface as a clean error (Corruption), never a
// crash, out-of-bounds read, or silently wrong store.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "odb/object_store.h"
#include "storage/disk.h"
#include "odb/store_image.h"
#include "util/random.h"

namespace odbgc {
namespace {

/// A small but non-trivial store: several partitions, varied object sizes,
/// inter-object pointers, roots.
std::string ValidImageBytes() {
  StoreOptions options;
  options.page_size = 1024;
  options.pages_per_partition = 4;
  SimulatedDisk disk(options.page_size);
  BufferPool buffer(&disk, 64);
  ObjectStore store(options, &disk, &buffer);
  Rng rng(42);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 64; ++i) {
    auto id = store.Allocate(
        static_cast<uint32_t>(50 + rng.UniformInt(200)), 3,
        ids.empty() ? kNullObjectId : ids[rng.UniformInt(ids.size())]);
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
    if (!ids.empty() && rng.UniformInt(2) == 0) {
      EXPECT_TRUE(store
                      .WriteSlot(ids[rng.UniformInt(ids.size())], 0,
                                 ids[rng.UniformInt(ids.size())])
                      .ok());
    }
  }
  EXPECT_TRUE(store.AddRoot(ids[0]).ok());
  EXPECT_TRUE(store.AddRoot(ids[7]).ok());

  std::ostringstream out;
  EXPECT_TRUE(SaveStore(store, &out).ok());
  return out.str();
}

Result<StoreImage> ParseBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return ReadStoreImage(&in);
}

TEST(StoreImageCorruptTest, ValidBytesParse) {
  ASSERT_TRUE(ParseBytes(ValidImageBytes()).ok());
}

TEST(StoreImageCorruptTest, EveryTruncationIsCleanError) {
  const std::string bytes = ValidImageBytes();
  // Sweep every prefix: a truncated image must never parse (the object
  // table count is written up front) and never crash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto image = ParseBytes(bytes.substr(0, cut));
    ASSERT_FALSE(image.ok()) << "cut=" << cut;
    EXPECT_EQ(image.status().code(), StatusCode::kCorruption)
        << "cut=" << cut << ": " << image.status().ToString();
  }
}

TEST(StoreImageCorruptTest, BadMagicRejected) {
  std::string bytes = ValidImageBytes();
  for (size_t i = 0; i < 4; ++i) {
    std::string bad = bytes;
    bad[i] ^= 0x01;
    auto image = ParseBytes(bad);
    ASSERT_FALSE(image.ok());
    EXPECT_EQ(image.status().code(), StatusCode::kCorruption);
  }
}

TEST(StoreImageCorruptTest, BadVersionRejected) {
  std::string bytes = ValidImageBytes();
  bytes[4] ^= 0xff;  // Version u16 follows the u32 magic.
  auto image = ParseBytes(bytes);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kCorruption);
}

TEST(StoreImageCorruptTest, FlippedBytesNeverCrash) {
  // The format has no whole-file checksum (the recovery checkpoint layer
  // adds one on top), so a flipped byte may legitimately still parse; the
  // contract here is weaker but vital: every outcome is either a clean
  // Status or a structurally valid image — never a crash.
  const std::string bytes = ValidImageBytes();
  for (size_t i = 0; i < bytes.size(); i += 7) {
    for (uint8_t mask : {0x01, 0x80}) {
      std::string bad = bytes;
      bad[i] = static_cast<char>(bad[i] ^ mask);
      auto image = ParseBytes(bad);
      if (!image.ok()) {
        EXPECT_EQ(image.status().code(), StatusCode::kCorruption)
            << "flip at " << i;
      }
    }
  }
}

TEST(StoreImageCorruptTest, TrailingGarbageIgnoredButImageIntact) {
  // Readers consume exactly the image; callers (e.g. checkpoint payloads)
  // append more data after it, so trailing bytes must not disturb parsing.
  std::string bytes = ValidImageBytes();
  const size_t clean_size = bytes.size();
  bytes += "extra payload follows the image";
  std::istringstream in(bytes);
  auto image = ReadStoreImage(&in);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(static_cast<size_t>(in.tellg()), clean_size);
}

}  // namespace
}  // namespace odbgc
