// Tests for the object placement alternatives (PlacementPolicy).

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "odb/object_store.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  void Init(PlacementPolicy placement) {
    StoreOptions options;
    options.page_size = 256;
    options.pages_per_partition = 4;  // 1 KB: ~10 objects per partition.
    options.placement = placement;
    disk_ = std::make_unique<SimulatedDisk>(options.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options, disk_.get(),
                                           buffer_.get());
  }

  ObjectId Alloc(ObjectId parent = kNullObjectId) {
    auto id = store_->Allocate(100, 2, parent);
    EXPECT_TRUE(id.ok());
    return *id;
  }

  PartitionId PartOf(ObjectId id) { return store_->Lookup(id)->partition; }

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(PlacementTest, NearParentFollowsHint) {
  Init(PlacementPolicy::kNearParent);
  const ObjectId parent = Alloc();
  // Fill the parent's partition to 900/1024 bytes (one 100-byte slot
  // left), then push the allocation stream elsewhere with an object too
  // big for the remaining space.
  for (int i = 0; i < 8; ++i) Alloc();
  auto big = store_->Allocate(200, 2);
  ASSERT_TRUE(big.ok());
  ASSERT_NE(PartOf(*big), PartOf(parent));
  const ObjectId child = Alloc(parent);
  EXPECT_EQ(PartOf(child), PartOf(parent))
      << "child must go to the parent's partition while it has room";
}

TEST_F(PlacementTest, SequentialIgnoresHint) {
  Init(PlacementPolicy::kSequential);
  const ObjectId parent = Alloc();
  // Move the allocation stream into a later partition.
  ObjectId last = parent;
  for (int i = 0; i < 12; ++i) last = Alloc();
  ASSERT_NE(PartOf(last), PartOf(parent));
  const ObjectId child = Alloc(parent);
  EXPECT_EQ(PartOf(child), PartOf(last))
      << "sequential placement streams into the current partition";
}

TEST_F(PlacementTest, RoundRobinSpreadsAllocations) {
  Init(PlacementPolicy::kRoundRobin);
  // Provide several partitions with room; rotation only has something to
  // rotate over when more than one partition can accept the allocation.
  store_->AddPartition();
  store_->AddPartition();
  store_->AddPartition();
  std::set<PartitionId> used;
  for (int i = 0; i < 8; ++i) used.insert(PartOf(Alloc()));
  EXPECT_GE(used.size(), 3u) << "rotation must spread allocations";
}

TEST_F(PlacementTest, RoundRobinNeverUsesEmptyPartition) {
  Init(PlacementPolicy::kRoundRobin);
  for (int i = 0; i < 40; ++i) {
    const ObjectId id = Alloc();
    EXPECT_NE(PartOf(id), store_->empty_partition());
  }
}

TEST_F(PlacementTest, AllPoliciesGrowWhenFull) {
  for (PlacementPolicy placement :
       {PlacementPolicy::kNearParent, PlacementPolicy::kSequential,
        PlacementPolicy::kRoundRobin}) {
    Init(placement);
    const size_t before = store_->partition_count();
    for (int i = 0; i < 40; ++i) Alloc();
    EXPECT_GT(store_->partition_count(), before);
    EXPECT_EQ(store_->object_count(), 40u);
  }
}

}  // namespace
}  // namespace odbgc
