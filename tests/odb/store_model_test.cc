// Model-based differential test: the ObjectStore must agree with a plain
// in-memory reference model under long random operation sequences —
// allocation, slot writes (including overwrites and clears), drops,
// relocations, and empty-partition swaps.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "odb/object_store.h"
#include "storage/disk.h"
#include "util/random.h"

namespace odbgc {
namespace {

struct ModelObject {
  uint32_t size = 0;
  std::vector<uint64_t> slots;
  bool root = false;
};

class StoreModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreModelTest, AgreesWithReferenceModel) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 8;
  SimulatedDisk disk(options.page_size);
  BufferPool buffer(&disk, 24);
  ObjectStore store(options, &disk, &buffer);

  std::map<uint64_t, ModelObject> model;
  std::vector<uint64_t> ids;  // Live ids, insertion order.
  Rng rng(GetParam());

  auto pick = [&]() -> uint64_t {
    return ids.empty() ? 0 : ids[rng.UniformInt(ids.size())];
  };
  auto forget = [&](uint64_t id) {
    model.erase(id);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) {
        ids[i] = ids.back();
        ids.pop_back();
        break;
      }
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(100));
    if (op < 30 || ids.empty()) {
      // Allocate.
      const uint32_t slots = static_cast<uint32_t>(rng.UniformInt(4));
      const uint32_t size = static_cast<uint32_t>(
          MinObjectSize(slots) + rng.UniformInt(120));
      auto id = store.Allocate(size, slots, ObjectId{pick()});
      ASSERT_TRUE(id.ok());
      model[id->value] = {size, std::vector<uint64_t>(slots, 0), false};
      ids.push_back(id->value);
    } else if (op < 65) {
      // Slot write (possibly null, possibly overwrite).
      const uint64_t source = pick();
      ModelObject& m = model.at(source);
      if (m.slots.empty()) continue;
      const uint32_t slot =
          static_cast<uint32_t>(rng.UniformInt(m.slots.size()));
      const uint64_t target = rng.Bernoulli(0.25) ? 0 : pick();
      ASSERT_TRUE(
          store.WriteSlot(ObjectId{source}, slot, ObjectId{target}).ok());
      m.slots[slot] = target;
    } else if (op < 75) {
      // Toggle root status.
      const uint64_t id = pick();
      ModelObject& m = model.at(id);
      if (m.root) {
        ASSERT_TRUE(store.RemoveRoot(ObjectId{id}).ok());
      } else {
        ASSERT_TRUE(store.AddRoot(ObjectId{id}).ok());
      }
      m.root = !m.root;
    } else if (op < 85) {
      // Drop a non-root object. Clear inbound model pointers first, as a
      // collector's bookkeeping would.
      const uint64_t id = pick();
      if (model.at(id).root) continue;
      ASSERT_TRUE(store.DropObject(ObjectId{id}).ok());
      for (auto& [other, m] : model) {
        for (auto& slot : m.slots) {
          if (slot == id) slot = 0;
        }
      }
      // The store allows dangling shadow pointers only transiently; the
      // reference model clears them, and reads below only check live ids.
      forget(id);
    } else if (op < 95) {
      // Read back a slot and compare with the model.
      const uint64_t source = pick();
      const ModelObject& m = model.at(source);
      if (m.slots.empty()) continue;
      const uint32_t slot =
          static_cast<uint32_t>(rng.UniformInt(m.slots.size()));
      auto value = store.ReadSlot(ObjectId{source}, slot);
      ASSERT_TRUE(value.ok());
      if (m.slots[slot] != 0) {
        ASSERT_EQ(value->value, m.slots[slot])
            << "slot mismatch at step " << step;
      }
    } else {
      // Relocate an object into the empty partition and swap if the
      // vacated partition is empty (mimics a degenerate collection).
      const uint64_t id = pick();
      const auto* info = store.Lookup(ObjectId{id});
      const PartitionId from = info->partition;
      const PartitionId target = store.empty_partition();
      if (store.partition(target).free_bytes() < info->size) continue;
      ASSERT_TRUE(store.RelocateObject(ObjectId{id}, target).ok());
      if (store.partition(from).object_count() == 0) {
        ASSERT_TRUE(store.SwapEmptyPartition(from).ok());
      }
    }
  }

  // Final audit: every model object exists with matching metadata, shadow
  // slots, and serialized bytes; counts agree.
  ASSERT_EQ(store.object_count(), model.size());
  uint64_t model_bytes = 0;
  for (const auto& [id, m] : model) {
    model_bytes += m.size;
    const auto* info = store.Lookup(ObjectId{id});
    ASSERT_NE(info, nullptr);
    ASSERT_EQ(info->size, m.size);
    ASSERT_EQ(info->num_slots, m.slots.size());
    auto header = store.ReadHeaderFromPages(ObjectId{id});
    ASSERT_TRUE(header.ok());
    ASSERT_EQ(header->id.value, id);
    for (uint32_t s = 0; s < m.slots.size(); ++s) {
      if (m.slots[s] == 0) continue;  // Dropped targets cleared lazily.
      auto from_pages = store.ReadSlotFromPages(ObjectId{id}, s);
      ASSERT_TRUE(from_pages.ok());
      ASSERT_EQ(from_pages->value, m.slots[s]);
    }
    ASSERT_EQ(store.IsRoot(ObjectId{id}), m.root);
  }
  ASSERT_EQ(store.live_bytes(), model_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace odbgc
