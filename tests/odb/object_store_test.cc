#include "odb/object_store.h"
#include "storage/disk.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  // Tiny store: 256-byte pages, 4-page (1 KB) partitions, big buffer.
  ObjectStoreTest() {
    options_.page_size = 256;
    options_.pages_per_partition = 4;
    disk_ = std::make_unique<SimulatedDisk>(options_.page_size);
    buffer_ = std::make_unique<BufferPool>(disk_.get(), 64);
    store_ = std::make_unique<ObjectStore>(options_, disk_.get(),
                                           buffer_.get());
  }

  ObjectId MustAlloc(uint32_t size, uint32_t slots,
                     ObjectId parent = kNullObjectId) {
    auto id = store_->Allocate(size, slots, parent);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  StoreOptions options_;
  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<BufferPool> buffer_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(ObjectStoreTest, InitialLayout) {
  EXPECT_EQ(store_->partition_count(), 2u);  // One normal + reserved empty.
  EXPECT_EQ(store_->empty_partition(), 1u);
  EXPECT_EQ(store_->partition_bytes(), 1024u);
  EXPECT_EQ(store_->total_bytes(), 2048u);
  EXPECT_EQ(store_->object_count(), 0u);
}

TEST_F(ObjectStoreTest, AllocateAssignsSequentialIds) {
  const ObjectId a = MustAlloc(64, 2);
  const ObjectId b = MustAlloc(64, 2);
  EXPECT_LT(a, b);
  EXPECT_EQ(store_->object_count(), 2u);
  EXPECT_EQ(store_->live_bytes(), 128u);
}

TEST_F(ObjectStoreTest, AllocateValidatesSize) {
  auto too_small = store_->Allocate(10, 2);
  EXPECT_EQ(too_small.status().code(), StatusCode::kInvalidArgument);
  auto too_big = store_->Allocate(2000, 0);
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ObjectStoreTest, SlotsStartNull) {
  const ObjectId a = MustAlloc(64, 3);
  for (uint32_t s = 0; s < 3; ++s) {
    auto v = store_->ReadSlot(a, s);
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->is_null());
  }
}

TEST_F(ObjectStoreTest, WriteAndReadSlot) {
  const ObjectId a = MustAlloc(64, 2);
  const ObjectId b = MustAlloc(64, 2);
  ASSERT_TRUE(store_->WriteSlot(a, 1, b).ok());
  auto v = store_->ReadSlot(a, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, b);
  // Shadow state matches the serialized page bytes.
  auto from_pages = store_->ReadSlotFromPages(a, 1);
  ASSERT_TRUE(from_pages.ok());
  EXPECT_EQ(*from_pages, b);
}

TEST_F(ObjectStoreTest, SlotErrors) {
  const ObjectId a = MustAlloc(64, 2);
  EXPECT_EQ(store_->WriteSlot(a, 5, kNullObjectId).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store_->WriteSlot(ObjectId{999}, 0, a).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_->WriteSlot(a, 0, ObjectId{999}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_->ReadSlot(a, 2).status().code(), StatusCode::kOutOfRange);
}

TEST_F(ObjectStoreTest, SerializedHeaderMatchesTable) {
  const ObjectId a = MustAlloc(100, 3);
  auto header = store_->ReadHeaderFromPages(a);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->id, a);
  EXPECT_EQ(header->size, 100u);
  EXPECT_EQ(header->num_slots, 3u);
}

TEST_F(ObjectStoreTest, PlacementNearParent) {
  const ObjectId parent = MustAlloc(64, 2);
  const ObjectId child = MustAlloc(64, 2, parent);
  EXPECT_EQ(store_->Lookup(parent)->partition,
            store_->Lookup(child)->partition);
}

TEST_F(ObjectStoreTest, NeverAllocatesInEmptyPartition) {
  for (int i = 0; i < 40; ++i) {
    const ObjectId id = MustAlloc(100, 2);
    EXPECT_NE(store_->Lookup(id)->partition, store_->empty_partition());
  }
}

TEST_F(ObjectStoreTest, GrowsWhenFull) {
  // Partition holds 1024 bytes; 64-byte objects, so >16 allocations per
  // partition force growth.
  const size_t before = store_->partition_count();
  for (int i = 0; i < 40; ++i) MustAlloc(64, 2);
  EXPECT_GT(store_->partition_count(), before);
  // Growth is one partition at a time: total bytes track partitions.
  EXPECT_EQ(store_->total_bytes(),
            store_->partition_count() * store_->partition_bytes());
}

TEST_F(ObjectStoreTest, RootSet) {
  const ObjectId a = MustAlloc(64, 2);
  const ObjectId b = MustAlloc(64, 2);
  EXPECT_FALSE(store_->IsRoot(a));
  ASSERT_TRUE(store_->AddRoot(a).ok());
  ASSERT_TRUE(store_->AddRoot(b).ok());
  ASSERT_TRUE(store_->AddRoot(a).ok());  // Idempotent.
  EXPECT_TRUE(store_->IsRoot(a));
  EXPECT_EQ(store_->roots().size(), 2u);
  ASSERT_TRUE(store_->RemoveRoot(a).ok());
  EXPECT_FALSE(store_->IsRoot(a));
  EXPECT_EQ(store_->RemoveRoot(a).code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->AddRoot(ObjectId{999}).code(), StatusCode::kNotFound);
}

TEST_F(ObjectStoreTest, RelocatePreservesContents) {
  const ObjectId a = MustAlloc(100, 2);
  const ObjectId b = MustAlloc(64, 2);
  ASSERT_TRUE(store_->WriteSlot(a, 0, b).ok());

  const PartitionId from = store_->Lookup(a)->partition;
  const PartitionId to = store_->empty_partition();
  ASSERT_TRUE(store_->RelocateObject(a, to).ok());

  EXPECT_EQ(store_->Lookup(a)->partition, to);
  EXPECT_EQ(store_->partition(from).object_count(), 1u);  // Only b left.
  EXPECT_EQ(store_->partition(to).object_count(), 1u);

  // Identity, metadata and slots survive physically.
  auto header = store_->ReadHeaderFromPages(a);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->id, a);
  EXPECT_EQ(header->size, 100u);
  auto slot = store_->ReadSlotFromPages(a, 0);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(*slot, b);
}

TEST_F(ObjectStoreTest, RelocateFailsWhenTargetFull) {
  const ObjectId a = MustAlloc(600, 0);
  const ObjectId big = MustAlloc(600, 0);
  // Fill the empty partition so the second relocation cannot fit.
  ASSERT_TRUE(store_->RelocateObject(a, store_->empty_partition()).ok());
  auto status = store_->RelocateObject(big, store_->empty_partition());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST_F(ObjectStoreTest, DropObject) {
  const ObjectId a = MustAlloc(64, 2);
  const PartitionId p = store_->Lookup(a)->partition;
  ASSERT_TRUE(store_->DropObject(a).ok());
  EXPECT_EQ(store_->Lookup(a), nullptr);
  EXPECT_EQ(store_->partition(p).object_count(), 0u);
  EXPECT_EQ(store_->live_bytes(), 0u);
  EXPECT_EQ(store_->DropObject(a).code(), StatusCode::kNotFound);
}

TEST_F(ObjectStoreTest, DropRootRefused) {
  const ObjectId a = MustAlloc(64, 2);
  ASSERT_TRUE(store_->AddRoot(a).ok());
  EXPECT_EQ(store_->DropObject(a).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ObjectStoreTest, SwapEmptyPartition) {
  const ObjectId a = MustAlloc(64, 2);
  const PartitionId old_empty = store_->empty_partition();
  ASSERT_TRUE(store_->RelocateObject(a, old_empty).ok());
  const PartitionId vacated = 0;
  ASSERT_TRUE(store_->SwapEmptyPartition(vacated).ok());
  EXPECT_EQ(store_->empty_partition(), vacated);
  EXPECT_EQ(store_->partition(vacated).allocated_bytes(), 0u);
  // The old empty partition is now allocatable again.
  const ObjectId b = MustAlloc(64, 2);
  EXPECT_NE(store_->Lookup(b)->partition, vacated);
}

TEST_F(ObjectStoreTest, SwapEmptyRefusesNonEmpty) {
  MustAlloc(64, 2);
  EXPECT_EQ(store_->SwapEmptyPartition(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ObjectStoreTest, WriteBarrierObserverSeesOldAndNew) {
  struct Recorder : SlotWriteObserver {
    std::vector<SlotWriteEvent> events;
    void OnSlotWrite(const SlotWriteEvent& event) override {
      events.push_back(event);
    }
  } recorder;
  store_->set_slot_write_observer(&recorder);

  const ObjectId a = MustAlloc(64, 2);
  const ObjectId b = MustAlloc(64, 2);
  const ObjectId c = MustAlloc(64, 2);
  ASSERT_TRUE(store_->WriteSlot(a, 0, b).ok());
  ASSERT_TRUE(store_->WriteSlot(a, 0, c).ok());
  ASSERT_TRUE(store_->WriteSlot(a, 0, kNullObjectId).ok());

  ASSERT_EQ(recorder.events.size(), 3u);
  EXPECT_FALSE(recorder.events[0].is_overwrite());
  EXPECT_EQ(recorder.events[0].new_target, b);
  EXPECT_TRUE(recorder.events[1].is_overwrite());
  EXPECT_EQ(recorder.events[1].old_target, b);
  EXPECT_EQ(recorder.events[1].new_target, c);
  EXPECT_TRUE(recorder.events[2].is_overwrite());
  EXPECT_EQ(recorder.events[2].old_target, c);
  EXPECT_TRUE(recorder.events[2].new_target.is_null());
  store_->set_slot_write_observer(nullptr);
}

TEST_F(ObjectStoreTest, VisitAndWriteDataValidate) {
  const ObjectId a = MustAlloc(64, 2);
  EXPECT_TRUE(store_->VisitObject(a).ok());
  EXPECT_TRUE(store_->WriteData(a).ok());
  EXPECT_EQ(store_->VisitObject(ObjectId{999}).code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->WriteData(ObjectId{999}).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace odbgc
