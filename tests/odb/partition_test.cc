#include "odb/partition.h"

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(PartitionTest, Geometry) {
  Partition p(3, PageExtent{8, 4}, 512);
  EXPECT_EQ(p.id(), 3u);
  EXPECT_EQ(p.capacity_bytes(), 2048u);
  EXPECT_EQ(p.allocated_bytes(), 0u);
  EXPECT_EQ(p.free_bytes(), 2048u);
  EXPECT_TRUE(p.empty());
}

TEST(PartitionTest, BumpAllocation) {
  Partition p(0, PageExtent{0, 1}, 256);
  uint32_t at = 99;
  ASSERT_TRUE(p.TryAllocate(100, &at));
  EXPECT_EQ(at, 0u);
  ASSERT_TRUE(p.TryAllocate(100, &at));
  EXPECT_EQ(at, 100u);
  EXPECT_EQ(p.free_bytes(), 56u);
  EXPECT_FALSE(p.TryAllocate(57, &at));
  ASSERT_TRUE(p.TryAllocate(56, &at));
  EXPECT_EQ(p.free_bytes(), 0u);
}

TEST(PartitionTest, ObjectRoster) {
  Partition p(0, PageExtent{0, 1}, 256);
  p.AddObject(0, ObjectId{10});
  p.AddObject(100, ObjectId{11});
  p.AddObject(50, ObjectId{12});
  EXPECT_EQ(p.object_count(), 3u);
  // Iteration is by physical offset.
  std::vector<uint64_t> order;
  for (const auto& [offset, id] : p.objects_by_offset()) {
    order.push_back(id.value);
  }
  EXPECT_EQ(order, (std::vector<uint64_t>{10, 12, 11}));
  p.RemoveObject(50);
  EXPECT_EQ(p.object_count(), 2u);
}

TEST(PartitionTest, ResetRestoresCapacity) {
  Partition p(0, PageExtent{0, 1}, 256);
  uint32_t at = 0;
  ASSERT_TRUE(p.TryAllocate(200, &at));
  p.AddObject(at, ObjectId{1});
  p.RemoveObject(at);
  p.Reset();
  EXPECT_EQ(p.allocated_bytes(), 0u);
  EXPECT_EQ(p.free_bytes(), 256u);
  EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace odbgc
