// Edge cases of the object store's geometry and configuration.

#include <memory>

#include <gtest/gtest.h>

#include "odb/object_store.h"
#include "storage/disk.h"

namespace odbgc {
namespace {

struct Bundle {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<BufferPool> buffer;
  std::unique_ptr<ObjectStore> store;
};

Bundle Make(StoreOptions options) {
  Bundle bundle;
  bundle.disk = std::make_unique<SimulatedDisk>(options.page_size);
  bundle.buffer = std::make_unique<BufferPool>(bundle.disk.get(), 64);
  bundle.store = std::make_unique<ObjectStore>(options, bundle.disk.get(),
                                               bundle.buffer.get());
  return bundle;
}

TEST(StoreEdgeTest, ObjectExactlyFillsPartition) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 4;  // 1024-byte partitions.
  Bundle bundle = Make(options);

  auto id = bundle.store->Allocate(1024, 2);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const auto* info = bundle.store->Lookup(*id);
  EXPECT_EQ(info->offset, 0u);
  EXPECT_EQ(bundle.store->partition(info->partition).free_bytes(), 0u);
  // The next allocation needs a fresh partition.
  const size_t partitions = bundle.store->partition_count();
  auto next = bundle.store->Allocate(100, 2);
  ASSERT_TRUE(next.ok());
  EXPECT_GT(bundle.store->partition_count(), partitions);
}

TEST(StoreEdgeTest, ObjectLargerThanPartitionRejected) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 4;
  Bundle bundle = Make(options);
  auto id = bundle.store->Allocate(1025, 0);
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreEdgeTest, MinimalSizedObject) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 4;
  Bundle bundle = Make(options);
  const uint32_t min_size = static_cast<uint32_t>(MinObjectSize(2));
  auto id = bundle.store->Allocate(min_size, 2);
  ASSERT_TRUE(id.ok());
  auto header = bundle.store->ReadHeaderFromPages(*id);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->size, min_size);
}

TEST(StoreEdgeTest, ZeroSlotObject) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 4;
  Bundle bundle = Make(options);
  auto id = bundle.store->Allocate(100, 0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(bundle.store->ReadSlot(*id, 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(bundle.store->VisitObject(*id).ok());
}

TEST(StoreEdgeTest, NoReservedEmptyPartition) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 4;
  options.reserve_empty_partition = false;
  Bundle bundle = Make(options);
  EXPECT_EQ(bundle.store->partition_count(), 1u);
  EXPECT_EQ(bundle.store->empty_partition(), kInvalidPartition);
  // Allocation works; all partitions are allocatable.
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(bundle.store->Allocate(100, 2).ok());
  }
  EXPECT_GE(bundle.store->partition_count(), 2u);
}

TEST(StoreEdgeTest, SequentialIdsNeverReused) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 8;
  Bundle bundle = Make(options);
  auto a = bundle.store->Allocate(100, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(bundle.store->DropObject(*a).ok());
  auto b = bundle.store->Allocate(100, 2);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->value, a->value) << "ids are never reused after death";
}

TEST(StoreEdgeTest, ParentHintToDeadObjectIgnored) {
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 8;
  Bundle bundle = Make(options);
  auto parent = bundle.store->Allocate(100, 2);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(bundle.store->DropObject(*parent).ok());
  auto child = bundle.store->Allocate(100, 2, *parent);
  ASSERT_TRUE(child.ok()) << "a stale hint must not fail the allocation";
}

}  // namespace
}  // namespace odbgc
