#include "odb/store_image.h"
#include "storage/disk.h"

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

struct StoreBundle {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<BufferPool> buffer;
  std::unique_ptr<ObjectStore> store;
};

StoreBundle MakeStore() {
  StoreBundle bundle;
  StoreOptions options;
  options.page_size = 256;
  options.pages_per_partition = 8;
  bundle.disk = std::make_unique<SimulatedDisk>(options.page_size);
  bundle.buffer = std::make_unique<BufferPool>(bundle.disk.get(), 64);
  bundle.store = std::make_unique<ObjectStore>(options, bundle.disk.get(),
                                               bundle.buffer.get());
  return bundle;
}

// Populates a store with a small linked structure spanning partitions.
std::vector<ObjectId> Populate(ObjectStore& store) {
  std::vector<ObjectId> ids;
  for (int i = 0; i < 50; ++i) {
    auto id = store.Allocate(80 + (i % 3) * 20, 3);
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
    if (i > 0) {
      EXPECT_TRUE(store.WriteSlot(ids[i - 1], i % 3, ids[i]).ok());
    }
  }
  EXPECT_TRUE(store.AddRoot(ids[0]).ok());
  EXPECT_TRUE(store.AddRoot(ids[10]).ok());
  return ids;
}

StoreBundle Roundtrip(const ObjectStore& original) {
  std::stringstream stream;
  EXPECT_TRUE(SaveStore(original, &stream).ok());
  auto image = ReadStoreImage(&stream);
  EXPECT_TRUE(image.ok()) << image.status().ToString();

  StoreBundle bundle;
  bundle.disk = std::make_unique<SimulatedDisk>(image->page_size);
  bundle.buffer = std::make_unique<BufferPool>(bundle.disk.get(), 64);
  auto restored =
      ObjectStore::Restore(*image, bundle.disk.get(), bundle.buffer.get());
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  bundle.store = std::move(restored).value();
  return bundle;
}

TEST(StoreImageTest, RoundtripPreservesEverything) {
  StoreBundle original = MakeStore();
  const auto ids = Populate(*original.store);
  StoreBundle restored = Roundtrip(*original.store);

  EXPECT_EQ(restored.store->object_count(), original.store->object_count());
  EXPECT_EQ(restored.store->live_bytes(), original.store->live_bytes());
  EXPECT_EQ(restored.store->partition_count(),
            original.store->partition_count());
  EXPECT_EQ(restored.store->empty_partition(),
            original.store->empty_partition());
  EXPECT_EQ(restored.store->roots(), original.store->roots());

  for (ObjectId id : ids) {
    const auto* a = original.store->Lookup(id);
    const auto* b = restored.store->Lookup(id);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->partition, a->partition);
    EXPECT_EQ(b->offset, a->offset);
    EXPECT_EQ(b->size, a->size);
    EXPECT_EQ(b->slots, a->slots);
  }
}

TEST(StoreImageTest, RestoredPagesDecodeCorrectly) {
  StoreBundle original = MakeStore();
  const auto ids = Populate(*original.store);
  StoreBundle restored = Roundtrip(*original.store);

  for (ObjectId id : ids) {
    auto header = restored.store->ReadHeaderFromPages(id);
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->id, id);
    const auto* info = restored.store->Lookup(id);
    for (uint32_t s = 0; s < info->num_slots; ++s) {
      auto slot = restored.store->ReadSlotFromPages(id, s);
      ASSERT_TRUE(slot.ok());
      EXPECT_EQ(*slot, info->slots[s]);
    }
  }
}

TEST(StoreImageTest, RestoredStoreKeepsWorking) {
  StoreBundle original = MakeStore();
  const auto ids = Populate(*original.store);
  StoreBundle restored = Roundtrip(*original.store);

  // Ids continue past the image's next_id without collision.
  auto fresh = restored.store->Allocate(100, 2, ids.back());
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->value, ids.back().value);
  ASSERT_TRUE(restored.store->WriteSlot(ids.back(), 0, *fresh).ok());
  auto read = restored.store->ReadSlot(ids.back(), 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, *fresh);
}

TEST(StoreImageTest, BadMagicRejected) {
  StoreBundle original = MakeStore();
  Populate(*original.store);
  std::stringstream stream;
  ASSERT_TRUE(SaveStore(*original.store, &stream).ok());
  std::string bytes = stream.str();
  bytes[0] = 'X';
  std::stringstream corrupt(bytes);
  EXPECT_EQ(ReadStoreImage(&corrupt).status().code(),
            StatusCode::kCorruption);
}

TEST(StoreImageTest, TruncationsAreCleanErrors) {
  StoreBundle original = MakeStore();
  Populate(*original.store);
  std::stringstream stream;
  ASSERT_TRUE(SaveStore(*original.store, &stream).ok());
  const std::string bytes = stream.str();
  // Probe a spread of cut points, including every early byte.
  for (size_t cut = 0; cut < bytes.size(); cut += (cut < 64 ? 1 : 97)) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto image = ReadStoreImage(&truncated);
    EXPECT_FALSE(image.ok()) << "cut at " << cut;
  }
}

TEST(StoreImageTest, RestoreValidatesConsistency) {
  StoreBundle original = MakeStore();
  Populate(*original.store);
  StoreImage image = original.store->ExtractImage();

  {
    StoreImage broken = image;
    broken.objects[0].slots[0] = ObjectId{999999};  // Dangling reference.
    auto bundle = MakeStore();
    SimulatedDisk disk(broken.page_size);
    BufferPool buffer(&disk, 8);
    EXPECT_EQ(ObjectStore::Restore(broken, &disk, &buffer).status().code(),
              StatusCode::kCorruption);
  }
  {
    StoreImage broken = image;
    broken.objects[1].offset = broken.objects[0].offset;  // Overlap.
    SimulatedDisk disk(broken.page_size);
    BufferPool buffer(&disk, 8);
    EXPECT_EQ(ObjectStore::Restore(broken, &disk, &buffer).status().code(),
              StatusCode::kCorruption);
  }
  {
    StoreImage broken = image;
    broken.roots.push_back(ObjectId{888888});  // Dangling root.
    SimulatedDisk disk(broken.page_size);
    BufferPool buffer(&disk, 8);
    EXPECT_EQ(ObjectStore::Restore(broken, &disk, &buffer).status().code(),
              StatusCode::kCorruption);
  }
  {
    StoreImage broken = image;
    broken.objects.push_back(broken.objects[0]);  // Duplicate id.
    SimulatedDisk disk(broken.page_size);
    BufferPool buffer(&disk, 8);
    EXPECT_EQ(ObjectStore::Restore(broken, &disk, &buffer).status().code(),
              StatusCode::kCorruption);
  }
}

TEST(StoreImageTest, RestoreRequiresEmptyDisk) {
  StoreBundle original = MakeStore();
  Populate(*original.store);
  const StoreImage image = original.store->ExtractImage();
  // original.disk already has pages.
  BufferPool buffer(original.disk.get(), 8);
  EXPECT_EQ(
      ObjectStore::Restore(image, original.disk.get(), &buffer).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace odbgc
