#include "odb/object_layout.h"

#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace odbgc {
namespace {

TEST(ObjectLayoutTest, HeaderRoundtrip) {
  ObjectHeader h;
  h.id = ObjectId{0x1122334455667788ull};
  h.size = 1234;
  h.num_slots = 7;
  h.weight = 5;
  h.flags = kFlagLarge;

  std::array<std::byte, kObjectHeaderSize> buf{};
  EncodeObjectHeader(h, buf);
  auto decoded = DecodeObjectHeader(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, h.id);
  EXPECT_EQ(decoded->size, h.size);
  EXPECT_EQ(decoded->num_slots, h.num_slots);
  EXPECT_EQ(decoded->weight, h.weight);
  EXPECT_EQ(decoded->flags, h.flags);
}

TEST(ObjectLayoutTest, BadMagicRejected) {
  ObjectHeader h;
  h.id = ObjectId{1};
  h.size = 100;
  h.num_slots = 2;
  std::array<std::byte, kObjectHeaderSize> buf{};
  EncodeObjectHeader(h, buf);
  buf[0] = std::byte{0x00};
  auto decoded = DecodeObjectHeader(buf);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ObjectLayoutTest, TruncatedRejected) {
  std::vector<std::byte> buf(kObjectHeaderSize - 1);
  auto decoded = DecodeObjectHeader(buf);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ObjectLayoutTest, UndersizedObjectRejected) {
  ObjectHeader h;
  h.id = ObjectId{1};
  h.num_slots = 4;
  h.size = static_cast<uint32_t>(MinObjectSize(4)) - 1;
  std::array<std::byte, kObjectHeaderSize> buf{};
  EncodeObjectHeader(h, buf);
  auto decoded = DecodeObjectHeader(buf);
  EXPECT_FALSE(decoded.ok());
}

TEST(ObjectLayoutTest, SlotRoundtrip) {
  std::array<std::byte, kSlotSize> buf{};
  EncodeSlot(ObjectId{0xdeadbeefcafef00dull}, buf);
  EXPECT_EQ(DecodeSlot(buf), (ObjectId{0xdeadbeefcafef00dull}));
  EncodeSlot(kNullObjectId, buf);
  EXPECT_TRUE(DecodeSlot(buf).is_null());
}

TEST(ObjectLayoutTest, GeometryHelpers) {
  EXPECT_EQ(MinObjectSize(0), kObjectHeaderSize);
  EXPECT_EQ(MinObjectSize(3), kObjectHeaderSize + 3 * kSlotSize);
  EXPECT_EQ(SlotOffset(0), kObjectHeaderSize);
  EXPECT_EQ(SlotOffset(2), kObjectHeaderSize + 2 * kSlotSize);
}

TEST(ObjectIdTest, NullAndOrdering) {
  EXPECT_TRUE(kNullObjectId.is_null());
  EXPECT_FALSE(ObjectId{3}.is_null());
  EXPECT_TRUE(ObjectId{1} < ObjectId{2});
  EXPECT_EQ(ObjectId{7}, ObjectId{7});
  EXPECT_FALSE(static_cast<bool>(kNullObjectId));
  EXPECT_TRUE(static_cast<bool>(ObjectId{1}));
}

}  // namespace
}  // namespace odbgc
