file(REMOVE_RECURSE
  "CMakeFiles/write_barrier_test.dir/core/write_barrier_test.cc.o"
  "CMakeFiles/write_barrier_test.dir/core/write_barrier_test.cc.o.d"
  "write_barrier_test"
  "write_barrier_test.pdb"
  "write_barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
