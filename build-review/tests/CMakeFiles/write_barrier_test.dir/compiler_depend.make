# Empty compiler generated dependencies file for write_barrier_test.
# This may be replaced when dependencies are built.
