file(REMOVE_RECURSE
  "CMakeFiles/extension_policies_test.dir/core/extension_policies_test.cc.o"
  "CMakeFiles/extension_policies_test.dir/core/extension_policies_test.cc.o.d"
  "extension_policies_test"
  "extension_policies_test.pdb"
  "extension_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
