file(REMOVE_RECURSE
  "CMakeFiles/trace_corrupt_test.dir/trace/trace_corrupt_test.cc.o"
  "CMakeFiles/trace_corrupt_test.dir/trace/trace_corrupt_test.cc.o.d"
  "trace_corrupt_test"
  "trace_corrupt_test.pdb"
  "trace_corrupt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_corrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
