# Empty dependencies file for trace_corrupt_test.
# This may be replaced when dependencies are built.
