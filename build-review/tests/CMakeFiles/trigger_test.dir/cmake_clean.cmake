file(REMOVE_RECURSE
  "CMakeFiles/trigger_test.dir/core/trigger_test.cc.o"
  "CMakeFiles/trigger_test.dir/core/trigger_test.cc.o.d"
  "trigger_test"
  "trigger_test.pdb"
  "trigger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
