# Empty dependencies file for trigger_test.
# This may be replaced when dependencies are built.
