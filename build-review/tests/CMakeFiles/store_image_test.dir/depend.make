# Empty dependencies file for store_image_test.
# This may be replaced when dependencies are built.
