file(REMOVE_RECURSE
  "CMakeFiles/recovery_integration_test.dir/recovery/recovery_integration_test.cc.o"
  "CMakeFiles/recovery_integration_test.dir/recovery/recovery_integration_test.cc.o.d"
  "recovery_integration_test"
  "recovery_integration_test.pdb"
  "recovery_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
