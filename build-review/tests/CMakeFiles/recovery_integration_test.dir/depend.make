# Empty dependencies file for recovery_integration_test.
# This may be replaced when dependencies are built.
