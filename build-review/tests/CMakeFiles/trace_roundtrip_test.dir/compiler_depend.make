# Empty compiler generated dependencies file for trace_roundtrip_test.
# This may be replaced when dependencies are built.
