file(REMOVE_RECURSE
  "CMakeFiles/trace_roundtrip_test.dir/trace/trace_roundtrip_test.cc.o"
  "CMakeFiles/trace_roundtrip_test.dir/trace/trace_roundtrip_test.cc.o.d"
  "trace_roundtrip_test"
  "trace_roundtrip_test.pdb"
  "trace_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
