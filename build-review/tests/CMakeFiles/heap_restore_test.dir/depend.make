# Empty dependencies file for heap_restore_test.
# This may be replaced when dependencies are built.
