file(REMOVE_RECURSE
  "CMakeFiles/heap_restore_test.dir/core/heap_restore_test.cc.o"
  "CMakeFiles/heap_restore_test.dir/core/heap_restore_test.cc.o.d"
  "heap_restore_test"
  "heap_restore_test.pdb"
  "heap_restore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_restore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
