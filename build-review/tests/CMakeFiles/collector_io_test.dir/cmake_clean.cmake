file(REMOVE_RECURSE
  "CMakeFiles/collector_io_test.dir/core/collector_io_test.cc.o"
  "CMakeFiles/collector_io_test.dir/core/collector_io_test.cc.o.d"
  "collector_io_test"
  "collector_io_test.pdb"
  "collector_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
