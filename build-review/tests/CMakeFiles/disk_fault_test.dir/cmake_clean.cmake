file(REMOVE_RECURSE
  "CMakeFiles/disk_fault_test.dir/storage/disk_fault_test.cc.o"
  "CMakeFiles/disk_fault_test.dir/storage/disk_fault_test.cc.o.d"
  "disk_fault_test"
  "disk_fault_test.pdb"
  "disk_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
