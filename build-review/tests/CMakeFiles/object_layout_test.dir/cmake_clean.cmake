file(REMOVE_RECURSE
  "CMakeFiles/object_layout_test.dir/odb/object_layout_test.cc.o"
  "CMakeFiles/object_layout_test.dir/odb/object_layout_test.cc.o.d"
  "object_layout_test"
  "object_layout_test.pdb"
  "object_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
