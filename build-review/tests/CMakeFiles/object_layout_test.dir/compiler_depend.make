# Empty compiler generated dependencies file for object_layout_test.
# This may be replaced when dependencies are built.
