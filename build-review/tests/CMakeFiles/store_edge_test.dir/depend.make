# Empty dependencies file for store_edge_test.
# This may be replaced when dependencies are built.
