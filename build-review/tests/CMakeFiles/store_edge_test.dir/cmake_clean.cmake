file(REMOVE_RECURSE
  "CMakeFiles/store_edge_test.dir/odb/store_edge_test.cc.o"
  "CMakeFiles/store_edge_test.dir/odb/store_edge_test.cc.o.d"
  "store_edge_test"
  "store_edge_test.pdb"
  "store_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
