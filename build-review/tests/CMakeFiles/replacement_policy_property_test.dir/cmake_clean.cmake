file(REMOVE_RECURSE
  "CMakeFiles/replacement_policy_property_test.dir/buffer/replacement_policy_property_test.cc.o"
  "CMakeFiles/replacement_policy_property_test.dir/buffer/replacement_policy_property_test.cc.o.d"
  "replacement_policy_property_test"
  "replacement_policy_property_test.pdb"
  "replacement_policy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replacement_policy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
