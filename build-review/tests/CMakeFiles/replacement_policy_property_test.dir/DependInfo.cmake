
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/buffer/replacement_policy_property_test.cc" "tests/CMakeFiles/replacement_policy_property_test.dir/buffer/replacement_policy_property_test.cc.o" "gcc" "tests/CMakeFiles/replacement_policy_property_test.dir/buffer/replacement_policy_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/odbgc_recovery.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_odb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
