# Empty dependencies file for replacement_policy_property_test.
# This may be replaced when dependencies are built.
