file(REMOVE_RECURSE
  "CMakeFiles/census_equivalence_test.dir/core/census_equivalence_test.cc.o"
  "CMakeFiles/census_equivalence_test.dir/core/census_equivalence_test.cc.o.d"
  "census_equivalence_test"
  "census_equivalence_test.pdb"
  "census_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
