# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for interpartition_index_property_test.
