file(REMOVE_RECURSE
  "CMakeFiles/interpartition_index_property_test.dir/core/interpartition_index_property_test.cc.o"
  "CMakeFiles/interpartition_index_property_test.dir/core/interpartition_index_property_test.cc.o.d"
  "interpartition_index_property_test"
  "interpartition_index_property_test.pdb"
  "interpartition_index_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpartition_index_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
