# Empty dependencies file for disk_cost_test.
# This may be replaced when dependencies are built.
