file(REMOVE_RECURSE
  "CMakeFiles/disk_cost_test.dir/storage/disk_cost_test.cc.o"
  "CMakeFiles/disk_cost_test.dir/storage/disk_cost_test.cc.o.d"
  "disk_cost_test"
  "disk_cost_test.pdb"
  "disk_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
