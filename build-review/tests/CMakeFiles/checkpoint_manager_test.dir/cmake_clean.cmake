file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_manager_test.dir/recovery/checkpoint_manager_test.cc.o"
  "CMakeFiles/checkpoint_manager_test.dir/recovery/checkpoint_manager_test.cc.o.d"
  "checkpoint_manager_test"
  "checkpoint_manager_test.pdb"
  "checkpoint_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
