file(REMOVE_RECURSE
  "CMakeFiles/collector_test.dir/core/collector_test.cc.o"
  "CMakeFiles/collector_test.dir/core/collector_test.cc.o.d"
  "collector_test"
  "collector_test.pdb"
  "collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
