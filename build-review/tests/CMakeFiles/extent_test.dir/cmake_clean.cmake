file(REMOVE_RECURSE
  "CMakeFiles/extent_test.dir/storage/extent_test.cc.o"
  "CMakeFiles/extent_test.dir/storage/extent_test.cc.o.d"
  "extent_test"
  "extent_test.pdb"
  "extent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
