file(REMOVE_RECURSE
  "CMakeFiles/store_model_test.dir/odb/store_model_test.cc.o"
  "CMakeFiles/store_model_test.dir/odb/store_model_test.cc.o.d"
  "store_model_test"
  "store_model_test.pdb"
  "store_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
