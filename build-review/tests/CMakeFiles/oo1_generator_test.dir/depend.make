# Empty dependencies file for oo1_generator_test.
# This may be replaced when dependencies are built.
