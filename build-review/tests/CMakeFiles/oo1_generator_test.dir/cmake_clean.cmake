file(REMOVE_RECURSE
  "CMakeFiles/oo1_generator_test.dir/workload/oo1_generator_test.cc.o"
  "CMakeFiles/oo1_generator_test.dir/workload/oo1_generator_test.cc.o.d"
  "oo1_generator_test"
  "oo1_generator_test.pdb"
  "oo1_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo1_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
