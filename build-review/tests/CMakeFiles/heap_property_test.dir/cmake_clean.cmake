file(REMOVE_RECURSE
  "CMakeFiles/heap_property_test.dir/core/heap_property_test.cc.o"
  "CMakeFiles/heap_property_test.dir/core/heap_property_test.cc.o.d"
  "heap_property_test"
  "heap_property_test.pdb"
  "heap_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
