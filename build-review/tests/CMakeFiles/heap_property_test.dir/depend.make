# Empty dependencies file for heap_property_test.
# This may be replaced when dependencies are built.
