file(REMOVE_RECURSE
  "CMakeFiles/global_collector_test.dir/core/global_collector_test.cc.o"
  "CMakeFiles/global_collector_test.dir/core/global_collector_test.cc.o.d"
  "global_collector_test"
  "global_collector_test.pdb"
  "global_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
