# Empty dependencies file for global_collector_test.
# This may be replaced when dependencies are built.
