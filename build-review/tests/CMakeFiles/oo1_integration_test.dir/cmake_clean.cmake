file(REMOVE_RECURSE
  "CMakeFiles/oo1_integration_test.dir/sim/oo1_integration_test.cc.o"
  "CMakeFiles/oo1_integration_test.dir/sim/oo1_integration_test.cc.o.d"
  "oo1_integration_test"
  "oo1_integration_test.pdb"
  "oo1_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo1_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
