# Empty compiler generated dependencies file for oo1_integration_test.
# This may be replaced when dependencies are built.
