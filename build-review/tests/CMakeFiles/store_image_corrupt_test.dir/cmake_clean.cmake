file(REMOVE_RECURSE
  "CMakeFiles/store_image_corrupt_test.dir/odb/store_image_corrupt_test.cc.o"
  "CMakeFiles/store_image_corrupt_test.dir/odb/store_image_corrupt_test.cc.o.d"
  "store_image_corrupt_test"
  "store_image_corrupt_test.pdb"
  "store_image_corrupt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_image_corrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
