# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for store_image_corrupt_test.
