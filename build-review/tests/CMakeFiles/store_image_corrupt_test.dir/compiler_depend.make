# Empty compiler generated dependencies file for store_image_corrupt_test.
# This may be replaced when dependencies are built.
