file(REMOVE_RECURSE
  "CMakeFiles/store_io_test.dir/odb/store_io_test.cc.o"
  "CMakeFiles/store_io_test.dir/odb/store_io_test.cc.o.d"
  "store_io_test"
  "store_io_test.pdb"
  "store_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
