# Empty compiler generated dependencies file for store_io_test.
# This may be replaced when dependencies are built.
