# Empty compiler generated dependencies file for ssd_device_test.
# This may be replaced when dependencies are built.
