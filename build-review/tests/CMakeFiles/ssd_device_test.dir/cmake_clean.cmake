file(REMOVE_RECURSE
  "CMakeFiles/ssd_device_test.dir/storage/ssd_device_test.cc.o"
  "CMakeFiles/ssd_device_test.dir/storage/ssd_device_test.cc.o.d"
  "ssd_device_test"
  "ssd_device_test.pdb"
  "ssd_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
