# Empty compiler generated dependencies file for remembered_set_test.
# This may be replaced when dependencies are built.
