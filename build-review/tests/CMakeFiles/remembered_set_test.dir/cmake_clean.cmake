file(REMOVE_RECURSE
  "CMakeFiles/remembered_set_test.dir/core/remembered_set_test.cc.o"
  "CMakeFiles/remembered_set_test.dir/core/remembered_set_test.cc.o.d"
  "remembered_set_test"
  "remembered_set_test.pdb"
  "remembered_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remembered_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
