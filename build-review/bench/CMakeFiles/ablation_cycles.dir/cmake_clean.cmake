file(REMOVE_RECURSE
  "CMakeFiles/ablation_cycles.dir/ablation_cycles.cc.o"
  "CMakeFiles/ablation_cycles.dir/ablation_cycles.cc.o.d"
  "ablation_cycles"
  "ablation_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
