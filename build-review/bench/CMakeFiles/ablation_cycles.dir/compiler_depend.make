# Empty compiler generated dependencies file for ablation_cycles.
# This may be replaced when dependencies are built.
