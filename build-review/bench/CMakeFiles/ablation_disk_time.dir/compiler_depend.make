# Empty compiler generated dependencies file for ablation_disk_time.
# This may be replaced when dependencies are built.
