file(REMOVE_RECURSE
  "CMakeFiles/ablation_disk_time.dir/ablation_disk_time.cc.o"
  "CMakeFiles/ablation_disk_time.dir/ablation_disk_time.cc.o.d"
  "ablation_disk_time"
  "ablation_disk_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disk_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
