# Empty compiler generated dependencies file for ablation_barrier.
# This may be replaced when dependencies are built.
