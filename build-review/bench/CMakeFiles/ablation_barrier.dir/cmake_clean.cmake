file(REMOVE_RECURSE
  "CMakeFiles/ablation_barrier.dir/ablation_barrier.cc.o"
  "CMakeFiles/ablation_barrier.dir/ablation_barrier.cc.o.d"
  "ablation_barrier"
  "ablation_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
