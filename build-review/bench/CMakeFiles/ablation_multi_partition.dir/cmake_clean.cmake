file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_partition.dir/ablation_multi_partition.cc.o"
  "CMakeFiles/ablation_multi_partition.dir/ablation_multi_partition.cc.o.d"
  "ablation_multi_partition"
  "ablation_multi_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
