# Empty dependencies file for ablation_multi_partition.
# This may be replaced when dependencies are built.
