# Empty dependencies file for ablation_full_gc.
# This may be replaced when dependencies are built.
