file(REMOVE_RECURSE
  "CMakeFiles/ablation_full_gc.dir/ablation_full_gc.cc.o"
  "CMakeFiles/ablation_full_gc.dir/ablation_full_gc.cc.o.d"
  "ablation_full_gc"
  "ablation_full_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_full_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
