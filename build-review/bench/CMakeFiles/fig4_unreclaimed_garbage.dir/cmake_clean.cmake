file(REMOVE_RECURSE
  "CMakeFiles/fig4_unreclaimed_garbage.dir/fig4_unreclaimed_garbage.cc.o"
  "CMakeFiles/fig4_unreclaimed_garbage.dir/fig4_unreclaimed_garbage.cc.o.d"
  "fig4_unreclaimed_garbage"
  "fig4_unreclaimed_garbage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unreclaimed_garbage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
