# Empty compiler generated dependencies file for fig4_unreclaimed_garbage.
# This may be replaced when dependencies are built.
