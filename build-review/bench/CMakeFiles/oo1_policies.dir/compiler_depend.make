# Empty compiler generated dependencies file for oo1_policies.
# This may be replaced when dependencies are built.
