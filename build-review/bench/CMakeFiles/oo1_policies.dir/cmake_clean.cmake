file(REMOVE_RECURSE
  "CMakeFiles/oo1_policies.dir/oo1_policies.cc.o"
  "CMakeFiles/oo1_policies.dir/oo1_policies.cc.o.d"
  "oo1_policies"
  "oo1_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo1_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
