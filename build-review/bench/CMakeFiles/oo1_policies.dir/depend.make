# Empty dependencies file for oo1_policies.
# This may be replaced when dependencies are built.
