# Empty compiler generated dependencies file for ablation_traversal.
# This may be replaced when dependencies are built.
