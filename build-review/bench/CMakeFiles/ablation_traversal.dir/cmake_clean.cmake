file(REMOVE_RECURSE
  "CMakeFiles/ablation_traversal.dir/ablation_traversal.cc.o"
  "CMakeFiles/ablation_traversal.dir/ablation_traversal.cc.o.d"
  "ablation_traversal"
  "ablation_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
