# Empty compiler generated dependencies file for table5_connectivity.
# This may be replaced when dependencies are built.
