file(REMOVE_RECURSE
  "CMakeFiles/table5_connectivity.dir/table5_connectivity.cc.o"
  "CMakeFiles/table5_connectivity.dir/table5_connectivity.cc.o.d"
  "table5_connectivity"
  "table5_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
