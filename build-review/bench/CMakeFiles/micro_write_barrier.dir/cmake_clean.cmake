file(REMOVE_RECURSE
  "CMakeFiles/micro_write_barrier.dir/micro_write_barrier.cc.o"
  "CMakeFiles/micro_write_barrier.dir/micro_write_barrier.cc.o.d"
  "micro_write_barrier"
  "micro_write_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_write_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
