# Empty compiler generated dependencies file for micro_write_barrier.
# This may be replaced when dependencies are built.
