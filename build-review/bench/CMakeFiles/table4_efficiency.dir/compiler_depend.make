# Empty compiler generated dependencies file for table4_efficiency.
# This may be replaced when dependencies are built.
