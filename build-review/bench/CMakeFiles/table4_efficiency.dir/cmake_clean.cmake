file(REMOVE_RECURSE
  "CMakeFiles/table4_efficiency.dir/table4_efficiency.cc.o"
  "CMakeFiles/table4_efficiency.dir/table4_efficiency.cc.o.d"
  "table4_efficiency"
  "table4_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
