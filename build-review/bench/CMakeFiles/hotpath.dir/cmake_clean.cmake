file(REMOVE_RECURSE
  "CMakeFiles/hotpath.dir/hotpath.cc.o"
  "CMakeFiles/hotpath.dir/hotpath.cc.o.d"
  "hotpath"
  "hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
