# Empty compiler generated dependencies file for hotpath.
# This may be replaced when dependencies are built.
