# Empty dependencies file for recovery_bench.
# This may be replaced when dependencies are built.
