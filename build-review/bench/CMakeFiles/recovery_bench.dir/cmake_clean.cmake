file(REMOVE_RECURSE
  "CMakeFiles/recovery_bench.dir/recovery_bench.cc.o"
  "CMakeFiles/recovery_bench.dir/recovery_bench.cc.o.d"
  "recovery_bench"
  "recovery_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
