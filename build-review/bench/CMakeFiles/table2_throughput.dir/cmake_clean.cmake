file(REMOVE_RECURSE
  "CMakeFiles/table2_throughput.dir/table2_throughput.cc.o"
  "CMakeFiles/table2_throughput.dir/table2_throughput.cc.o.d"
  "table2_throughput"
  "table2_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
