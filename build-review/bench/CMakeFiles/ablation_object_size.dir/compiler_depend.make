# Empty compiler generated dependencies file for ablation_object_size.
# This may be replaced when dependencies are built.
