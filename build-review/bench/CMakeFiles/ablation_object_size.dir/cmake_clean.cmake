file(REMOVE_RECURSE
  "CMakeFiles/ablation_object_size.dir/ablation_object_size.cc.o"
  "CMakeFiles/ablation_object_size.dir/ablation_object_size.cc.o.d"
  "ablation_object_size"
  "ablation_object_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_object_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
