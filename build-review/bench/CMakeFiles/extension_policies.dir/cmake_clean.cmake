file(REMOVE_RECURSE
  "CMakeFiles/extension_policies.dir/extension_policies.cc.o"
  "CMakeFiles/extension_policies.dir/extension_policies.cc.o.d"
  "extension_policies"
  "extension_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
