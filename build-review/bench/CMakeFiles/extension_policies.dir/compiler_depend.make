# Empty compiler generated dependencies file for extension_policies.
# This may be replaced when dependencies are built.
