file(REMOVE_RECURSE
  "CMakeFiles/table3_storage.dir/table3_storage.cc.o"
  "CMakeFiles/table3_storage.dir/table3_storage.cc.o.d"
  "table3_storage"
  "table3_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
