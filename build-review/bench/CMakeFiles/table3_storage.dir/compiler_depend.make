# Empty compiler generated dependencies file for table3_storage.
# This may be replaced when dependencies are built.
