# Empty dependencies file for ablation_partition_size.
# This may be replaced when dependencies are built.
