file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_size.dir/ablation_partition_size.cc.o"
  "CMakeFiles/ablation_partition_size.dir/ablation_partition_size.cc.o.d"
  "ablation_partition_size"
  "ablation_partition_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
