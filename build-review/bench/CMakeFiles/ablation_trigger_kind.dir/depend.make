# Empty dependencies file for ablation_trigger_kind.
# This may be replaced when dependencies are built.
