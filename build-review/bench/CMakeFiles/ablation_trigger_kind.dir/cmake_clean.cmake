file(REMOVE_RECURSE
  "CMakeFiles/ablation_trigger_kind.dir/ablation_trigger_kind.cc.o"
  "CMakeFiles/ablation_trigger_kind.dir/ablation_trigger_kind.cc.o.d"
  "ablation_trigger_kind"
  "ablation_trigger_kind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trigger_kind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
