# Empty dependencies file for fig5_database_size.
# This may be replaced when dependencies are built.
