file(REMOVE_RECURSE
  "CMakeFiles/fig5_database_size.dir/fig5_database_size.cc.o"
  "CMakeFiles/fig5_database_size.dir/fig5_database_size.cc.o.d"
  "fig5_database_size"
  "fig5_database_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_database_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
