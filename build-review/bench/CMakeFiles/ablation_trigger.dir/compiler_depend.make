# Empty compiler generated dependencies file for ablation_trigger.
# This may be replaced when dependencies are built.
