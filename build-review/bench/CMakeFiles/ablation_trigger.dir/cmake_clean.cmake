file(REMOVE_RECURSE
  "CMakeFiles/ablation_trigger.dir/ablation_trigger.cc.o"
  "CMakeFiles/ablation_trigger.dir/ablation_trigger.cc.o.d"
  "ablation_trigger"
  "ablation_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
