# Empty dependencies file for odbgc_sim.
# This may be replaced when dependencies are built.
