file(REMOVE_RECURSE
  "libodbgc_sim.a"
)
