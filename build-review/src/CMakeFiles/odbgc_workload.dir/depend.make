# Empty dependencies file for odbgc_workload.
# This may be replaced when dependencies are built.
