file(REMOVE_RECURSE
  "CMakeFiles/odbgc_workload.dir/workload/generator.cc.o"
  "CMakeFiles/odbgc_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/odbgc_workload.dir/workload/oo1_generator.cc.o"
  "CMakeFiles/odbgc_workload.dir/workload/oo1_generator.cc.o.d"
  "CMakeFiles/odbgc_workload.dir/workload/workload_config.cc.o"
  "CMakeFiles/odbgc_workload.dir/workload/workload_config.cc.o.d"
  "libodbgc_workload.a"
  "libodbgc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
