file(REMOVE_RECURSE
  "libodbgc_workload.a"
)
