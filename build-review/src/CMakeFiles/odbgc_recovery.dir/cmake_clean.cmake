file(REMOVE_RECURSE
  "CMakeFiles/odbgc_recovery.dir/recovery/checkpoint_manager.cc.o"
  "CMakeFiles/odbgc_recovery.dir/recovery/checkpoint_manager.cc.o.d"
  "CMakeFiles/odbgc_recovery.dir/recovery/recover.cc.o"
  "CMakeFiles/odbgc_recovery.dir/recovery/recover.cc.o.d"
  "CMakeFiles/odbgc_recovery.dir/recovery/wal.cc.o"
  "CMakeFiles/odbgc_recovery.dir/recovery/wal.cc.o.d"
  "libodbgc_recovery.a"
  "libodbgc_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
