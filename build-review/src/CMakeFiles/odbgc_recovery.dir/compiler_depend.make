# Empty compiler generated dependencies file for odbgc_recovery.
# This may be replaced when dependencies are built.
