file(REMOVE_RECURSE
  "libodbgc_recovery.a"
)
