# Empty dependencies file for odbgc_storage.
# This may be replaced when dependencies are built.
