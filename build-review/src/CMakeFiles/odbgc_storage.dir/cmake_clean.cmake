file(REMOVE_RECURSE
  "CMakeFiles/odbgc_storage.dir/storage/disk.cc.o"
  "CMakeFiles/odbgc_storage.dir/storage/disk.cc.o.d"
  "CMakeFiles/odbgc_storage.dir/storage/page_device.cc.o"
  "CMakeFiles/odbgc_storage.dir/storage/page_device.cc.o.d"
  "CMakeFiles/odbgc_storage.dir/storage/ssd_device.cc.o"
  "CMakeFiles/odbgc_storage.dir/storage/ssd_device.cc.o.d"
  "libodbgc_storage.a"
  "libodbgc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
