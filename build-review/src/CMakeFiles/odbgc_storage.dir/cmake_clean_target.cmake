file(REMOVE_RECURSE
  "libodbgc_storage.a"
)
