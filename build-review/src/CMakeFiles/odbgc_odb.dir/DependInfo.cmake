
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odb/object_layout.cc" "src/CMakeFiles/odbgc_odb.dir/odb/object_layout.cc.o" "gcc" "src/CMakeFiles/odbgc_odb.dir/odb/object_layout.cc.o.d"
  "/root/repo/src/odb/object_store.cc" "src/CMakeFiles/odbgc_odb.dir/odb/object_store.cc.o" "gcc" "src/CMakeFiles/odbgc_odb.dir/odb/object_store.cc.o.d"
  "/root/repo/src/odb/store_image.cc" "src/CMakeFiles/odbgc_odb.dir/odb/store_image.cc.o" "gcc" "src/CMakeFiles/odbgc_odb.dir/odb/store_image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/odbgc_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
