# Empty compiler generated dependencies file for odbgc_odb.
# This may be replaced when dependencies are built.
