file(REMOVE_RECURSE
  "libodbgc_odb.a"
)
