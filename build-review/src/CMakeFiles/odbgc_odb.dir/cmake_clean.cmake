file(REMOVE_RECURSE
  "CMakeFiles/odbgc_odb.dir/odb/object_layout.cc.o"
  "CMakeFiles/odbgc_odb.dir/odb/object_layout.cc.o.d"
  "CMakeFiles/odbgc_odb.dir/odb/object_store.cc.o"
  "CMakeFiles/odbgc_odb.dir/odb/object_store.cc.o.d"
  "CMakeFiles/odbgc_odb.dir/odb/store_image.cc.o"
  "CMakeFiles/odbgc_odb.dir/odb/store_image.cc.o.d"
  "libodbgc_odb.a"
  "libodbgc_odb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_odb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
