file(REMOVE_RECURSE
  "CMakeFiles/odbgc_core.dir/core/copying_collector.cc.o"
  "CMakeFiles/odbgc_core.dir/core/copying_collector.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/extension_policies.cc.o"
  "CMakeFiles/odbgc_core.dir/core/extension_policies.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/global_collector.cc.o"
  "CMakeFiles/odbgc_core.dir/core/global_collector.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/heap.cc.o"
  "CMakeFiles/odbgc_core.dir/core/heap.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/policies.cc.o"
  "CMakeFiles/odbgc_core.dir/core/policies.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/reachability.cc.o"
  "CMakeFiles/odbgc_core.dir/core/reachability.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/remembered_set.cc.o"
  "CMakeFiles/odbgc_core.dir/core/remembered_set.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/selection_policy.cc.o"
  "CMakeFiles/odbgc_core.dir/core/selection_policy.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/weights.cc.o"
  "CMakeFiles/odbgc_core.dir/core/weights.cc.o.d"
  "CMakeFiles/odbgc_core.dir/core/write_barrier.cc.o"
  "CMakeFiles/odbgc_core.dir/core/write_barrier.cc.o.d"
  "libodbgc_core.a"
  "libodbgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
