file(REMOVE_RECURSE
  "libodbgc_core.a"
)
