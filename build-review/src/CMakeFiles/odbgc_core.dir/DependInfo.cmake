
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/copying_collector.cc" "src/CMakeFiles/odbgc_core.dir/core/copying_collector.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/copying_collector.cc.o.d"
  "/root/repo/src/core/extension_policies.cc" "src/CMakeFiles/odbgc_core.dir/core/extension_policies.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/extension_policies.cc.o.d"
  "/root/repo/src/core/global_collector.cc" "src/CMakeFiles/odbgc_core.dir/core/global_collector.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/global_collector.cc.o.d"
  "/root/repo/src/core/heap.cc" "src/CMakeFiles/odbgc_core.dir/core/heap.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/heap.cc.o.d"
  "/root/repo/src/core/policies.cc" "src/CMakeFiles/odbgc_core.dir/core/policies.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/policies.cc.o.d"
  "/root/repo/src/core/reachability.cc" "src/CMakeFiles/odbgc_core.dir/core/reachability.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/reachability.cc.o.d"
  "/root/repo/src/core/remembered_set.cc" "src/CMakeFiles/odbgc_core.dir/core/remembered_set.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/remembered_set.cc.o.d"
  "/root/repo/src/core/selection_policy.cc" "src/CMakeFiles/odbgc_core.dir/core/selection_policy.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/selection_policy.cc.o.d"
  "/root/repo/src/core/weights.cc" "src/CMakeFiles/odbgc_core.dir/core/weights.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/weights.cc.o.d"
  "/root/repo/src/core/write_barrier.cc" "src/CMakeFiles/odbgc_core.dir/core/write_barrier.cc.o" "gcc" "src/CMakeFiles/odbgc_core.dir/core/write_barrier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/odbgc_odb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_buffer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/odbgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
