# Empty compiler generated dependencies file for odbgc_core.
# This may be replaced when dependencies are built.
