
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event.cc" "src/CMakeFiles/odbgc_trace.dir/trace/event.cc.o" "gcc" "src/CMakeFiles/odbgc_trace.dir/trace/event.cc.o.d"
  "/root/repo/src/trace/trace_reader.cc" "src/CMakeFiles/odbgc_trace.dir/trace/trace_reader.cc.o" "gcc" "src/CMakeFiles/odbgc_trace.dir/trace/trace_reader.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/CMakeFiles/odbgc_trace.dir/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/odbgc_trace.dir/trace/trace_stats.cc.o.d"
  "/root/repo/src/trace/trace_writer.cc" "src/CMakeFiles/odbgc_trace.dir/trace/trace_writer.cc.o" "gcc" "src/CMakeFiles/odbgc_trace.dir/trace/trace_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/odbgc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
