file(REMOVE_RECURSE
  "CMakeFiles/odbgc_trace.dir/trace/event.cc.o"
  "CMakeFiles/odbgc_trace.dir/trace/event.cc.o.d"
  "CMakeFiles/odbgc_trace.dir/trace/trace_reader.cc.o"
  "CMakeFiles/odbgc_trace.dir/trace/trace_reader.cc.o.d"
  "CMakeFiles/odbgc_trace.dir/trace/trace_stats.cc.o"
  "CMakeFiles/odbgc_trace.dir/trace/trace_stats.cc.o.d"
  "CMakeFiles/odbgc_trace.dir/trace/trace_writer.cc.o"
  "CMakeFiles/odbgc_trace.dir/trace/trace_writer.cc.o.d"
  "libodbgc_trace.a"
  "libodbgc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
