# Empty dependencies file for odbgc_trace.
# This may be replaced when dependencies are built.
