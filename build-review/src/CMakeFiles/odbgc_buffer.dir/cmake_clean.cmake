file(REMOVE_RECURSE
  "CMakeFiles/odbgc_buffer.dir/buffer/buffer_pool.cc.o"
  "CMakeFiles/odbgc_buffer.dir/buffer/buffer_pool.cc.o.d"
  "CMakeFiles/odbgc_buffer.dir/buffer/replacement_policy.cc.o"
  "CMakeFiles/odbgc_buffer.dir/buffer/replacement_policy.cc.o.d"
  "libodbgc_buffer.a"
  "libodbgc_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
