# Empty compiler generated dependencies file for odbgc_buffer.
# This may be replaced when dependencies are built.
