file(REMOVE_RECURSE
  "libodbgc_buffer.a"
)
