# Empty compiler generated dependencies file for odbgc_util.
# This may be replaced when dependencies are built.
