file(REMOVE_RECURSE
  "CMakeFiles/odbgc_util.dir/util/crc32.cc.o"
  "CMakeFiles/odbgc_util.dir/util/crc32.cc.o.d"
  "CMakeFiles/odbgc_util.dir/util/metrics_registry.cc.o"
  "CMakeFiles/odbgc_util.dir/util/metrics_registry.cc.o.d"
  "CMakeFiles/odbgc_util.dir/util/random.cc.o"
  "CMakeFiles/odbgc_util.dir/util/random.cc.o.d"
  "CMakeFiles/odbgc_util.dir/util/statistics.cc.o"
  "CMakeFiles/odbgc_util.dir/util/statistics.cc.o.d"
  "CMakeFiles/odbgc_util.dir/util/table_printer.cc.o"
  "CMakeFiles/odbgc_util.dir/util/table_printer.cc.o.d"
  "CMakeFiles/odbgc_util.dir/util/time_series.cc.o"
  "CMakeFiles/odbgc_util.dir/util/time_series.cc.o.d"
  "libodbgc_util.a"
  "libodbgc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odbgc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
