
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/crc32.cc" "src/CMakeFiles/odbgc_util.dir/util/crc32.cc.o" "gcc" "src/CMakeFiles/odbgc_util.dir/util/crc32.cc.o.d"
  "/root/repo/src/util/metrics_registry.cc" "src/CMakeFiles/odbgc_util.dir/util/metrics_registry.cc.o" "gcc" "src/CMakeFiles/odbgc_util.dir/util/metrics_registry.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/odbgc_util.dir/util/random.cc.o" "gcc" "src/CMakeFiles/odbgc_util.dir/util/random.cc.o.d"
  "/root/repo/src/util/statistics.cc" "src/CMakeFiles/odbgc_util.dir/util/statistics.cc.o" "gcc" "src/CMakeFiles/odbgc_util.dir/util/statistics.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/odbgc_util.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/odbgc_util.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/time_series.cc" "src/CMakeFiles/odbgc_util.dir/util/time_series.cc.o" "gcc" "src/CMakeFiles/odbgc_util.dir/util/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
