file(REMOVE_RECURSE
  "CMakeFiles/db_evolution.dir/db_evolution.cpp.o"
  "CMakeFiles/db_evolution.dir/db_evolution.cpp.o.d"
  "db_evolution"
  "db_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
