# Empty dependencies file for db_evolution.
# This may be replaced when dependencies are built.
