# Empty dependencies file for checkpoint.
# This may be replaced when dependencies are built.
