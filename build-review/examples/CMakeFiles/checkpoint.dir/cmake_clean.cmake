file(REMOVE_RECURSE
  "CMakeFiles/checkpoint.dir/checkpoint.cpp.o"
  "CMakeFiles/checkpoint.dir/checkpoint.cpp.o.d"
  "checkpoint"
  "checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
