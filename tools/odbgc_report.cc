// odbgc-report: the command-line consumer of run manifests (see
// observe/manifest.h). Four subcommands:
//
//   tables <dir>
//       Aggregates every manifest in <dir> into the paper's summary
//       tables (throughput, storage, efficiency) — the same tables the
//       bench binaries print, but computed offline from the canonical
//       per-run records, so any two runs of any policies can be tabled
//       together after the fact.
//
//   tenants <dir>
//       Per-tenant table from a multi-tenant service run's manifest
//       directory (HeapService with a manifest_dir — files are named
//       <tenant>-<policy>-s<seed>.json). One row per tenant plus a
//       service-total row; tenants may run different policies, so rows
//       are not averaged.
//
//   diff <dirA> <dirB> [--tolerance=PCT]
//       Matches manifests by (policy, seed) and compares run metrics.
//       Two directories produced from identical-seed runs of the same
//       configuration must show zero regressions (and, because manifests
//       are canonical, byte-identical documents). Exits 1 on regression
//       or coverage loss, 2 on usage/digest errors.
//
//   check <dir> --baseline=<file> [--tolerance=PCT] [--write]
//       Regression gate for CI: compares per-policy mean metrics against
//       a checked-in baseline, generalizing bench/hotpath's --check from
//       one throughput number to the full metric set. --write
//       (re)generates the baseline from <dir>. Exits 1 on regression.
//
// Tolerances are percentages (diff defaults to 0, check to 10). Metrics
// where lower is better (I/O, storage) fail above baseline * (1 + t);
// metrics where higher is better (reclamation, efficiency) fail below
// baseline * (1 - t).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "observe/json.h"
#include "observe/manifest.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "util/table_printer.h"

namespace odbgc {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: odbgc-report <command> ...\n"
      "  tables <dir>                          paper tables from manifests\n"
      "  tenants <dir>                         per-tenant table from a\n"
      "                                        service run's manifests\n"
      "  diff <dirA> <dirB> [--tolerance=PCT]  compare two manifest sets\n"
      "  check <dir> --baseline=<file> [--tolerance=PCT] [--write]\n"
      "                                        gate against a baseline\n");
  return 2;
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

struct LoadedManifest {
  std::string file;
  Json manifest;
};

/// Loads and validates every *.json in `dir`, in filename order so output
/// is stable regardless of directory enumeration order.
Result<std::vector<LoadedManifest>> LoadManifestDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path());
    }
  }
  if (ec) return Status::IoError("cannot read directory " + dir);
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    return Status::InvalidArgument("no manifests (*.json) in " + dir);
  }

  std::vector<LoadedManifest> loaded;
  for (const auto& path : paths) {
    auto manifest = LoadManifestFile(path.string());
    if (!manifest.ok()) return manifest.status();
    loaded.push_back({path.filename().string(), std::move(*manifest)});
  }
  return loaded;
}

double Num(const Json& object, const char* key) {
  const Json* field = object.Get(key);
  return field == nullptr ? 0.0 : field->double_value();
}

uint64_t UNum(const Json& object, const char* key) {
  const Json* field = object.Get(key);
  return field == nullptr ? 0 : field->uint_value();
}

/// Rehydrates the fields the summary tables consume. (Time series and the
/// metrics registry stay in the Json document; Summarize never reads
/// them.)
SimulationResult ResultFromManifest(const Json& manifest) {
  const Json& r = *manifest.Get("result");
  SimulationResult result;
  result.policy_name = r.Get("policy")->string_value();
  if (auto kind = ParsePolicyName(r.Get("policy_kind")->string_value());
      kind.ok()) {
    result.policy = *kind;
  }
  result.seed = UNum(r, "seed");
  result.app_events = UNum(r, "app_events");
  result.app_io = UNum(r, "app_io");
  result.gc_io = UNum(r, "gc_io");
  result.max_storage_bytes = UNum(r, "max_storage_bytes");
  result.max_partitions = UNum(r, "max_partitions");
  result.final_partitions = UNum(r, "final_partitions");
  result.collections = UNum(r, "collections");
  result.garbage_reclaimed_bytes = UNum(r, "garbage_reclaimed_bytes");
  result.live_bytes_copied = UNum(r, "live_bytes_copied");
  result.unreclaimed_garbage_bytes = UNum(r, "unreclaimed_garbage_bytes");
  result.final_live_bytes = UNum(r, "final_live_bytes");
  result.remset_entries = UNum(r, "remset_entries");
  result.bytes_allocated = UNum(r, "bytes_allocated");
  result.pointer_overwrites = UNum(r, "pointer_overwrites");
  result.estimated_device_time_ms = Num(r, "estimated_device_time_ms");
  // Optional top-level `measured` section (real-I/O backends only).
  if (const Json* m = manifest.Get("measured");
      m != nullptr && m->is_object()) {
    result.measured.measured = true;
    result.measured.reads = UNum(*m, "reads");
    result.measured.writes = UNum(*m, "writes");
    result.measured.fsyncs = UNum(*m, "fsyncs");
    result.measured.batches = UNum(*m, "batches");
    result.measured.readahead_hits = UNum(*m, "readahead_hits");
    result.measured.readahead_misses = UNum(*m, "readahead_misses");
    result.measured.prefetched_pages = UNum(*m, "prefetched_pages");
    result.measured.wall_ms = Num(*m, "wall_ms");
  }
  return result;
}

/// Groups per-run manifests into an Experiment: paper policies in paper
/// order first, anything else in order of first appearance; runs sorted
/// by seed.
Experiment GroupByPolicy(const std::vector<LoadedManifest>& manifests) {
  Experiment experiment;
  auto set_for = [&experiment](const std::string& name) -> PolicyRuns& {
    for (PolicyRuns& set : experiment.sets) {
      if (set.name == name) return set;
    }
    experiment.sets.emplace_back();
    experiment.sets.back().name = name;
    return experiment.sets.back();
  };
  for (const std::string& name : PaperPolicyNames()) {
    for (const LoadedManifest& loaded : manifests) {
      if (loaded.manifest.Get("policy")->string_value() == name) {
        set_for(name);
        break;
      }
    }
  }
  for (const LoadedManifest& loaded : manifests) {
    PolicyRuns& set = set_for(loaded.manifest.Get("policy")->string_value());
    set.runs.push_back(ResultFromManifest(loaded.manifest));
  }
  for (PolicyRuns& set : experiment.sets) {
    std::sort(set.runs.begin(), set.runs.end(),
              [](const SimulationResult& a, const SimulationResult& b) {
                return a.seed < b.seed;
              });
    set.policy = set.runs.front().policy;
  }
  return experiment;
}

/// The concurrency axis of one manifest: (mutator_threads, trace_shards),
/// defaulting to serial for pre-axis manifests.
std::pair<uint64_t, uint64_t> ThreadsAxis(const Json& manifest) {
  const Json* config = manifest.Get("config");
  if (config == nullptr || !config->is_object()) return {1, 0};
  const uint64_t threads = UNum(*config, "mutator_threads");
  return {threads == 0 ? 1 : threads, UNum(*config, "trace_shards")};
}

/// Distinct concurrency axes across a manifest set, in first-seen order.
std::vector<std::pair<uint64_t, uint64_t>> ThreadsAxes(
    const std::vector<LoadedManifest>& manifests) {
  std::vector<std::pair<uint64_t, uint64_t>> axes;
  for (const LoadedManifest& loaded : manifests) {
    const auto axis = ThreadsAxis(loaded.manifest);
    if (std::find(axes.begin(), axes.end(), axis) == axes.end()) {
      axes.push_back(axis);
    }
  }
  return axes;
}

/// Distinct config digests across a manifest set. More than one means the
/// runs are not comparable as a single experiment.
std::vector<uint64_t> Digests(const std::vector<LoadedManifest>& manifests) {
  std::vector<uint64_t> digests;
  for (const LoadedManifest& loaded : manifests) {
    const uint64_t digest = UNum(loaded.manifest, "config_digest");
    if (std::find(digests.begin(), digests.end(), digest) == digests.end()) {
      digests.push_back(digest);
    }
  }
  return digests;
}

/// Scaling table: the threads axis against end-to-end throughput, from
/// manifests that carry a "timing" section (runs recorded under
/// ExperimentSpec::record_timing — e.g. `run_experiment --parallel-grid`).
/// Only manifests sharing one config digest are comparable as a scaling
/// study (digest-equal runs are the same experiment, so the only thing
/// that varies along the axis is wall time); the table uses the first
/// timing-carrying digest and notes how many runs it excluded. events/sec
/// sums each axis's events over its summed wall, speedup is against the
/// smallest axis present, and parallel efficiency divides that speedup by
/// the thread ratio. Prints nothing when no manifest carries timing.
void PrintScalingTable(const std::vector<LoadedManifest>& manifests,
                       std::ostream& os) {
  struct AxisAgg {
    uint64_t threads = 1;
    uint64_t runs = 0;
    uint64_t events = 0;
    double wall_seconds = 0;
  };
  std::vector<AxisAgg> axes;
  bool have_digest = false;
  uint64_t scaling_digest = 0;
  uint64_t excluded = 0;
  for (const LoadedManifest& loaded : manifests) {
    const Json* timing = loaded.manifest.Get("timing");
    if (timing == nullptr || !timing->is_object()) continue;
    const uint64_t digest = UNum(loaded.manifest, "config_digest");
    if (!have_digest) {
      have_digest = true;
      scaling_digest = digest;
    } else if (digest != scaling_digest) {
      ++excluded;
      continue;
    }
    const uint64_t threads = ThreadsAxis(loaded.manifest).first;
    AxisAgg* agg = nullptr;
    for (AxisAgg& existing : axes) {
      if (existing.threads == threads) agg = &existing;
    }
    if (agg == nullptr) {
      axes.emplace_back();
      agg = &axes.back();
      agg->threads = threads;
    }
    ++agg->runs;
    agg->events += UNum(*loaded.manifest.Get("result"), "app_events");
    agg->wall_seconds += Num(*timing, "wall_seconds");
  }
  if (axes.empty()) return;
  std::sort(axes.begin(), axes.end(),
            [](const AxisAgg& a, const AxisAgg& b) {
              return a.threads < b.threads;
            });

  const AxisAgg& base = axes.front();
  const double base_rate =
      base.wall_seconds > 0
          ? static_cast<double>(base.events) / base.wall_seconds
          : 0;
  os << "Scaling (from manifest timing sections; baseline "
     << base.threads << " thread" << (base.threads == 1 ? "" : "s")
     << "):\n";
  if (excluded > 0) {
    os << "  note: " << excluded
       << " timed run(s) with a different config digest excluded\n";
  }
  TablePrinter table({"threads", "runs", "events", "wall_s", "events_per_s",
                      "speedup", "efficiency"});
  for (const AxisAgg& axis : axes) {
    const double rate =
        axis.wall_seconds > 0
            ? static_cast<double>(axis.events) / axis.wall_seconds
            : 0;
    const double speedup = base_rate > 0 ? rate / base_rate : 0;
    const double thread_ratio =
        static_cast<double>(axis.threads) / static_cast<double>(base.threads);
    table.AddRow({std::to_string(axis.threads), std::to_string(axis.runs),
                  FormatCount(axis.events),
                  FormatDouble(axis.wall_seconds, 3), FormatCount(rate),
                  FormatDouble(speedup, 2),
                  FormatDouble(thread_ratio > 0 ? speedup / thread_ratio : 0,
                               2)});
  }
  table.Print(os);
}

// ---------------------------------------------------------------------------
// Comparable metrics: name, direction, and how to read one from a
// manifest. One table drives diff, check, and baseline writing.

enum class Direction {
  kLowerIsBetter,   // costs: I/O, storage, leftover garbage
  kHigherIsBetter,  // benefits: reclamation, efficiency
};

struct MetricDef {
  const char* name;
  Direction direction;
  double (*read)(const SimulationResult& result);
  /// Whether the metric belongs in the check/baseline regression gate.
  /// Wall-clock measurements (measured_io_ms) are direction-aware in
  /// tables and diff output but never gate: they vary run to run on the
  /// same code, so a checked-in baseline of them would only flake.
  bool in_baseline = true;
};

constexpr MetricDef kMetrics[] = {
    {"total_io", Direction::kLowerIsBetter,
     [](const SimulationResult& r) { return static_cast<double>(r.total_io()); }},
    {"app_io", Direction::kLowerIsBetter,
     [](const SimulationResult& r) { return static_cast<double>(r.app_io); }},
    {"gc_io", Direction::kLowerIsBetter,
     [](const SimulationResult& r) { return static_cast<double>(r.gc_io); }},
    {"max_storage_kb", Direction::kLowerIsBetter,
     [](const SimulationResult& r) {
       return static_cast<double>(r.max_storage_bytes) / 1024.0;
     }},
    {"unreclaimed_garbage_kb", Direction::kLowerIsBetter,
     [](const SimulationResult& r) {
       return static_cast<double>(r.unreclaimed_garbage_bytes) / 1024.0;
     }},
    {"estimated_device_time_ms", Direction::kLowerIsBetter,
     [](const SimulationResult& r) { return r.estimated_device_time_ms; }},
    {"measured_io_ms", Direction::kLowerIsBetter,
     [](const SimulationResult& r) {
       return r.measured.measured ? r.measured.wall_ms : 0.0;
     },
     /*in_baseline=*/false},
    {"fraction_reclaimed_pct", Direction::kHigherIsBetter,
     [](const SimulationResult& r) { return r.FractionReclaimedPct(); }},
    {"efficiency_kb_per_io", Direction::kHigherIsBetter,
     [](const SimulationResult& r) { return r.EfficiencyKbPerIo(); }},
};

const MetricDef* FindMetric(const std::string& name) {
  for (const MetricDef& metric : kMetrics) {
    if (name == metric.name) return &metric;
  }
  return nullptr;
}

/// True if `candidate` is worse than `reference` by more than
/// `tolerance_pct` percent, in the metric's bad direction.
bool IsRegression(const MetricDef& metric, double reference, double candidate,
                  double tolerance_pct) {
  const double slack = std::abs(reference) * tolerance_pct / 100.0;
  if (metric.direction == Direction::kLowerIsBetter) {
    return candidate > reference + slack;
  }
  return candidate < reference - slack;
}

// ---------------------------------------------------------------------------
// tables

int RunTables(const std::string& dir) {
  auto manifests = LoadManifestDir(dir);
  if (!manifests.ok()) {
    std::fprintf(stderr, "%s\n", manifests.status().ToString().c_str());
    return 2;
  }
  const auto digests = Digests(*manifests);
  if (digests.size() > 1) {
    std::fprintf(stderr,
                 "warning: %zu distinct config digests in %s — the runs "
                 "were not produced by one experiment\n",
                 digests.size(), dir.c_str());
  }

  const Experiment experiment = GroupByPolicy(*manifests);
  size_t runs = 0;
  for (const PolicyRuns& set : experiment.sets) runs += set.runs.size();
  std::printf("%zu manifests, %zu policies (config digest %llu)\n",
              runs, experiment.sets.size(),
              static_cast<unsigned long long>(digests.front()));
  // The concurrency axis is digest-excluded (thread-count-invariant
  // results), so mixed-axis sets are legitimate — but worth surfacing.
  const auto axes = ThreadsAxes(*manifests);
  if (axes.size() > 1 || axes.front().first > 1) {
    std::printf("threads axis:");
    for (const auto& [threads, shards] : axes) {
      std::printf(" %llux%llu", static_cast<unsigned long long>(threads),
                  static_cast<unsigned long long>(
                      shards == 0 ? threads : shards));
    }
    std::printf(" (mutator_threads x trace_shards)\n");
  }
  std::printf("\n");

  const auto summaries = Summarize(experiment);
  PrintThroughputTable(summaries, std::cout);
  std::cout << '\n';
  PrintStorageTable(summaries, std::cout);
  std::cout << '\n';
  PrintEfficiencyTable(summaries, std::cout);
  std::cout << '\n';
  // Shows estimated model time; when the manifests carry a `measured`
  // section (file backend), measured wall-clock I/O appears beside it.
  PrintDeviceTimeTable(summaries, std::cout);
  // Threads axis -> throughput, when any manifest recorded wall time.
  std::cout << '\n';
  PrintScalingTable(*manifests, std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// tenants

/// The tenant name a service run encoded in a manifest's filename:
/// <tenant>-<policy>-s<seed>.json (see HeapService::WriteManifests). Falls
/// back to the whole stem when the suffix doesn't match — the row is
/// still printable, just unlabelled.
std::string TenantFromFilename(const std::string& file,
                               const SimulationResult& result) {
  const std::string suffix =
      "-" + result.policy_name + "-s" + std::to_string(result.seed) + ".json";
  if (file.size() > suffix.size() &&
      file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return file.substr(0, file.size() - suffix.size());
  }
  const size_t dot = file.rfind(".json");
  return dot == std::string::npos ? file : file.substr(0, dot);
}

int RunTenants(const std::string& dir) {
  auto manifests = LoadManifestDir(dir);
  if (!manifests.ok()) {
    std::fprintf(stderr, "%s\n", manifests.status().ToString().c_str());
    return 2;
  }

  TablePrinter table({"tenant", "policy", "seed", "events", "app_io", "gc_io",
                      "total_io", "collections", "reclaimed_kb",
                      "max_storage_kb", "efficiency", "peak_frames",
                      "stalls"});
  SimulationResult total;
  uint64_t total_stalls = 0;
  bool any_service = false;
  for (const LoadedManifest& loaded : *manifests) {
    const SimulationResult r = ResultFromManifest(loaded.manifest);
    // Service manifests carry the per-tenant occupancy story in the
    // optional `service` section; standalone manifests print "-".
    std::string peak_frames = "-";
    std::string stalls = "-";
    if (const Json* service = loaded.manifest.Get("service")) {
      const uint64_t peak =
          service->Get("peak_resident_frames")->uint_value();
      const uint64_t stalled = service->Get("admission_stalls")->uint_value();
      peak_frames = FormatCount(peak);
      stalls = FormatCount(stalled);
      total_stalls += stalled;
      any_service = true;
    }
    table.AddRow({TenantFromFilename(loaded.file, r), r.policy_name,
                  std::to_string(r.seed), FormatCount(r.app_events),
                  FormatCount(r.app_io), FormatCount(r.gc_io),
                  FormatCount(r.total_io()), FormatCount(r.collections),
                  FormatCount(r.garbage_reclaimed_bytes / 1024),
                  FormatCount(r.max_storage_bytes / 1024),
                  FormatDouble(r.EfficiencyKbPerIo(), 3), peak_frames,
                  stalls});
    total.app_events += r.app_events;
    total.app_io += r.app_io;
    total.gc_io += r.gc_io;
    total.collections += r.collections;
    total.garbage_reclaimed_bytes += r.garbage_reclaimed_bytes;
    total.max_storage_bytes += r.max_storage_bytes;
  }
  // Per-tenant peaks are concurrent maxima, not addends — the service
  // total prints only the summable stall count.
  table.AddRow({"(service)", "-", "-", FormatCount(total.app_events),
                FormatCount(total.app_io), FormatCount(total.gc_io),
                FormatCount(total.total_io()), FormatCount(total.collections),
                FormatCount(total.garbage_reclaimed_bytes / 1024),
                FormatCount(total.max_storage_bytes / 1024),
                FormatDouble(total.EfficiencyKbPerIo(), 3), "-",
                any_service ? FormatCount(total_stalls) : "-"});

  std::printf("%zu tenants in %s\n\n", manifests->size(), dir.c_str());
  table.Print(std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// diff

int RunDiff(const std::string& dir_a, const std::string& dir_b,
            double tolerance_pct) {
  auto loaded_a = LoadManifestDir(dir_a);
  auto loaded_b = LoadManifestDir(dir_b);
  for (const auto* loaded : {&loaded_a, &loaded_b}) {
    if (!loaded->ok()) {
      std::fprintf(stderr, "%s\n", loaded->status().ToString().c_str());
      return 2;
    }
  }

  using RunKey = std::pair<std::string, uint64_t>;  // (policy, seed)
  auto key_runs = [](const std::vector<LoadedManifest>& manifests) {
    std::map<RunKey, const Json*> keyed;
    for (const LoadedManifest& loaded : manifests) {
      keyed[{loaded.manifest.Get("policy")->string_value(),
             UNum(loaded.manifest, "seed")}] = &loaded.manifest;
    }
    return keyed;
  };
  const auto runs_a = key_runs(*loaded_a);
  const auto runs_b = key_runs(*loaded_b);

  size_t matched = 0, identical = 0, regressions = 0, improvements = 0;
  size_t missing_in_b = 0;
  for (const auto& [key, manifest_a] : runs_a) {
    const auto found = runs_b.find(key);
    if (found == runs_b.end()) {
      std::printf("MISSING  %s-s%llu only in %s\n", key.first.c_str(),
                  static_cast<unsigned long long>(key.second), dir_a.c_str());
      ++missing_in_b;
      continue;
    }
    const Json* manifest_b = found->second;
    ++matched;

    if (UNum(*manifest_a, "config_digest") !=
        UNum(*manifest_b, "config_digest")) {
      std::fprintf(stderr,
                   "config digests differ for %s-s%llu — the directories "
                   "hold different experiments; refusing to diff\n",
                   key.first.c_str(),
                   static_cast<unsigned long long>(key.second));
      return 2;
    }
    if (ThreadsAxis(*manifest_a) != ThreadsAxis(*manifest_b)) {
      // Legitimate (the axis is digest-excluded): this is exactly the
      // serial-vs-concurrent equivalence comparison. Surface it so a
      // reader knows why the documents cannot be byte-identical.
      std::printf("note     %s-s%llu compared across thread counts "
                  "(%llu vs %llu)\n",
                  key.first.c_str(),
                  static_cast<unsigned long long>(key.second),
                  static_cast<unsigned long long>(
                      ThreadsAxis(*manifest_a).first),
                  static_cast<unsigned long long>(
                      ThreadsAxis(*manifest_b).first));
    } else if (manifest_a->Dump() == manifest_b->Dump()) {
      ++identical;
      continue;
    }

    const SimulationResult a = ResultFromManifest(*manifest_a);
    const SimulationResult b = ResultFromManifest(*manifest_b);
    for (const MetricDef& metric : kMetrics) {
      const double value_a = metric.read(a);
      const double value_b = metric.read(b);
      if (value_a == value_b) continue;
      bool regressed = IsRegression(metric, value_a, value_b,
                                    tolerance_pct);
      bool improved = IsRegression(metric, value_b, value_a,
                                   tolerance_pct);
      if (!metric.in_baseline) {
        // Direction-aware but informational: wall-clock measurements
        // differ on every run of the same code, so they never fail a
        // diff.
        std::printf("%-8s %s-s%llu %-24s %14.2f -> %14.2f\n",
                    regressed ? "slower" : improved ? "faster" : "within-tol",
                    key.first.c_str(),
                    static_cast<unsigned long long>(key.second), metric.name,
                    value_a, value_b);
        continue;
      }
      std::printf("%-8s %s-s%llu %-24s %14.2f -> %14.2f\n",
                  regressed ? "WORSE" : improved ? "better" : "within-tol",
                  key.first.c_str(),
                  static_cast<unsigned long long>(key.second), metric.name,
                  value_a, value_b);
      regressions += regressed;
      improvements += improved;
    }
  }
  size_t only_in_b = 0;
  for (const auto& [key, manifest] : runs_b) {
    (void)manifest;
    if (runs_a.find(key) == runs_a.end()) {
      std::printf("NEW      %s-s%llu only in %s\n", key.first.c_str(),
                  static_cast<unsigned long long>(key.second), dir_b.c_str());
      ++only_in_b;
    }
  }

  std::printf(
      "\n%zu matched (%zu byte-identical), %zu regressions, "
      "%zu improvements, %zu missing from %s, %zu new\n",
      matched, identical, regressions, improvements, missing_in_b,
      dir_b.c_str(), only_in_b);
  return (regressions > 0 || missing_in_b > 0) ? 1 : 0;
}

// ---------------------------------------------------------------------------
// check

/// Per-policy means of every comparable metric.
std::map<std::string, std::map<std::string, double>> PolicyMeans(
    const Experiment& experiment) {
  std::map<std::string, std::map<std::string, double>> means;
  for (const PolicyRuns& set : experiment.sets) {
    for (const MetricDef& metric : kMetrics) {
      double sum = 0;
      for (const SimulationResult& run : set.runs) sum += metric.read(run);
      means[set.name][metric.name] =
          sum / static_cast<double>(set.runs.size());
    }
  }
  return means;
}

int WriteBaseline(const std::string& path,
                  const std::map<std::string, std::map<std::string, double>>&
                      means,
                  double tolerance_pct) {
  Json policies = Json::Obj();
  for (const auto& [policy, metrics] : means) {
    Json entry = Json::Obj();
    for (const auto& [metric, value] : metrics) {
      // Wall-clock metrics never enter the checked-in baseline (they are
      // not reproducible); they remain visible in tables and diff.
      const MetricDef* def = FindMetric(metric);
      if (def != nullptr && !def->in_baseline) continue;
      entry.Set(metric, Json::Double(value));
    }
    policies.Set(policy, std::move(entry));
  }
  Json baseline = Json::Obj();
  baseline.Set("schema_version", Json::UInt(kManifestSchemaVersion));
  baseline.Set("tolerance_pct", Json::Double(tolerance_pct));
  baseline.Set("policies", std::move(policies));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << baseline.Dump();
  if (!out.good()) {
    std::fprintf(stderr, "cannot write baseline %s\n", path.c_str());
    return 2;
  }
  std::printf("wrote baseline %s\n", path.c_str());
  return 0;
}

int RunCheck(const std::string& dir, const std::string& baseline_path,
             double tolerance_pct, bool tolerance_set, bool write) {
  auto manifests = LoadManifestDir(dir);
  if (!manifests.ok()) {
    std::fprintf(stderr, "%s\n", manifests.status().ToString().c_str());
    return 2;
  }
  const auto means = PolicyMeans(GroupByPolicy(*manifests));
  if (write) {
    return WriteBaseline(baseline_path, means,
                         tolerance_set ? tolerance_pct : 10.0);
  }

  std::ifstream in(baseline_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", baseline_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto baseline = Json::Parse(text.str());
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 baseline.status().ToString().c_str());
    return 2;
  }
  const Json* policies = baseline->Get("policies");
  if (policies == nullptr || !policies->is_object()) {
    std::fprintf(stderr, "%s: missing \"policies\" object\n",
                 baseline_path.c_str());
    return 2;
  }
  if (!tolerance_set) {
    if (const Json* t = baseline->Get("tolerance_pct");
        t != nullptr && t->is_number()) {
      tolerance_pct = t->double_value();
    }
  }

  size_t checked = 0, regressions = 0;
  for (const auto& [policy, expected] : policies->object()) {
    const auto found = means.find(policy);
    if (found == means.end()) {
      std::printf("check %-20s MISSING (baseline policy has no manifests)\n",
                  policy.c_str());
      ++regressions;
      continue;
    }
    for (const auto& [metric_name, expected_value] : expected.object()) {
      const MetricDef* metric = FindMetric(metric_name);
      if (metric == nullptr) {
        std::fprintf(stderr, "%s: unknown metric \"%s\" for %s\n",
                     baseline_path.c_str(), metric_name.c_str(),
                     policy.c_str());
        return 2;
      }
      const double reference = expected_value.double_value();
      const double actual = found->second.at(metric_name);
      const bool regressed =
          IsRegression(*metric, reference, actual, tolerance_pct);
      std::printf("check %-20s %-24s %14.2f vs baseline %14.2f (+/-%g%%) %s\n",
                  policy.c_str(), metric_name.c_str(), actual, reference,
                  tolerance_pct, regressed ? "REGRESSION" : "OK");
      ++checked;
      regressions += regressed;
    }
  }
  std::printf("\n%zu checks, %zu regressions\n", checked, regressions);
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace odbgc

int main(int argc, char** argv) {
  using namespace odbgc;
  if (argc < 2) return Usage();
  const std::string command = argv[1];

  std::vector<std::string> positional;
  std::string baseline_path;
  double tolerance_pct = 0.0;
  bool tolerance_set = false;
  bool write = false;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--tolerance", &value)) {
      tolerance_pct = std::atof(value.c_str());
      tolerance_set = true;
    } else if (ParseFlag(argv[i], "--baseline", &value)) {
      baseline_path = value;
    } else if (std::strcmp(argv[i], "--write") == 0) {
      write = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (command == "tables" && positional.size() == 1) {
    return RunTables(positional[0]);
  }
  if (command == "tenants" && positional.size() == 1) {
    return RunTenants(positional[0]);
  }
  if (command == "diff" && positional.size() == 2) {
    return RunDiff(positional[0], positional[1], tolerance_pct);
  }
  if (command == "check" && positional.size() == 1 &&
      !baseline_path.empty()) {
    return RunCheck(positional[0], baseline_path, tolerance_pct,
                    tolerance_set, write);
  }
  return Usage();
}
